#![warn(missing_docs)]

//! # gasnub — Global Address Space, Non-uniform Bandwidth
//!
//! Facade crate for the GASNUB workspace: a production-quality Rust
//! reproduction of T. Stricker and T. Gross, *"Global Address Space,
//! Non-Uniform Bandwidth: A Memory System Performance Characterization of
//! Parallel Systems"* (HPCA-3, 1997).
//!
//! This crate re-exports the workspace's public API under one roof:
//!
//! * [`memsim`] — trace-driven memory hierarchy simulator (caches, banked
//!   DRAM, stream prefetchers, coalescing write buffers);
//! * [`interconnect`] — 8400 bus, 3D torus and network interface models;
//! * [`coherence`] — MESI-style snooping coherence for the 8400;
//! * [`machines`] — the three characterized machines (DEC 8400, Cray T3D,
//!   Cray T3E) with the paper's parameters;
//! * [`faults`] — deterministic fault-injection plans for degraded-machine
//!   characterization;
//! * [`shmem`] — global-address-space layer (put/get/iput/iget, barriers);
//! * [`core`] — the extended copy-transfer model: micro-benchmarks, sweep
//!   driver, characterization surfaces and the transfer cost model;
//! * [`fft`] — the 2D-FFT application kernel of the paper's §7;
//! * [`trace`] — dependency-free structured event tracing and counters
//!   (the observability layer behind `trace` / `--counters`);
//! * [`analytic`] — the ECM-style closed-form bandwidth model and the
//!   tiered `auto`/`analytic`/`sim` dispatch behind `--tier`;
//! * [`serve`] — characterization-as-a-service: the zero-dependency
//!   HTTP/1.1 server behind `gasnub serve`, with cached, coalesced,
//!   byte-identical sweep surfaces.
//!
//! See the repository README for a tour and `DESIGN.md` for the experiment
//! index mapping every figure of the paper to a reproduction target.

pub use gasnub_analytic as analytic;
pub use gasnub_coherence as coherence;
pub use gasnub_core as core;
pub use gasnub_faults as faults;
pub use gasnub_fft as fft;
pub use gasnub_interconnect as interconnect;
pub use gasnub_machines as machines;
pub use gasnub_memsim as memsim;
pub use gasnub_serve as serve;
pub use gasnub_shmem as shmem;
pub use gasnub_trace as trace;
