//! The `gasnub` command-line tool: one front door to the reproduction.
//!
//! ```text
//! gasnub figures list
//! gasnub figures fig15 --quick
//! gasnub compare
//! gasnub fft 512
//! gasnub scale t3d 2048 512
//! ```

use gasnub::core::compare::Comparison;
use gasnub::fft::run_benchmark;
use gasnub::fft::scalability;
use gasnub::machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};

fn usage() -> ! {
    eprintln!(
        "usage: gasnub <command> [args]\n\
         \n\
         figures <list|all|figNN...> [--quick]   regenerate paper figures\n\
         compare                                 the §9 cross-machine table\n\
         fft [n]                                 2D-FFT benchmark (figs 15-17) at size n\n\
         scale <t3d|t3e> <n> <npes>              §8 scalability projection\n\
         report <dec8400|t3d|t3e>                full markdown characterization report\n\
         \n\
         (see also: cargo run -p gasnub-bench --bin figures / --bin experiments)"
    );
    std::process::exit(2);
}

fn all_machines() -> Vec<Box<dyn Machine>> {
    let mut v: Vec<Box<dyn Machine>> =
        vec![Box::new(Dec8400::new()), Box::new(T3d::new()), Box::new(T3e::new())];
    for m in &mut v {
        m.set_limits(MeasureLimits::fast());
    }
    v
}

fn machine_id(label: &str) -> Option<MachineId> {
    match label {
        "dec8400" | "8400" => Some(MachineId::Dec8400),
        "t3d" => Some(MachineId::CrayT3d),
        "t3e" => Some(MachineId::CrayT3e),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    match command.as_str() {
        "figures" => {
            // Delegate to the bench harness logic by shelling through its
            // library API.
            let quick = args.iter().any(|a| a == "--quick");
            let rest: Vec<&String> =
                args.iter().skip(1).filter(|a| !a.starts_with("--")).collect();
            if rest.iter().any(|s| s.as_str() == "list") || rest.is_empty() {
                for f in gasnub_bench_figures() {
                    println!("{:<7} {}", f.0, f.1);
                }
                return;
            }
            for sel in rest {
                let figures = if sel == "all" {
                    gasnub_bench_run_all(quick)
                } else {
                    vec![gasnub_bench_run_one(sel, quick).unwrap_or_else(|| {
                        eprintln!("unknown figure {sel}");
                        std::process::exit(2);
                    })]
                };
                for (id, title, text) in figures {
                    println!("---- {id} — {title}\n{text}");
                }
            }
        }
        "compare" => {
            let mut machines = all_machines();
            let c = Comparison::measure(&mut machines, 32 << 20);
            println!("Cross-machine summary, 32 MB working sets (MB/s):\n");
            println!("{}", c.render());
        }
        "fft" => {
            let n: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(256);
            println!("2D-FFT on 4 PEs, n = {n}:");
            println!(
                "{:<12}{:>16}{:>18}{:>16}",
                "machine", "total MFlop/s", "compute MFlop/s", "comm MB/s"
            );
            for id in [MachineId::CrayT3d, MachineId::Dec8400, MachineId::CrayT3e] {
                let r = run_benchmark(id, n, 4);
                println!(
                    "{:<12}{:>16.0}{:>18.0}{:>16.0}",
                    id.label(),
                    r.total_mflops,
                    r.compute_mflops_total,
                    r.comm_mb_s_total
                );
            }
        }
        "report" => {
            let Some(mid) = args.get(1).and_then(|a| machine_id(a)) else { usage() };
            use gasnub::core::report::{machine_report, ReportOptions};
            let mut machine: Box<dyn Machine> = match mid {
                MachineId::Dec8400 => Box::new(Dec8400::new()),
                MachineId::CrayT3d => Box::new(T3d::new()),
                MachineId::CrayT3e => Box::new(T3e::new()),
                MachineId::Custom => unreachable!("machine_id never returns Custom"),
            };
            machine.set_limits(MeasureLimits::fast());
            println!("{}", machine_report(machine.as_mut(), &ReportOptions::quick()));
        }
        "scale" => {
            let (Some(mid), Some(n), Some(p)) = (
                args.get(1).and_then(|a| machine_id(a)),
                args.get(2).and_then(|a| a.parse::<u64>().ok()),
                args.get(3).and_then(|a| a.parse::<u64>().ok()),
            ) else {
                usage()
            };
            let point = scalability::project(mid, n, p);
            println!(
                "{} 2D-FFT({}x{}) on {} PEs: {:.1} GFlop/s total, {:.1} MFlop/s per PE{}",
                mid,
                n,
                n,
                p,
                point.gflops_total,
                point.mflops_per_pe,
                if point.bisection_limited { " (bisection limited)" } else { "" }
            );
        }
        _ => usage(),
    }
}

// Thin wrappers so the binary does not need gasnub-bench as a public
// dependency of the facade library (it is a dev-style tool dependency).
fn gasnub_bench_figures() -> Vec<(&'static str, &'static str)> {
    gasnub_bench::all_figures().into_iter().map(|f| (f.id, f.title)).collect()
}

fn gasnub_bench_run_all(quick: bool) -> Vec<(&'static str, &'static str, String)> {
    gasnub_bench::all_figures()
        .into_iter()
        .map(|f| {
            let out = f.run(quick);
            (f.id, f.title, out.text)
        })
        .collect()
}

fn gasnub_bench_run_one(id: &str, quick: bool) -> Option<(&'static str, &'static str, String)> {
    let f = gasnub_bench::figure_by_id(id)?;
    let out = f.run(quick);
    Some((f.id, f.title, out.text))
}
