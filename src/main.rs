//! The `gasnub` command-line tool: one front door to the reproduction.
//!
//! ```text
//! gasnub figures list
//! gasnub figures fig15 --quick
//! gasnub compare
//! gasnub fft 512
//! gasnub scale t3d 2048 512
//! gasnub faults t3d --seed 7 --severity 0.5
//! gasnub sweep t3e deposit --checkpoint /tmp/t3e.json --max-cells 10
//! gasnub trace t3d deposit --ws 4194304 --stride 8
//! gasnub sweep dec8400 pull --checkpoint /tmp/pull.json --counters -
//! ```
//!
//! Every usage error (unknown subcommand, unknown figure or machine,
//! malformed numeric argument) prints a message to stderr and exits with
//! code 2; the tool never panics on bad input.

use std::time::Duration;

use gasnub::analytic::TieredSpec;
use gasnub::core::compare::Comparison;
use gasnub::core::counters::collect_counters;
use gasnub::core::json::Json;
use gasnub::core::{auto_threads, run_indexed, Grid, ResilientSweep, SweepOp};
use gasnub::fft::run_benchmark;
use gasnub::fft::scalability;
use gasnub::machines::{
    CounterSet, Dec8400, FaultPlan, Machine, MachineId, MachineRegistry, MachineSpec,
    MeasureLimits, ProbeTier, RingRecorder, SpawnEngine, T3d, T3e,
};

fn usage() -> ! {
    eprintln!(
        "usage: gasnub <command> [args]\n\
         \n\
         machines [--check]                      list every resolvable machine (built-in\n\
         \x20                                        + machines/zoo specs; --check builds\n\
         \x20                                        and smoke-probes each one)\n\
         figures <list|all|figNN...> [--quick]   regenerate paper figures\n\
         compare                                 the §9 cross-machine table\n\
         fft [n]                                 2D-FFT benchmark (figs 15-17) at size n\n\
         scale <t3d|t3e> <n> <npes>              §8 scalability projection\n\
         report <machine>                        full markdown characterization report\n\
         faults <machine> [--seed N] [--severity S] [--threads N] [--counters FILE]\n\
         \x20       [--cold]                         healthy-vs-degraded remote bandwidth\n\
         sweep <machine> <op> --checkpoint FILE [--max-cells N] [--budget-secs N]\n\
         \x20       [--seed N] [--severity S]        checkpointed/resumable surface sweep\n\
         \x20       [--threads N]                    (op: load, store, copy-loads,\n\
         \x20       [--counters FILE]                copy-stores, pull, fetch, deposit;\n\
         \x20       [--counters-csv FILE]            --threads 0 = all cores; FILE '-'\n\
         \x20       [--retries N]                    writes to stdout; retry panicking\n\
         \x20       [--cell-timeout-ms N]            cells N times; cap each cell's wall\n\
         \x20       [--force-restart]                clock; move a corrupt checkpoint to\n\
         \x20       [--cold] [--fsync-every N]       FILE.corrupt and start fresh; --cold\n\
         \x20       [--tier auto|analytic|sim]       disables the warm path (memoized\n\
         \x20                                        probes + fast priming); fsync the\n\
         \x20                                        checkpoint every N cells (default 16);\n\
         \x20                                        --tier auto answers calibration-trusted\n\
         \x20                                        cells analytically, simulates the rest\n\
         \x20                                        (default sim; fault plans force sim)\n\
         trace <machine> <op> [--ws BYTES] [--stride WORDS] [--seed N] [--severity S]\n\
         \x20       [--cold] [--tier auto|sim]       one probe's harvested counters and\n\
         \x20                                        trace events, as canonical JSON\n\
         serve [--addr HOST:PORT] [--state-dir DIR] [--threads N]\n\
         \x20       [--tier auto|analytic|sim]       characterization-as-a-service: JSON\n\
         \x20                                        API over HTTP (POST /v1/sweep,\n\
         \x20                                        POST /v1/probe, GET /v1/machines,\n\
         \x20                                        GET /metrics); sweeps are cached,\n\
         \x20                                        coalesced and resume warm from DIR\n\
         \x20                                        (default 127.0.0.1:7177, .gasnub-serve)\n\
         \n\
         <machine> is any name `gasnub machines` lists: built-ins plus spec\n\
         files under machines/zoo/ (override the directory with $GASNUB_ZOO)\n\
         \n\
         (see also: cargo run -p gasnub-bench --bin figures / --bin experiments)"
    );
    std::process::exit(2);
}

/// Exits with code 2 after printing a specific usage error.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("gasnub: {message}");
    eprintln!("(run `gasnub` with no arguments for usage)");
    std::process::exit(2);
}

fn all_machines() -> Vec<Box<dyn Machine>> {
    let mut v: Vec<Box<dyn Machine>> = vec![
        Box::new(Dec8400::new()),
        Box::new(T3d::new()),
        Box::new(T3e::new()),
    ];
    for m in &mut v {
        m.set_limits(MeasureLimits::fast());
    }
    v
}

/// Resolves a machine that the §8 scalability projection can model. Any
/// registry name is accepted; names that resolve to a machine outside the
/// paper's three systems are a precise capability error, and unknown names
/// get the registry's full "expected ..." list — the same list every other
/// subcommand uses.
fn paper_machine_id(registry: &MachineRegistry, label: &str) -> MachineId {
    let spec = registry.resolve(label).unwrap_or_else(|e| fail(e));
    match spec.id() {
        MachineId::Custom => fail(format!(
            "machine {:?} has no scalability model (the §8 projection covers \
             dec8400, t3d and t3e)",
            spec.label()
        )),
        id => id,
    }
}

/// Parses a required numeric argument, failing with exit code 2 on garbage.
fn parse_num<T: std::str::FromStr>(what: &str, text: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(format!("{what}: malformed number {text:?}")))
}

/// Minimal flag parser: `--flag value` pairs, bare `--flag` booleans
/// (listed in `known_bool`, recorded with value `"true"`), plus positional
/// arguments. Unknown flags are usage errors.
fn split_flags(
    args: &[String],
    known: &[&str],
    known_bool: &[&str],
) -> (Vec<String>, Vec<(String, String)>) {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if known_bool.contains(&name) {
                flags.push((name.to_string(), "true".to_string()));
                continue;
            }
            if !known.contains(&name) {
                fail(format!("unknown flag --{name}"));
            }
            let Some(value) = it.next() else {
                fail(format!("--{name} needs a value"))
            };
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(arg.clone());
        }
    }
    (positional, flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// The spec of the machine named on the command line, resolved through the
/// registry (built-ins + zoo files), with fast limits and the fault plan
/// (if any) folded in. Unknown names fail with the registry's full list of
/// resolvable machines; a fault plan on a machine without a remote path or
/// shared bus is a usage error (exit 2).
fn build_spec(registry: &MachineRegistry, label: &str, plan: Option<&FaultPlan>) -> MachineSpec {
    let mut spec = registry
        .resolve(label)
        .unwrap_or_else(|e| fail(e))
        .clone()
        .with_limits(MeasureLimits::fast());
    if let Some(plan) = plan {
        spec = spec.with_faults(plan).unwrap_or_else(|e| fail(e));
    }
    spec
}

/// The plan described by `--seed` / `--severity` flags (defaults 0 / 0.5).
fn plan_from_flags(flags: &[(String, String)]) -> FaultPlan {
    let seed: u64 = flag(flags, "seed").map_or(0, |v| parse_num("--seed", v));
    let severity: f64 = flag(flags, "severity").map_or(0.5, |v| parse_num("--severity", v));
    FaultPlan::new(seed, severity).unwrap_or_else(|e| fail(e))
}

/// Options every probing subcommand (`sweep`, `faults`, `trace`) shares,
/// parsed in one place with the single exit-2 usage path: worker count,
/// execution tier, fault plan, counter outputs, checkpoint fsync cadence
/// and the `--cold` escape hatch.
struct CommonOpts {
    threads: usize,
    tier: ProbeTier,
    /// Present iff `--seed` / `--severity` appeared (the `faults`
    /// subcommand applies its own 0 / 0.5 defaults on top).
    plan: Option<FaultPlan>,
    counters: Option<String>,
    counters_csv: Option<String>,
    fsync_every: Option<u64>,
}

impl CommonOpts {
    /// The value-taking flags shared by the probing subcommands.
    const VALUE_FLAGS: [&'static str; 7] = [
        "threads",
        "tier",
        "seed",
        "severity",
        "counters",
        "counters-csv",
        "fsync-every",
    ];

    /// The boolean flags shared by the probing subcommands.
    const BOOL_FLAGS: [&'static str; 1] = ["cold"];

    /// The shared value flags plus a subcommand's own.
    fn value_flags(extra: &[&'static str]) -> Vec<&'static str> {
        let mut all = Self::VALUE_FLAGS.to_vec();
        all.extend_from_slice(extra);
        all
    }

    /// The shared boolean flags plus a subcommand's own.
    fn bool_flags(extra: &[&'static str]) -> Vec<&'static str> {
        let mut all = Self::BOOL_FLAGS.to_vec();
        all.extend_from_slice(extra);
        all
    }

    /// Parses the shared options out of an already-split flag list and
    /// applies the process-wide ones (`--cold` disables the warm execution
    /// path: probe memoization, fast priming, and every analytic shortcut).
    fn parse(flags: &[(String, String)]) -> CommonOpts {
        if flag(flags, "cold").is_some() {
            gasnub::memsim::set_cold_path(true);
        }
        let tier = match flag(flags, "tier") {
            None => ProbeTier::Simulate,
            Some(v) => ProbeTier::parse(v).unwrap_or_else(|| {
                fail(format!("--tier must be auto, analytic or sim, got {v:?}"))
            }),
        };
        let threads = match flag(flags, "threads") {
            None => 1,
            Some(v) => match parse_num::<usize>("--threads", v) {
                0 => auto_threads(),
                n => n,
            },
        };
        CommonOpts {
            threads,
            tier,
            plan: (flag(flags, "seed").is_some() || flag(flags, "severity").is_some())
                .then(|| plan_from_flags(flags)),
            counters: flag(flags, "counters").map(str::to_string),
            counters_csv: flag(flags, "counters-csv").map(str::to_string),
            fsync_every: flag(flags, "fsync-every").map(|v| parse_num("--fsync-every", v)),
        }
    }

    /// The tier probes actually run at: a fault plan forces `sim`, since
    /// analytic models are calibrated against the healthy installation
    /// only. Prints the downgrade once so the choice is visible.
    fn effective_tier(&self) -> ProbeTier {
        if self.plan.is_some() && self.tier != ProbeTier::Simulate {
            eprintln!(
                "gasnub: fault plan active, --tier {} downgraded to sim \
                 (analytic models cover healthy installations only)",
                self.tier.label()
            );
            return ProbeTier::Simulate;
        }
        self.tier
    }
}

/// Writes a report to `path`, with `-` meaning stdout.
fn write_output(path: &str, text: &str) {
    if path == "-" {
        print!("{text}");
    } else {
        std::fs::write(path, text).unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        println!("counter report written to {path}");
    }
}

/// A [`CounterSet`] as a canonical JSON object.
fn counters_to_json(counters: &CounterSet) -> Json {
    Json::Object(
        counters
            .iter()
            .map(|(name, value)| (name.to_string(), Json::U64(value)))
            .collect(),
    )
}

fn trace_cmd(registry: &MachineRegistry, args: &[String]) {
    let (positional, flags) = split_flags(
        args,
        &CommonOpts::value_flags(&["ws", "stride"]),
        &CommonOpts::bool_flags(&[]),
    );
    let [label, op] = positional.as_slice() else {
        fail(
            "trace takes a machine and an operation \
             (load, store, copy-loads, copy-stores, pull, fetch, deposit)",
        );
    };
    let Some(op) = SweepOp::parse(op) else {
        fail(format!("unknown operation {op:?}"))
    };
    let opts = CommonOpts::parse(&flags);
    if opts.tier == ProbeTier::Analytic {
        fail(
            "trace needs a real simulation to harvest events and counters; \
             the analytic tier has none (use --tier sim, or auto — observed \
             probes always simulate)",
        );
    }
    let ws: u64 = flag(&flags, "ws").map_or(4 << 20, |v| parse_num("--ws", v));
    let stride: u64 = flag(&flags, "stride").map_or(1, |v| parse_num("--stride", v));
    let spec = build_spec(registry, label, opts.plan.as_ref());
    let mut engine = spec.spawn_engine().unwrap_or_else(|e| fail(e));
    engine.set_recorder(Box::new(RingRecorder::new(8)));
    let Some(mb_s) = op.measure(&mut engine, ws, stride) else {
        fail(format!("{} does not support {}", engine.name(), op.label()))
    };
    let counters = engine.take_counters().unwrap_or_default();
    let events = Json::Array(
        engine
            .drain_events()
            .iter()
            .map(|event| {
                Json::object([
                    ("label", Json::Str(event.label.clone())),
                    (
                        "fields",
                        Json::Object(
                            event
                                .fields
                                .iter()
                                .map(|(name, value)| (name.clone(), Json::U64(*value)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let doc = Json::object([
        ("machine", Json::Str(engine.label())),
        ("op", Json::Str(op.label().to_string())),
        ("ws_bytes", Json::U64(ws)),
        ("stride", Json::U64(stride)),
        ("mb_s_bits", Json::U64(mb_s.to_bits())),
        ("counters", counters_to_json(&counters)),
        ("events", events),
    ]);
    println!("{}", doc.render());
}

fn faults_cmd(registry: &MachineRegistry, args: &[String]) {
    let (positional, flags) = split_flags(
        args,
        &CommonOpts::value_flags(&[]),
        &CommonOpts::bool_flags(&[]),
    );
    let [label] = positional.as_slice() else {
        fail("faults takes exactly one machine argument");
    };
    let opts = CommonOpts::parse(&flags);
    if opts.tier != ProbeTier::Simulate {
        eprintln!(
            "gasnub: faults always simulates (degraded installations are \
             outside the analytic calibration); ignoring --tier {}",
            opts.tier.label()
        );
    }
    let plan = plan_from_flags(&flags);
    let threads = opts.threads;

    let torus = gasnub::faults::canonical_torus();
    let channel_faults = plan.channel_faults_for(&torus);
    let impact = plan.remote_impact().unwrap_or_else(|e| fail(e));
    let healthy_spec = build_spec(registry, label, None);
    let degraded_spec = build_spec(registry, label, Some(&plan));
    let healthy = healthy_spec.spawn_engine().unwrap_or_else(|e| fail(e));

    println!(
        "Fault plan seed={} severity={:.2}: {} failed / {} degraded channels on the 8x8x8 torus,",
        plan.seed(),
        plan.severity(),
        channel_faults.failed_count(),
        channel_faults.degraded_count(),
    );
    println!(
        "remote route {} -> {} hops, bottleneck capacity {:.0}%, NI loss {:.1}%/attempt.\n",
        impact.healthy_hops,
        impact.hops,
        impact.min_capacity_factor * 100.0,
        plan.ni_loss().loss_probability * 100.0,
    );
    println!(
        "{} remote bandwidth, healthy vs degraded (MB/s):\n",
        healthy.name()
    );
    println!(
        "{:<9}{:>10}{:>8}{:>12}{:>12}{:>10}",
        "op", "ws", "stride", "healthy", "degraded", "ratio"
    );
    let ws = 4 << 20;
    let ops = [
        SweepOp::RemoteLoad,
        SweepOp::RemoteFetch,
        SweepOp::RemoteDeposit,
    ];
    let strides = [1u64, 8, 64];
    let jobs: Vec<(SweepOp, u64)> = ops
        .iter()
        .flat_map(|&op| strides.iter().map(move |&s| (op, s)))
        .collect();
    // Every probe starts on a fresh engine (identical to a flushed one), so
    // the table is bit-identical for any worker count.
    let cells = run_indexed(threads, jobs.len(), |i| {
        let (op, stride) = jobs[i];
        let pair = |spec: &MachineSpec| {
            spec.spawn_engine()
                .map(|mut m| op.measure(&mut m, ws, stride))
        };
        pair(&healthy_spec).and_then(|h| pair(&degraded_spec).map(|d| (h, d)))
    });
    for ((op, stride), cell) in jobs.iter().zip(cells) {
        let (h, d) = cell.unwrap_or_else(|e| fail(e));
        let (Some(h), Some(d)) = (h, d) else { continue };
        println!(
            "{:<9}{:>9}M{stride:>8}{h:>12.1}{d:>12.1}{:>10.2}",
            op.label(),
            ws >> 20,
            if h > 0.0 { d / h } else { 0.0 }
        );
    }

    // With --counters, re-measure each cell with a recorder installed and
    // report the healthy/degraded mechanism counters side by side (fresh
    // engines, gathered in job order: deterministic for any worker count).
    if let Some(path) = opts.counters.as_deref() {
        let observed = run_indexed(threads, jobs.len(), |i| {
            let (op, stride) = jobs[i];
            let side = |spec: &MachineSpec| {
                spec.spawn_engine().map(|mut m| {
                    m.set_recorder(Box::new(RingRecorder::new(8)));
                    op.measure(&mut m, ws, stride)
                        .map(|mb_s| (mb_s, m.take_counters().unwrap_or_default()))
                })
            };
            side(&healthy_spec).and_then(|h| side(&degraded_spec).map(|d| (h, d)))
        });
        let mut rows = Vec::new();
        for ((op, stride), cell) in jobs.iter().zip(observed) {
            let (h, d) = cell.unwrap_or_else(|e| fail(e));
            let side = |s: Option<(f64, CounterSet)>| match s {
                None => Json::Null,
                Some((mb_s, counters)) => Json::object([
                    ("mb_s_bits", Json::U64(mb_s.to_bits())),
                    ("counters", counters_to_json(&counters)),
                ]),
            };
            rows.push(Json::object([
                ("op", Json::Str(op.label().to_string())),
                ("ws_bytes", Json::U64(ws)),
                ("stride", Json::U64(*stride)),
                ("healthy", side(h)),
                ("degraded", side(d)),
            ]));
        }
        let mut route = CounterSet::new();
        impact.export_counters(&mut route);
        let doc = Json::object([
            ("machine", Json::Str(healthy.label())),
            ("seed", Json::U64(plan.seed())),
            (
                "severity_ppm",
                Json::U64((plan.severity() * 1_000_000.0).round() as u64),
            ),
            ("route", counters_to_json(&route)),
            ("cells", Json::Array(rows)),
        ]);
        let mut text = doc.render();
        text.push('\n');
        write_output(path, &text);
    }
}

fn sweep_cmd(registry: &MachineRegistry, args: &[String]) {
    let (positional, flags) = split_flags(
        args,
        &CommonOpts::value_flags(&[
            "checkpoint",
            "max-cells",
            "budget-secs",
            "retries",
            "cell-timeout-ms",
        ]),
        &CommonOpts::bool_flags(&["force-restart"]),
    );
    let [label, op] = positional.as_slice() else {
        fail(
            "sweep takes a machine and an operation \
             (load, store, copy-loads, copy-stores, pull, fetch, deposit)",
        );
    };
    let Some(op) = SweepOp::parse(op) else {
        fail(format!("unknown operation {op:?}"))
    };
    let Some(checkpoint) = flag(&flags, "checkpoint") else {
        fail("sweep needs --checkpoint FILE (re-run with the same file to resume)");
    };

    let opts = CommonOpts::parse(&flags);
    let tier = opts.effective_tier();
    let plan = opts.plan;
    let spec = build_spec(registry, label, plan.as_ref());
    let threads = opts.threads;

    // The checkpoint carries the machine description's hash, so resuming
    // against an edited zoo file (or a different fault plan) is caught
    // instead of silently mixing measurements.
    let mut runner = ResilientSweep::new(checkpoint).with_spec_hash(spec.spec_hash());
    if let Some(n) = flag(&flags, "max-cells") {
        runner = runner.with_max_cells(parse_num("--max-cells", n));
    }
    if let Some(secs) = flag(&flags, "budget-secs") {
        runner = runner.with_budget(Duration::from_secs(parse_num("--budget-secs", secs)));
    }
    if let Some(n) = flag(&flags, "retries") {
        runner = runner.with_retries(parse_num("--retries", n));
    }
    if let Some(ms) = flag(&flags, "cell-timeout-ms") {
        runner =
            runner.with_cell_timeout(Duration::from_millis(parse_num("--cell-timeout-ms", ms)));
    }
    if flag(&flags, "force-restart").is_some() {
        runner = runner.with_force_restart(true);
    }
    if let Some(n) = opts.fsync_every {
        runner = runner.with_fsync_every(n);
    }

    let name = spec.spawn_engine().unwrap_or_else(|e| fail(e)).name();
    // The tier rides in the title so a checkpoint started under one tier
    // refuses to resume under another (the foreign-title check fires),
    // keeping every checkpoint's provenance uniform. The spelling is shared
    // with `gasnub serve`, whose sweep bodies must be byte-identical to
    // these offline checkpoints.
    let title = op.checkpoint_title(&name, plan.is_some(), tier);
    let grid = Grid::quick();
    let run = |runner: &ResilientSweep| match tier {
        ProbeTier::Simulate => runner.run_parallel_op(&title, &grid, threads, &spec, op),
        tier => {
            let spawner = TieredSpec::new(spec.clone(), tier).unwrap_or_else(|e| fail(e));
            runner.run_parallel_op(&title, &grid, threads, &spawner, op)
        }
    };
    let outcome = run(&runner).unwrap_or_else(|e| match e {
        gasnub::core::SweepError::Checkpoint(ck) if ck.force_restart_recoverable() => fail(
            format!("{ck}\n(re-run with --force-restart to move it aside and start fresh)"),
        ),
        other => fail(other),
    });

    println!("{}", outcome.surface.render());
    println!(
        "cells: {} measured, {} resumed from checkpoint, {} failed, {} pending",
        outcome.measured,
        outcome.resumed,
        outcome.failed.len(),
        outcome.pending
    );
    for f in &outcome.failed {
        println!(
            "  failed ws={} stride={} [{} after {} attempt{}]: {}",
            f.ws_bytes,
            f.stride,
            f.kind.label(),
            f.attempts,
            if f.attempts == 1 { "" } else { "s" },
            f.error
        );
    }
    if !outcome.robustness.is_empty() {
        let parts: Vec<String> = outcome
            .robustness
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        println!("robustness: {}", parts.join(" "));
    }
    if outcome.is_complete() {
        println!("sweep complete (checkpoint kept at {checkpoint})");
    } else {
        println!("sweep interrupted; re-run the same command to resume from {checkpoint}");
    }

    // With --counters / --counters-csv, sweep the same grid again with
    // recorders installed and emit the per-cell counter report (JSON is the
    // golden-trace format; CSV is the counter-annotated figure form).
    let json_path = opts.counters.as_deref();
    let csv_path = opts.counters_csv.as_deref();
    if json_path.is_some() || csv_path.is_some() {
        let mut report = collect_counters(&spec, op, &grid, threads)
            .unwrap_or_else(|e| fail(e))
            .unwrap_or_else(|| fail(format!("{label} does not support {}", op.label())));
        // The sweep's robustness counters ride along in the report, so a
        // troubled run's retries/quarantines/timeouts are visible next to
        // the mechanism counters they disturbed.
        report.robustness = outcome.robustness.clone();
        if let Some(path) = json_path {
            write_output(path, &report.render_json());
        }
        if let Some(path) = csv_path {
            write_output(path, &report.to_csv());
        }
    }
}

/// Lists every resolvable machine; with `--check`, also parses, builds and
/// smoke-probes each one (the CI gate for `machines/zoo/`). Broken zoo
/// files and failed checks exit 2 like every other usage error.
fn machines_cmd(registry: &MachineRegistry, args: &[String]) {
    let (positional, flags) = split_flags(args, &[], &["check"]);
    if !positional.is_empty() {
        fail(format!(
            "machines takes no positional arguments, got {positional:?}"
        ));
    }
    let check = flag(&flags, "check").is_some();

    println!("{:<10}{:<7}{:>10}  summary", "name", "model", "clock");
    for spec in registry.specs() {
        println!(
            "{:<10}{:<7}{:>6} MHz  {}",
            spec.label(),
            spec.model_family(),
            spec.clock_mhz(),
            if spec.summary().is_empty() {
                spec.display_name()
            } else {
                spec.summary().to_string()
            }
        );
    }
    for broken in registry.broken() {
        eprintln!(
            "gasnub: broken spec {}: {}",
            broken.path.display(),
            broken.message
        );
    }

    // A bare listing stays usable with broken zoo files (they are already
    // surfaced above); --check treats them as failures.
    let mut failures = if check { registry.broken().len() } else { 0 };
    if check {
        println!();
        for spec in registry.specs() {
            // Round-trip sanity first: the serialized form must describe
            // the same machine.
            let text = spec.to_spec_string();
            match MachineSpec::from_spec_str(&text) {
                Ok(back) if back == *spec => {}
                Ok(_) => {
                    println!(
                        "{:<10} FAIL: serialization round trip drifted",
                        spec.label()
                    );
                    failures += 1;
                    continue;
                }
                Err(e) => {
                    println!(
                        "{:<10} FAIL: serialized form does not parse: {e}",
                        spec.label()
                    );
                    failures += 1;
                    continue;
                }
            }
            // Then a fast-limits smoke probe: build an engine and take one
            // local (and, where supported, one remote) measurement.
            let fast = spec.clone().with_limits(MeasureLimits::fast());
            let mut engine = match fast.spawn_engine() {
                Ok(engine) => engine,
                Err(e) => {
                    println!("{:<10} FAIL: does not build: {e}", spec.label());
                    failures += 1;
                    continue;
                }
            };
            let local = engine.local_load(1 << 20, 1);
            let remote = engine.remote_fetch(1 << 20, 1);
            if !(local.mb_s.is_finite() && local.mb_s > 0.0) {
                println!(
                    "{:<10} FAIL: local probe returned {} MB/s",
                    spec.label(),
                    local.mb_s
                );
                failures += 1;
                continue;
            }
            match remote {
                Some(r) if !(r.mb_s.is_finite() && r.mb_s > 0.0) => {
                    println!(
                        "{:<10} FAIL: remote probe returned {} MB/s",
                        spec.label(),
                        r.mb_s
                    );
                    failures += 1;
                    continue;
                }
                _ => {}
            }
            match remote {
                Some(r) => println!(
                    "{:<10} ok: local {:.0} MB/s, remote {:.0} MB/s",
                    spec.label(),
                    local.mb_s,
                    r.mb_s
                ),
                None => println!("{:<10} ok: local {:.0} MB/s", spec.label(), local.mb_s),
            }
        }
    }
    if failures > 0 {
        fail(format!(
            "{failures} machine spec{} failed",
            if failures == 1 { "" } else { "s" }
        ));
    }
}

/// The `serve` subcommand: boots the characterization server, prints one
/// parseable `serving on http://…` line (the actual port when `:0` was
/// requested), blocks until `POST /v1/shutdown`, and prints the shutdown
/// counter report.
fn serve_cmd(args: &[String]) {
    let (positional, flags) = split_flags(args, &["addr", "state-dir", "threads", "tier"], &[]);
    if let Some(extra) = positional.first() {
        fail(format!(
            "serve takes no positional arguments, got {extra:?}"
        ));
    }
    let addr = flag(&flags, "addr").unwrap_or("127.0.0.1:7177");
    let state_dir = flag(&flags, "state-dir").unwrap_or(".gasnub-serve");
    let threads = match flag(&flags, "threads") {
        None => 1,
        Some(v) => match parse_num::<usize>("--threads", v) {
            0 => auto_threads(),
            n => n,
        },
    };
    let tier = match flag(&flags, "tier") {
        None => ProbeTier::Simulate,
        Some(v) => ProbeTier::parse(v)
            .unwrap_or_else(|| fail(format!("--tier must be auto, analytic or sim, got {v:?}"))),
    };
    let config = gasnub::serve::ServeConfig::new(addr, state_dir)
        .with_threads(threads)
        .with_tier(tier);
    let server = gasnub::serve::Server::bind(config).unwrap_or_else(|e| fail(e));
    println!("gasnub: serving on http://{}", server.local_addr());
    let report = server.run();
    let pairs: Vec<String> = report.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("serving: {}", pairs.join(" "));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let registry = MachineRegistry::discover();

    match command.as_str() {
        "machines" => machines_cmd(&registry, &args[1..]),
        "figures" => {
            // Delegate to the bench harness logic by shelling through its
            // library API.
            let quick = args.iter().any(|a| a == "--quick");
            let rest: Vec<&String> = args
                .iter()
                .skip(1)
                .filter(|a| !a.starts_with("--"))
                .collect();
            if rest.iter().any(|s| s.as_str() == "list") || rest.is_empty() {
                for f in gasnub_bench_figures() {
                    println!("{:<7} {}", f.0, f.1);
                }
                return;
            }
            for sel in rest {
                let figures = if sel == "all" {
                    gasnub_bench_run_all(quick)
                } else {
                    vec![gasnub_bench_run_one(sel, quick)
                        .unwrap_or_else(|| fail(format!("unknown figure {sel:?}")))]
                };
                for (id, title, text) in figures {
                    println!("---- {id} — {title}\n{text}");
                }
            }
        }
        "compare" => {
            let mut machines = all_machines();
            let c = Comparison::measure(&mut machines, 32 << 20);
            println!("Cross-machine summary, 32 MB working sets (MB/s):\n");
            println!("{}", c.render());
        }
        "fft" => {
            let n: usize = match args.get(1) {
                None => 256,
                Some(a) => parse_num("fft size", a),
            };
            println!("2D-FFT on 4 PEs, n = {n}:");
            println!(
                "{:<12}{:>16}{:>18}{:>16}",
                "machine", "total MFlop/s", "compute MFlop/s", "comm MB/s"
            );
            for id in [MachineId::CrayT3d, MachineId::Dec8400, MachineId::CrayT3e] {
                let r = run_benchmark(id, n, 4);
                println!(
                    "{:<12}{:>16.0}{:>18.0}{:>16.0}",
                    id.label(),
                    r.total_mflops,
                    r.compute_mflops_total,
                    r.comm_mb_s_total
                );
            }
        }
        "report" => {
            let Some(label) = args.get(1) else { usage() };
            use gasnub::core::report::{machine_report, ReportOptions};
            let mut machine = build_spec(&registry, label, None)
                .spawn_engine()
                .unwrap_or_else(|e| fail(e));
            println!("{}", machine_report(&mut machine, &ReportOptions::quick()));
        }
        "scale" => {
            let (Some(label), Some(n), Some(p)) = (args.get(1), args.get(2), args.get(3)) else {
                usage()
            };
            let mid = paper_machine_id(&registry, label);
            let n: u64 = parse_num("scale size", n);
            let p: u64 = parse_num("scale PE count", p);
            let point = scalability::project(mid, n, p);
            println!(
                "{} 2D-FFT({}x{}) on {} PEs: {:.1} GFlop/s total, {:.1} MFlop/s per PE{}",
                mid,
                n,
                n,
                p,
                point.gflops_total,
                point.mflops_per_pe,
                if point.bisection_limited {
                    " (bisection limited)"
                } else {
                    ""
                }
            );
        }
        "faults" => faults_cmd(&registry, &args[1..]),
        "sweep" => sweep_cmd(&registry, &args[1..]),
        "trace" => trace_cmd(&registry, &args[1..]),
        "serve" => serve_cmd(&args[1..]),
        _ => usage(),
    }
}

// Thin wrappers so the binary does not need gasnub-bench as a public
// dependency of the facade library (it is a dev-style tool dependency).
fn gasnub_bench_figures() -> Vec<(&'static str, &'static str)> {
    gasnub_bench::all_figures()
        .into_iter()
        .map(|f| (f.id, f.title))
        .collect()
}

fn gasnub_bench_run_all(quick: bool) -> Vec<(&'static str, &'static str, String)> {
    gasnub_bench::all_figures()
        .into_iter()
        .map(|f| {
            let out = f.run(quick);
            (f.id, f.title, out.text)
        })
        .collect()
}

fn gasnub_bench_run_one(id: &str, quick: bool) -> Option<(&'static str, &'static str, String)> {
    let f = gasnub_bench::figure_by_id(id)?;
    let out = f.run(quick);
    Some((f.id, f.title, out.text))
}
