//! The `gasnub` command-line tool: one front door to the reproduction.
//!
//! ```text
//! gasnub figures list
//! gasnub figures fig15 --quick
//! gasnub compare
//! gasnub fft 512
//! gasnub scale t3d 2048 512
//! gasnub faults t3d --seed 7 --severity 0.5
//! gasnub sweep t3e deposit --checkpoint /tmp/t3e.json --max-cells 10
//! ```
//!
//! Every usage error (unknown subcommand, unknown figure or machine,
//! malformed numeric argument) prints a message to stderr and exits with
//! code 2; the tool never panics on bad input.

use std::time::Duration;

use gasnub::core::compare::Comparison;
use gasnub::core::{Grid, ResilientSweep};
use gasnub::fft::run_benchmark;
use gasnub::fft::scalability;
use gasnub::machines::{
    Dec8400, FaultPlan, Machine, MachineId, MeasureLimits, T3d, T3e,
};
use gasnub::memsim::SimError;

fn usage() -> ! {
    eprintln!(
        "usage: gasnub <command> [args]\n\
         \n\
         figures <list|all|figNN...> [--quick]   regenerate paper figures\n\
         compare                                 the §9 cross-machine table\n\
         fft [n]                                 2D-FFT benchmark (figs 15-17) at size n\n\
         scale <t3d|t3e> <n> <npes>              §8 scalability projection\n\
         report <dec8400|t3d|t3e>                full markdown characterization report\n\
         faults <machine> [--seed N] [--severity S]\n\
         \x20                                        healthy-vs-degraded remote bandwidth\n\
         sweep <machine> <op> --checkpoint FILE [--max-cells N] [--budget-secs N]\n\
         \x20       [--seed N] [--severity S]        checkpointed/resumable surface sweep\n\
         \x20                                        (op: load, store, pull, fetch, deposit)\n\
         \n\
         (see also: cargo run -p gasnub-bench --bin figures / --bin experiments)"
    );
    std::process::exit(2);
}

/// Exits with code 2 after printing a specific usage error.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("gasnub: {message}");
    eprintln!("(run `gasnub` with no arguments for usage)");
    std::process::exit(2);
}

fn all_machines() -> Vec<Box<dyn Machine>> {
    let mut v: Vec<Box<dyn Machine>> =
        vec![Box::new(Dec8400::new()), Box::new(T3d::new()), Box::new(T3e::new())];
    for m in &mut v {
        m.set_limits(MeasureLimits::fast());
    }
    v
}

fn machine_id(label: &str) -> MachineId {
    match MachineId::from_label(label) {
        Some(MachineId::Custom) | None => fail(format!(
            "unknown machine {label:?} (expected dec8400, t3d or t3e)"
        )),
        Some(id) => id,
    }
}

/// Parses a required numeric argument, failing with exit code 2 on garbage.
fn parse_num<T: std::str::FromStr>(what: &str, text: &str) -> T {
    text.parse().unwrap_or_else(|_| fail(format!("{what}: malformed number {text:?}")))
}

/// Minimal flag parser: `--flag value` pairs plus positional arguments.
/// Unknown flags are usage errors.
fn split_flags(args: &[String], known: &[&str]) -> (Vec<String>, Vec<(String, String)>) {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if !known.contains(&name) {
                fail(format!("unknown flag --{name}"));
            }
            let Some(value) = it.next() else { fail(format!("--{name} needs a value")) };
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(arg.clone());
        }
    }
    (positional, flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// Builds one machine, healthy or degraded by `plan`, with fast limits.
fn build_machine(id: MachineId, plan: Option<&FaultPlan>) -> Result<Box<dyn Machine>, SimError> {
    let mut machine: Box<dyn Machine> = match (id, plan) {
        (MachineId::Dec8400, None) => Box::new(Dec8400::new()),
        (MachineId::Dec8400, Some(p)) => Box::new(Dec8400::with_faults(p)?),
        (MachineId::CrayT3d, None) => Box::new(T3d::new()),
        (MachineId::CrayT3d, Some(p)) => Box::new(T3d::with_faults(p)?),
        (MachineId::CrayT3e, None) => Box::new(T3e::new()),
        (MachineId::CrayT3e, Some(p)) => Box::new(T3e::with_faults(p)?),
        (MachineId::Custom, _) => return Err(SimError::unsupported("custom machine in CLI")),
    };
    machine.set_limits(MeasureLimits::fast());
    Ok(machine)
}

/// The plan described by `--seed` / `--severity` flags (defaults 0 / 0.5).
fn plan_from_flags(flags: &[(String, String)]) -> FaultPlan {
    let seed: u64 = flag(flags, "seed").map_or(0, |v| parse_num("--seed", v));
    let severity: f64 = flag(flags, "severity").map_or(0.5, |v| parse_num("--severity", v));
    FaultPlan::new(seed, severity).unwrap_or_else(|e| fail(e))
}

/// Probes one remote operation at (working set, stride), in MB/s.
type RemoteProbe = fn(&mut dyn Machine, u64, u64) -> Option<f64>;

/// The remote operations of the `faults` comparison table.
fn remote_ops() -> Vec<(&'static str, RemoteProbe)> {
    vec![
        ("pull", |m, ws, s| m.remote_load(ws, s).map(|r| r.mb_s)),
        ("fetch", |m, ws, s| m.remote_fetch(ws, s).map(|r| r.mb_s)),
        ("deposit", |m, ws, s| m.remote_deposit(ws, s).map(|r| r.mb_s)),
    ]
}

fn faults_cmd(args: &[String]) {
    let (positional, flags) = split_flags(args, &["seed", "severity"]);
    let [label] = positional.as_slice() else {
        fail("faults takes exactly one machine argument");
    };
    let id = machine_id(label);
    let plan = plan_from_flags(&flags);

    let torus = gasnub::faults::canonical_torus();
    let channel_faults = plan.channel_faults_for(&torus);
    let impact = plan.remote_impact().unwrap_or_else(|e| fail(e));
    let mut healthy = build_machine(id, None).unwrap_or_else(|e| fail(e));
    let mut degraded = build_machine(id, Some(&plan)).unwrap_or_else(|e| fail(e));

    println!(
        "Fault plan seed={} severity={:.2}: {} failed / {} degraded channels on the 8x8x8 torus,",
        plan.seed(),
        plan.severity(),
        channel_faults.failed_count(),
        channel_faults.degraded_count(),
    );
    println!(
        "remote route {} -> {} hops, bottleneck capacity {:.0}%, NI loss {:.1}%/attempt.\n",
        impact.healthy_hops,
        impact.hops,
        impact.min_capacity_factor * 100.0,
        plan.ni_loss().loss_probability * 100.0,
    );
    println!("{} remote bandwidth, healthy vs degraded (MB/s):\n", healthy.name());
    println!(
        "{:<9}{:>10}{:>8}{:>12}{:>12}{:>10}",
        "op", "ws", "stride", "healthy", "degraded", "ratio"
    );
    let ws = 4 << 20;
    for (op, probe) in remote_ops() {
        for stride in [1u64, 8, 64] {
            let h = probe(healthy.as_mut(), ws, stride);
            let d = probe(degraded.as_mut(), ws, stride);
            let (Some(h), Some(d)) = (h, d) else { continue };
            println!(
                "{op:<9}{:>9}M{stride:>8}{h:>12.1}{d:>12.1}{:>10.2}",
                ws >> 20,
                if h > 0.0 { d / h } else { 0.0 }
            );
        }
    }
}

fn sweep_cmd(args: &[String]) {
    let (positional, flags) =
        split_flags(args, &["checkpoint", "max-cells", "budget-secs", "seed", "severity"]);
    let [label, op] = positional.as_slice() else {
        fail("sweep takes a machine and an operation (load, store, pull, fetch, deposit)");
    };
    let id = machine_id(label);
    let Some(checkpoint) = flag(&flags, "checkpoint") else {
        fail("sweep needs --checkpoint FILE (re-run with the same file to resume)");
    };

    let plan = (flag(&flags, "seed").is_some() || flag(&flags, "severity").is_some())
        .then(|| plan_from_flags(&flags));
    let mut machine = build_machine(id, plan.as_ref()).unwrap_or_else(|e| fail(e));

    let mut runner = ResilientSweep::new(checkpoint);
    if let Some(n) = flag(&flags, "max-cells") {
        runner = runner.with_max_cells(parse_num("--max-cells", n));
    }
    if let Some(secs) = flag(&flags, "budget-secs") {
        runner = runner.with_budget(Duration::from_secs(parse_num("--budget-secs", secs)));
    }

    let title = format!(
        "{} {} {op}",
        machine.name(),
        if plan.is_some() { "degraded" } else { "healthy" }
    );
    let grid = Grid::quick();
    type Probe = fn(&mut dyn Machine, u64, u64) -> Option<f64>;
    let probe: Probe = match op.as_str() {
        "load" => |m, ws, s| Some(m.local_load(ws, s).mb_s),
        "store" => |m, ws, s| Some(m.local_store(ws, s).mb_s),
        "pull" => |m, ws, s| m.remote_load(ws, s).map(|r| r.mb_s),
        "fetch" => |m, ws, s| m.remote_fetch(ws, s).map(|r| r.mb_s),
        "deposit" => |m, ws, s| m.remote_deposit(ws, s).map(|r| r.mb_s),
        other => fail(format!("unknown operation {other:?}")),
    };
    let outcome = runner
        .run(&title, &grid, |ws, s| probe(machine.as_mut(), ws, s))
        .unwrap_or_else(|e| fail(e));

    println!("{}", outcome.surface.render());
    println!(
        "cells: {} measured, {} resumed from checkpoint, {} failed, {} pending",
        outcome.measured,
        outcome.resumed,
        outcome.failed.len(),
        outcome.pending
    );
    for f in &outcome.failed {
        println!("  failed ws={} stride={}: {}", f.ws_bytes, f.stride, f.error);
    }
    if outcome.is_complete() {
        println!("sweep complete (checkpoint kept at {checkpoint})");
    } else {
        println!("sweep interrupted; re-run the same command to resume from {checkpoint}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    match command.as_str() {
        "figures" => {
            // Delegate to the bench harness logic by shelling through its
            // library API.
            let quick = args.iter().any(|a| a == "--quick");
            let rest: Vec<&String> =
                args.iter().skip(1).filter(|a| !a.starts_with("--")).collect();
            if rest.iter().any(|s| s.as_str() == "list") || rest.is_empty() {
                for f in gasnub_bench_figures() {
                    println!("{:<7} {}", f.0, f.1);
                }
                return;
            }
            for sel in rest {
                let figures = if sel == "all" {
                    gasnub_bench_run_all(quick)
                } else {
                    vec![gasnub_bench_run_one(sel, quick)
                        .unwrap_or_else(|| fail(format!("unknown figure {sel:?}")))]
                };
                for (id, title, text) in figures {
                    println!("---- {id} — {title}\n{text}");
                }
            }
        }
        "compare" => {
            let mut machines = all_machines();
            let c = Comparison::measure(&mut machines, 32 << 20);
            println!("Cross-machine summary, 32 MB working sets (MB/s):\n");
            println!("{}", c.render());
        }
        "fft" => {
            let n: usize = match args.get(1) {
                None => 256,
                Some(a) => parse_num("fft size", a),
            };
            println!("2D-FFT on 4 PEs, n = {n}:");
            println!(
                "{:<12}{:>16}{:>18}{:>16}",
                "machine", "total MFlop/s", "compute MFlop/s", "comm MB/s"
            );
            for id in [MachineId::CrayT3d, MachineId::Dec8400, MachineId::CrayT3e] {
                let r = run_benchmark(id, n, 4);
                println!(
                    "{:<12}{:>16.0}{:>18.0}{:>16.0}",
                    id.label(),
                    r.total_mflops,
                    r.compute_mflops_total,
                    r.comm_mb_s_total
                );
            }
        }
        "report" => {
            let Some(label) = args.get(1) else { usage() };
            let mid = machine_id(label);
            use gasnub::core::report::{machine_report, ReportOptions};
            let mut machine = build_machine(mid, None).unwrap_or_else(|e| fail(e));
            println!("{}", machine_report(machine.as_mut(), &ReportOptions::quick()));
        }
        "scale" => {
            let (Some(label), Some(n), Some(p)) = (args.get(1), args.get(2), args.get(3)) else {
                usage()
            };
            let mid = machine_id(label);
            let n: u64 = parse_num("scale size", n);
            let p: u64 = parse_num("scale PE count", p);
            let point = scalability::project(mid, n, p);
            println!(
                "{} 2D-FFT({}x{}) on {} PEs: {:.1} GFlop/s total, {:.1} MFlop/s per PE{}",
                mid,
                n,
                n,
                p,
                point.gflops_total,
                point.mflops_per_pe,
                if point.bisection_limited { " (bisection limited)" } else { "" }
            );
        }
        "faults" => faults_cmd(&args[1..]),
        "sweep" => sweep_cmd(&args[1..]),
        _ => usage(),
    }
}

// Thin wrappers so the binary does not need gasnub-bench as a public
// dependency of the facade library (it is a dev-style tool dependency).
fn gasnub_bench_figures() -> Vec<(&'static str, &'static str)> {
    gasnub_bench::all_figures().into_iter().map(|f| (f.id, f.title)).collect()
}

fn gasnub_bench_run_all(quick: bool) -> Vec<(&'static str, &'static str, String)> {
    gasnub_bench::all_figures()
        .into_iter()
        .map(|f| {
            let out = f.run(quick);
            (f.id, f.title, out.text)
        })
        .collect()
}

fn gasnub_bench_run_one(id: &str, quick: bool) -> Option<(&'static str, &'static str, String)> {
    let f = gasnub_bench::figure_by_id(id)?;
    let out = f.run(quick);
    Some((f.id, f.title, out.text))
}
