//! Restart semantics of the characterization server: a new process over
//! the same state directory resumes warm from durable checkpoints, and a
//! checkpoint torn mid-write is quarantined, recomputed and counted —
//! never served corrupt.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

use gasnub::core::chaos::{FaultInjector, StorageFault};
use gasnub::core::storage::{read_verified, write_durable_with};
use gasnub::serve::{ServeConfig, Server};

fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gasnub-serve-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn boot(state_dir: &Path) -> SocketAddr {
    let server = Server::bind(ServeConfig::new("127.0.0.1:0", state_dir)).expect("server binds");
    let addr = server.local_addr();
    std::thread::spawn(move || server.run());
    addr
}

fn shutdown(addr: SocketAddr) {
    let _ = http(addr, "POST", "/v1/shutdown", "");
}

fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("server accepts connections");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: gasnub\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .expect("request writes");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response reads");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line parses");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn source(headers: &[(String, String)]) -> &str {
    headers
        .iter()
        .find(|(k, _)| k == "x-gasnub-source")
        .map(|(_, v)| v.as_str())
        .expect("sweep responses carry X-Gasnub-Source")
}

fn counter(metrics_body: &str, name: &str) -> u64 {
    let doc = gasnub::core::json::Json::parse(metrics_body).expect("metrics is valid JSON");
    doc.get(name)
        .and_then(gasnub::core::json::Json::as_u64)
        .unwrap_or_else(|| panic!("metrics must carry {name}: {metrics_body}"))
}

/// The single `sweep-*.json` checkpoint a one-surface server left behind.
fn only_checkpoint(state_dir: &Path) -> PathBuf {
    let mut found: Vec<PathBuf> = std::fs::read_dir(state_dir)
        .expect("state dir lists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("sweep-") && name.ends_with(".json")
        })
        .collect();
    assert_eq!(found.len(), 1, "expected exactly one checkpoint: {found:?}");
    found.remove(0)
}

const SWEEP: &str =
    r#"{"machine":"t3d","op":"deposit","grid":{"strides":[1,8,64],"working_sets":[2048,32768]}}"#;

/// A restarted server over the same state directory serves the same bytes
/// without re-measuring a single cell.
#[test]
fn restarted_server_serves_from_durable_cache() {
    let dir = scratch("warm");

    let first = boot(&dir);
    let (status, headers, cold_body) = http(first, "POST", "/v1/sweep", SWEEP);
    assert_eq!(status, 200, "first sweep must succeed: {cold_body}");
    assert_eq!(source(&headers), "computed");
    shutdown(first);

    let second = boot(&dir);
    let (status, headers, warm_body) = http(second, "POST", "/v1/sweep", SWEEP);
    assert_eq!(status, 200, "post-restart sweep must succeed: {warm_body}");
    assert_eq!(
        source(&headers),
        "disk",
        "a restarted server must resume the surface from its checkpoint"
    );
    assert_eq!(
        warm_body, cold_body,
        "warm and cold responses must be byte-identical"
    );

    let (_, _, metrics) = http(second, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "serve.sweep_cache_hits_disk"), 1);
    assert_eq!(
        counter(&metrics, "serve.sweeps_computed"),
        0,
        "nothing may be recomputed on a warm restart: {metrics}"
    );
    shutdown(second);
}

/// A checkpoint torn mid-write (via the chaos injector) is detected on
/// restart, quarantined, recomputed to the same bytes, and surfaced in the
/// robustness counters on `/metrics`.
#[test]
fn torn_checkpoint_recovers_with_counters() {
    let dir = scratch("torn");

    let first = boot(&dir);
    let (status, _, original) = http(first, "POST", "/v1/sweep", SWEEP);
    assert_eq!(status, 200, "first sweep must succeed: {original}");
    shutdown(first);

    // Replay the last checkpoint write through the chaos injector until a
    // seed draws a short write — the crash-mid-write shape — leaving a
    // file that fails verification as a torn tail.
    let checkpoint = only_checkpoint(&dir);
    let payload = read_verified(&checkpoint)
        .expect("intact checkpoint verifies")
        .expect("checkpoint exists");
    let mut torn = false;
    for seed in 0..64 {
        let mut injector = FaultInjector::new(seed, 100);
        if write_durable_with(&checkpoint, &payload, false, &mut injector).is_err() {
            continue; // drew FailRename: the old file survived intact
        }
        let short_write = injector
            .log()
            .iter()
            .any(|f| matches!(f.fault, StorageFault::ShortWrite { .. }));
        if short_write && read_verified(&checkpoint).is_err() {
            torn = true;
            break;
        }
    }
    assert!(
        torn,
        "64 seeds at 100% fault rate must include a short write"
    );

    let second = boot(&dir);
    let (status, headers, recovered) = http(second, "POST", "/v1/sweep", SWEEP);
    assert_eq!(status, 200, "recovery sweep must succeed: {recovered}");
    assert_eq!(
        source(&headers),
        "computed",
        "a torn checkpoint must be recomputed, not resumed"
    );
    assert_eq!(
        recovered, original,
        "the recomputed surface must match the original bytes"
    );

    let (_, _, metrics) = http(second, "GET", "/metrics", "");
    assert!(
        counter(&metrics, "sweep.torn_tail_recoveries") >= 1,
        "the torn-tail recovery must be counted: {metrics}"
    );
    assert!(
        counter(&metrics, "sweep.force_restarts") >= 1,
        "the forced restart must be counted: {metrics}"
    );
    assert!(
        checkpoint.with_extension("json.corrupt").exists()
            || std::fs::read_dir(&dir)
                .expect("state dir lists")
                .filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().ends_with(".corrupt")),
        "the torn checkpoint must be quarantined, not deleted"
    );
    shutdown(second);
}
