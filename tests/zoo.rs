//! Integration tests for the machine zoo: spec files must be first-class
//! machines. A zoo-loaded spec must be indistinguishable from the
//! built-in it shadows (byte-identical checkpoints at any `--threads`),
//! checkpoints must refuse to resume under a different machine
//! description, the `machines` subcommand must list and check every
//! resolvable spec, and the modern NUMA machine must reproduce the
//! local/remote bandwidth asymmetry it was calibrated against.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use gasnub::machines::{Machine, MachineSpec, MeasureLimits};

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Runs the gasnub binary with `GASNUB_ZOO` pinned to `zoo` so the test
/// is independent of the working directory's default zoo.
fn gasnub_with_zoo(zoo: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gasnub"))
        .env("GASNUB_ZOO", zoo)
        .args(args)
        .output()
        .expect("the gasnub binary must spawn")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gasnub-zoo-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A spec file dropped into the zoo must behave exactly like the
/// built-in machine it shadows: same sweep, byte-identical checkpoint,
/// at every worker count.
#[test]
fn zoo_loaded_t3d_checkpoints_are_byte_identical_to_builtin() {
    let empty = scratch_dir("empty");
    let zoo = scratch_dir("shadow");
    std::fs::copy(repo_file("machines/zoo/t3d.toml"), zoo.join("t3d.toml")).unwrap();

    let mut checkpoints: Vec<Vec<u8>> = Vec::new();
    for (tag, dir) in [("builtin", &empty), ("zoo", &zoo)] {
        for threads in ["1", "4"] {
            let ckpt = std::env::temp_dir().join(format!(
                "gasnub-zoo-ck-{tag}-t{threads}-{}.json",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&ckpt);
            let out = gasnub_with_zoo(
                dir,
                &[
                    "sweep",
                    "t3d",
                    "load",
                    "--checkpoint",
                    ckpt.to_str().unwrap(),
                    "--threads",
                    threads,
                ],
            );
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert_eq!(out.status.code(), Some(0), "{tag}/{threads}: {stderr}");
            checkpoints.push(std::fs::read(&ckpt).unwrap());
            let _ = std::fs::remove_file(&ckpt);
        }
    }
    for window in checkpoints.windows(2) {
        assert_eq!(
            window[0], window[1],
            "zoo-loaded and built-in t3d must write byte-identical checkpoints"
        );
    }

    let _ = std::fs::remove_dir_all(&empty);
    let _ = std::fs::remove_dir_all(&zoo);
}

/// A checkpoint written under one machine description must refuse to
/// resume under a different one — and `--force-restart` must recover.
#[test]
fn checkpoints_refuse_to_resume_under_a_different_spec() {
    let empty = scratch_dir("hash-empty");
    let tweaked = scratch_dir("hash-tweak");
    // Tweak a parameter that does not show up in the checkpoint title:
    // only the spec hash can tell the two machines apart.
    let spec = std::fs::read_to_string(repo_file("machines/zoo/t3d.toml")).unwrap();
    assert!(spec.contains("row_hit_cycles = 34.0"), "fixture drifted");
    std::fs::write(
        tweaked.join("t3d.toml"),
        spec.replace("row_hit_cycles = 34.0", "row_hit_cycles = 36.0"),
    )
    .unwrap();

    let ckpt = std::env::temp_dir().join(format!("gasnub-zoo-hash-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let args = [
        "sweep",
        "t3d",
        "load",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ];

    let first = gasnub_with_zoo(&empty, &args);
    assert_eq!(first.status.code(), Some(0));

    // Same name, different machine: the stored spec hash must not match.
    let refused = gasnub_with_zoo(&tweaked, &args);
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert_eq!(refused.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("spec hash") && stderr.contains("--force-restart"),
        "refusal must name the spec mismatch and the escape hatch: {stderr}"
    );

    let mut force = args.to_vec();
    force.push("--force-restart");
    let healed = gasnub_with_zoo(&tweaked, &force);
    let stderr = String::from_utf8_lossy(&healed.stderr);
    assert_eq!(healed.status.code(), Some(0), "stderr: {stderr}");

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_dir_all(&empty);
    let _ = std::fs::remove_dir_all(&tweaked);
}

/// `gasnub machines` lists every resolvable machine; `--check` builds
/// and probes each one.
#[test]
fn machines_subcommand_lists_and_checks_the_full_zoo() {
    let zoo = repo_file("machines/zoo");
    let list = gasnub_with_zoo(&zoo, &["machines"]);
    assert_eq!(list.status.code(), Some(0));
    let text = String::from_utf8_lossy(&list.stdout);
    for name in ["dec8400", "t3d", "t3e", "custom", "numa2s", "smp16"] {
        assert!(text.contains(name), "listing must include {name}: {text}");
    }

    let check = gasnub_with_zoo(&zoo, &["machines", "--check"]);
    let stderr = String::from_utf8_lossy(&check.stderr);
    assert_eq!(check.status.code(), Some(0), "stderr: {stderr}");
    let text = String::from_utf8_lossy(&check.stdout);
    assert!(
        text.lines().filter(|l| l.contains(" ok:")).count() >= 6,
        "every zoo machine must pass the smoke probe: {text}"
    );
}

/// Broken zoo files are surfaced, not fatal — but `--check` treats them
/// as failures, and resolution errors name the culprit file.
#[test]
fn broken_zoo_files_fail_check_and_annotate_resolve_errors() {
    let zoo = scratch_dir("broken");
    std::fs::write(zoo.join("bad.toml"), "name = \"bad\"\nmodel = \n").unwrap();

    let list = gasnub_with_zoo(&zoo, &["machines"]);
    assert_eq!(list.status.code(), Some(0), "listing alone stays usable");
    let stderr = String::from_utf8_lossy(&list.stderr);
    assert!(
        stderr.contains("bad.toml"),
        "broken file must be named: {stderr}"
    );

    let check = gasnub_with_zoo(&zoo, &["machines", "--check"]);
    assert_eq!(
        check.status.code(),
        Some(2),
        "--check must fail on broken files"
    );

    let resolve = gasnub_with_zoo(
        &zoo,
        &["sweep", "bad", "load", "--checkpoint", "/tmp/x.json"],
    );
    let stderr = String::from_utf8_lossy(&resolve.stderr);
    assert_eq!(resolve.status.code(), Some(2));
    assert!(
        stderr.contains("bad.toml"),
        "resolve error must point at the broken file: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&zoo);
}

/// Adding a machine is dropping a file: a spec written by hand (not a
/// shadow of any built-in) must sweep end-to-end.
#[test]
fn a_dropped_in_spec_file_sweeps_end_to_end() {
    let zoo = scratch_dir("dropin");
    let spec = std::fs::read_to_string(repo_file("machines/zoo/t3d.toml")).unwrap();
    std::fs::write(
        zoo.join("minitorus.toml"),
        spec.replace("name = \"t3d\"", "name = \"minitorus\"")
            .replace("aliases = [\"crayt3d\", \"cray-t3d\"]", "aliases = []"),
    )
    .unwrap();

    let ckpt = std::env::temp_dir().join(format!("gasnub-zoo-drop-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let out = gasnub_with_zoo(
        &zoo,
        &[
            "sweep",
            "minitorus",
            "fetch",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_dir_all(&zoo);
}

/// The two-socket NUMA machine reproduces the asymmetry it models
/// (Bergstrom, arXiv:1103.3225): for DRAM-resident working sets, a
/// socket reads remote memory at a modest fraction of its local
/// bandwidth — non-uniform, but nowhere near the order-of-magnitude
/// gap of the 1997 machines.
#[test]
fn numa_machine_reproduces_local_remote_asymmetry() {
    let text = std::fs::read_to_string(repo_file("machines/zoo/numa2s.toml")).unwrap();
    let spec = MachineSpec::from_spec_str(&text).expect("numa2s.toml must parse");
    // Default limits: the fast preset primes too little to evict the
    // 8 MB L3, which would turn the "local" probe into an L3 probe.
    let mut machine = spec
        .with_limits(MeasureLimits::new())
        .build()
        .expect("numa2s.toml must build");

    // 32 MB: far past the 8 MB L3, so both probes measure memory.
    let ws = 32 << 20;
    let local = machine.local_load(ws, 1);
    let remote = machine
        .remote_fetch(ws, 1)
        .expect("a NUMA machine has a remote path");
    let ratio = local.mb_s / remote.mb_s;
    assert!(
        (1.3..=2.5).contains(&ratio),
        "local/remote bandwidth asymmetry out of the Bergstrom range: \
         local {:.0} MB/s, remote {:.0} MB/s, ratio {ratio:.2}",
        local.mb_s,
        remote.mb_s
    );

    // The 1997 contrast: the T3D's same-ratio is an order of magnitude.
    let t3d_text = std::fs::read_to_string(repo_file("machines/zoo/t3d.toml")).unwrap();
    let mut t3d = MachineSpec::from_spec_str(&t3d_text)
        .unwrap()
        .with_limits(MeasureLimits::new())
        .build()
        .unwrap();
    let t3d_ratio = t3d.local_load(ws, 1).mb_s / t3d.remote_fetch(ws, 1).unwrap().mb_s;
    assert!(
        t3d_ratio > ratio * 2.0,
        "the NUMA node must be far more uniform than the T3D \
         (t3d {t3d_ratio:.1}x vs numa2s {ratio:.1}x)"
    );
}
