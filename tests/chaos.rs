//! Chaos proptests for the self-healing sweep pipeline (tier 2).
//!
//! The contract under attack: **a sweep whose checkpoint storage misbehaves
//! either produces a final surface byte-identical to an undisturbed run, or
//! fails with a named structured error — never a silently wrong surface and
//! never a silent restart-from-scratch.**
//!
//! Two properties, both driven by the dependency-free seeded case runner
//! (`gasnub::memsim::rng::run_cases`), so every failure is replayable from
//! the printed seed:
//!
//! 1. *Write chaos*: every checkpoint write passes through a seeded
//!    [`FaultInjector`] (short writes, bit flips, rename failures). The
//!    run may succeed or fail with a checkpoint error; a follow-up
//!    `--force-restart` run with healthy storage must always converge to
//!    the byte-identical reference checkpoint.
//! 2. *Read chaos*: a complete, valid checkpoint is mutated (bit flip or
//!    truncation). Resume must either see bytes identical to the original
//!    (no-op mutation) or fail with a named `Corrupt`-family error — and
//!    `--force-restart` must then recover fully.
//!
//! When a case fails, the injector's applied-fault schedule is written to
//! `$TMPDIR/gasnub-chaos/` so CI can upload the exact failing schedule as
//! an artifact.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use gasnub::core::chaos::FaultInjector;
use gasnub::core::resilient::{ResilientSweep, SweepError};
use gasnub::core::storage::{self, WriteFaults};
use gasnub::core::sweep::Grid;
use gasnub::memsim::rng::run_cases;

fn grid() -> Grid {
    Grid {
        strides: vec![1, 2],
        working_sets: vec![1024, 4096],
    }
}

/// The deterministic synthetic probe every run in this file measures.
fn model(ws: u64, stride: u64) -> f64 {
    (ws as f64).sqrt() / stride as f64 + 1.0 / 7.0
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gasnub-chaos-e2e-{}-{tag}.json",
        std::process::id()
    ))
}

/// The checkpoint bytes an undisturbed complete run writes — the reference
/// every chaos case must converge back to.
fn reference_bytes() -> Vec<u8> {
    let path = scratch("reference");
    let _ = std::fs::remove_file(&path);
    ResilientSweep::new(&path)
        .with_fsync(false)
        .run("t", &grid(), |ws, s| Some(model(ws, s)))
        .expect("the undisturbed run must succeed");
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Saves a failing case's fault schedule where CI picks artifacts up, and
/// panics with the replay coordinates.
fn fail_case(case: u64, seed: u64, schedule: &str, why: &str) -> ! {
    let dir = std::env::temp_dir().join("gasnub-chaos");
    std::fs::create_dir_all(&dir).expect("schedule dir must be creatable");
    let file = dir.join(format!("case-{case}-seed-{seed:016x}.txt"));
    std::fs::write(&file, format!("# {why}\n{schedule}")).expect("schedule must be writable");
    panic!(
        "chaos case {case} (seed {seed:#018x}) failed: {why}\n\
         fault schedule saved to {}",
        file.display()
    );
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(storage::corrupt_path(path));
}

#[test]
fn write_chaos_converges_or_names_the_error() {
    let reference = reference_bytes();
    let cells = grid().cells();
    let mut case = 0u64;
    run_cases(0xC7A0_5EED, 24, |rng| {
        case += 1;
        let seed = rng.next_u64();
        let max_cells = 1 + (rng.gen_range(0, cells as u64) as usize);
        let path = scratch(&format!("write-{case}"));
        cleanup(&path);

        let injector = Arc::new(Mutex::new(FaultInjector::new(seed, 35)));
        let schedule = || injector.lock().unwrap().render_log();
        let faults: Arc<Mutex<dyn WriteFaults + Send>> = injector.clone();

        // Phase 1: an interrupted sweep (random cell cap) with every write
        // passing through the injector. Success and checkpoint errors are
        // both legal outcomes; anything else is a property violation.
        let chaotic = ResilientSweep::new(&path)
            .with_fsync(false)
            .with_max_cells(max_cells)
            .with_write_faults(faults)
            .run("t", &grid(), |ws, s| Some(model(ws, s)));
        match &chaotic {
            Ok(_) | Err(SweepError::Checkpoint(_)) => {}
            Err(other) => fail_case(
                case,
                seed,
                &schedule(),
                &format!("write chaos raised a non-checkpoint error: {other}"),
            ),
        }

        // Phase 2: healthy storage + --force-restart must always converge.
        // Whatever the injector left behind — a good checkpoint, a torn
        // tail, a flipped bit, or nothing — the healed run finishes and its
        // checkpoint is byte-identical to the undisturbed reference.
        let healed = ResilientSweep::new(&path)
            .with_fsync(false)
            .with_force_restart(true)
            .run("t", &grid(), |ws, s| Some(model(ws, s)));
        let outcome = match healed {
            Ok(outcome) => outcome,
            Err(e) => fail_case(
                case,
                seed,
                &schedule(),
                &format!("force-restart recovery failed: {e}"),
            ),
        };
        if !outcome.is_complete() || !outcome.failed.is_empty() {
            fail_case(case, seed, &schedule(), "recovered sweep is incomplete");
        }
        for &ws in &grid().working_sets {
            for &s in &grid().strides {
                let got = outcome.surface.value(ws, s).unwrap();
                if got.to_bits() != model(ws, s).to_bits() {
                    fail_case(
                        case,
                        seed,
                        &schedule(),
                        &format!("silently wrong surface at ({ws}, {s}): {got}"),
                    );
                }
            }
        }
        let final_bytes = std::fs::read(&path).unwrap();
        if final_bytes != reference {
            fail_case(
                case,
                seed,
                &schedule(),
                "final checkpoint bytes differ from the undisturbed reference",
            );
        }
        cleanup(&path);
    });
}

#[test]
fn read_chaos_is_detected_never_silently_resurveyed() {
    let reference = reference_bytes();
    let mut case = 0u64;
    run_cases(0x0DD5_EED5, 32, |rng| {
        case += 1;
        let seed = rng.next_u64();
        let path = scratch(&format!("read-{case}"));
        cleanup(&path);
        std::fs::write(&path, &reference).unwrap();

        // Mutate the complete checkpoint: flip one random bit or truncate a
        // random tail (zero-length truncation = the unchanged control case).
        let mut bytes = reference.clone();
        let mutation = match rng.gen_range(0, 3) {
            0 => {
                let bit = rng.gen_range(0, bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                format!("bit-flip bit={bit}")
            }
            1 => {
                let keep = rng.gen_range(0, bytes.len() as u64 + 1) as usize;
                bytes.truncate(keep);
                format!("truncate keep={keep}")
            }
            _ => "unchanged".to_string(),
        };
        let changed = bytes != reference;
        std::fs::write(&path, &bytes).unwrap();

        let resumed = ResilientSweep::new(&path)
            .with_fsync(false)
            .run("t", &grid(), |ws, s| Some(model(ws, s)));
        match resumed {
            Ok(outcome) => {
                // Only an unchanged file may resume — and then it resumes
                // *everything*, measuring nothing.
                if changed {
                    fail_case(
                        case,
                        seed,
                        &mutation,
                        "a mutated checkpoint resumed without an error",
                    );
                }
                if outcome.measured != 0 || outcome.resumed != grid().cells() {
                    fail_case(
                        case,
                        seed,
                        &mutation,
                        &format!(
                            "clean resume re-measured cells: measured={} resumed={}",
                            outcome.measured, outcome.resumed
                        ),
                    );
                }
            }
            Err(SweepError::Checkpoint(ck)) => {
                if !changed {
                    fail_case(case, seed, &mutation, &format!("clean file rejected: {ck}"));
                }
                // Named, force-restart-recoverable corruption.
                if !ck.force_restart_recoverable() {
                    fail_case(
                        case,
                        seed,
                        &mutation,
                        &format!("corruption surfaced as a non-recoverable error: {ck}"),
                    );
                }
                let healed = ResilientSweep::new(&path)
                    .with_fsync(false)
                    .with_force_restart(true)
                    .run("t", &grid(), |ws, s| Some(model(ws, s)));
                match healed {
                    Ok(outcome) if outcome.is_complete() => {
                        let final_bytes = std::fs::read(&path).unwrap();
                        if final_bytes != reference {
                            fail_case(
                                case,
                                seed,
                                &mutation,
                                "healed checkpoint differs from the reference",
                            );
                        }
                    }
                    Ok(_) => fail_case(case, seed, &mutation, "healed sweep incomplete"),
                    Err(e) => fail_case(
                        case,
                        seed,
                        &mutation,
                        &format!("force-restart failed to recover: {e}"),
                    ),
                }
            }
            Err(other) => fail_case(
                case,
                seed,
                &mutation,
                &format!("unexpected error class: {other}"),
            ),
        }
        cleanup(&path);
    });
}
