//! Golden counter traces: the mechanism counters behind a small reference
//! grid, checked byte-for-byte against fixtures in `tests/golden/`.
//!
//! Each fixture is the canonical-JSON rendering of a
//! [`gasnub::core::counters::CounterReport`] — sorted keys, unsigned
//! integers only, bandwidths as `f64::to_bits` — so a report either matches
//! its fixture exactly or the simulation changed. Any intentional change to
//! cache parameters, interconnect costs or the coherence protocol shows up
//! here as a byte diff of named counters (`l1_misses`, `bus_transactions`,
//! `ni_packets`, `mesi_s_to_i`, ...), which is far easier to review than a
//! shifted bandwidth number.
//!
//! To regenerate the fixtures after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! then inspect `git diff tests/golden/` and commit the new fixtures with
//! an explanation of why the counters moved.

use std::path::PathBuf;

use gasnub::core::counters::{collect_counters, CounterReport};
use gasnub::core::sweep::Grid;
use gasnub::core::SweepOp;
use gasnub::machines::{MachineSpec, MeasureLimits};

/// The reference grid: one cache-resident and one DRAM-resident working
/// set, contiguous and strided — small enough to run in seconds, rich
/// enough that every counter family is exercised.
fn golden_grid() -> Grid {
    Grid {
        strides: vec![1, 16],
        working_sets: vec![32 << 10, 4 << 20],
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check_golden(name: &str, spec: MachineSpec, op: SweepOp) {
    let spec = spec.with_limits(MeasureLimits::fast());
    let report = collect_counters(&spec, op, &golden_grid(), 1)
        .expect("the spec must build")
        .expect("the chosen op must be supported on this machine");
    let rendered = report.render_json();

    // The fixture bytes must also parse back to the identical report —
    // guards the parser alongside the renderer.
    let reparsed = CounterReport::parse(&rendered).expect("rendered reports must parse");
    assert_eq!(reparsed, report, "{name}: JSON round-trip must be lossless");

    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {} ({e}); \
             run `UPDATE_GOLDEN=1 cargo test --test golden_traces` to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "{name}: counter report diverged from tests/golden/{name}.json — \
         if the model change is intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test golden_traces` and review the diff"
    );
}

/// The 8400's coherent consumer pull: bus transactions, MESI transitions
/// and cache-to-cache supplies.
#[test]
fn dec8400_pull_matches_golden() {
    check_golden("dec8400-pull", MachineSpec::dec8400(), SweepOp::RemoteLoad);
}

/// The T3D's deposit path: NI packets, link transfers and the local read
/// stream feeding them.
#[test]
fn t3d_deposit_matches_golden() {
    check_golden("t3d-deposit", MachineSpec::t3d(), SweepOp::RemoteDeposit);
}

/// The T3E's E-register fetch: E-register traffic plus the stream-buffered
/// local stores.
#[test]
fn t3e_fetch_matches_golden() {
    check_golden("t3e-fetch", MachineSpec::t3e(), SweepOp::RemoteFetch);
}

/// A local probe on the golden grid too, so the pure memory-hierarchy
/// counters (hits, misses, fills, write-backs) are pinned as well.
#[test]
fn t3d_local_load_matches_golden() {
    check_golden("t3d-load", MachineSpec::t3d(), SweepOp::LocalLoad);
}
