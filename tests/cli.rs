//! Integration tests for the `gasnub` binary: usage errors must exit with
//! code 2 (never panic), and the fault/sweep subcommands must be
//! deterministic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gasnub(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gasnub"))
        .args(args)
        .output()
        .expect("the gasnub binary must spawn")
}

fn assert_usage_error(args: &[&str]) {
    let out = gasnub(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?} must not panic: {stderr}"
    );
    assert!(
        stderr.contains("usage") || stderr.contains("gasnub:"),
        "{args:?} must print a usage error: {stderr}"
    );
}

#[test]
fn bad_invocations_exit_2_without_panicking() {
    assert_usage_error(&[]);
    assert_usage_error(&["frobnicate"]);
    assert_usage_error(&["figures", "fig99"]);
    assert_usage_error(&["fft", "banana"]);
    assert_usage_error(&["scale", "t3d", "many", "512"]);
    assert_usage_error(&["scale", "paragon", "512", "512"]);
    assert_usage_error(&["report", "paragon"]);
    assert_usage_error(&["faults"]);
    assert_usage_error(&["faults", "t3x"]);
    assert_usage_error(&["faults", "t3d", "--seed", "NaN"]);
    assert_usage_error(&["faults", "t3d", "--severity", "2.0"]);
    assert_usage_error(&["faults", "t3d", "--frob", "1"]);
    assert_usage_error(&["sweep", "t3d"]);
    assert_usage_error(&["sweep", "t3d", "deposit"]); // missing --checkpoint
    assert_usage_error(&["sweep", "t3d", "teleport", "--checkpoint", "/tmp/x.json"]);
    assert_usage_error(&["serve", "extra-positional"]);
    assert_usage_error(&["serve", "--addr"]); // missing value
    assert_usage_error(&["serve", "--tier", "warp"]);
    assert_usage_error(&["serve", "--port", "80"]); // unknown flag
    assert_usage_error(&["serve", "--addr", "256.256.256.256:99999"]); // unbindable
    assert_usage_error(&[
        "sweep",
        "t3d",
        "deposit",
        "--checkpoint",
        "/tmp/x.json",
        "--threads",
    ]);
    assert_usage_error(&[
        "sweep",
        "t3d",
        "deposit",
        "--checkpoint",
        "/tmp/x.json",
        "--threads",
        "lots",
    ]);
    assert_usage_error(&["faults", "t3d", "--threads", "-1"]);
    // Fault plans only model the three reference systems.
    assert_usage_error(&["faults", "custom"]);
    // Custom machines are not in the scalability model either.
    assert_usage_error(&["scale", "custom", "512", "512"]);
    // The trace subcommand follows the same conventions.
    assert_usage_error(&["trace"]);
    assert_usage_error(&["trace", "t3d"]);
    assert_usage_error(&["trace", "paragon", "load"]);
    assert_usage_error(&["trace", "t3d", "teleport"]);
    assert_usage_error(&["trace", "t3d", "load", "--ws", "huge"]);
    assert_usage_error(&["trace", "t3d", "load", "--stride"]);
    assert_usage_error(&["trace", "t3d", "load", "--frob", "1"]);
    // Unsupported machine/op combinations are usage errors, not panics.
    assert_usage_error(&["trace", "dec8400", "deposit"]);
    assert_usage_error(&["trace", "t3d", "pull"]);
    // --counters reports inherit the conventions too.
    assert_usage_error(&["sweep", "t3d", "load", "--counters"]);
    assert_usage_error(&["faults", "t3d", "--counters"]);
    // The robustness flags inherit the exit-2 conventions.
    fn with_ck<'a>(extra: &[&'a str]) -> Vec<&'a str> {
        let mut args = vec!["sweep", "t3d", "load", "--checkpoint", "/tmp/x.json"];
        args.extend_from_slice(extra);
        args
    }
    assert_usage_error(&with_ck(&["--retries"]));
    assert_usage_error(&with_ck(&["--retries", "lots"]));
    assert_usage_error(&with_ck(&["--cell-timeout-ms", "soon"]));
    // --force-restart is boolean: a stray value becomes a positional arg.
    assert_usage_error(&with_ck(&["--force-restart", "yes"]));
    // The machines subcommand inherits the exit-2 conventions.
    assert_usage_error(&["machines", "extra"]);
    assert_usage_error(&["machines", "--frob"]);
}

#[test]
fn unknown_machine_errors_enumerate_the_registry() {
    // Every subcommand resolves names through the one registry, so every
    // unknown-machine error lists the same resolvable names.
    for args in [
        vec!["sweep", "paragon", "load", "--checkpoint", "/tmp/x.json"],
        vec!["faults", "paragon"],
        vec!["trace", "paragon", "load"],
    ] {
        let out = gasnub(&args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {stderr}");
        for name in ["dec8400", "t3d", "t3e", "custom"] {
            assert!(
                stderr.contains(name),
                "{args:?} must enumerate {name}: {stderr}"
            );
        }
    }
}

#[test]
fn corrupt_checkpoints_exit_2_and_force_restart_recovers() {
    let ckpt = std::env::temp_dir().join(format!("gasnub-cli-corrupt-{}.json", std::process::id()));
    let corrupt_copy = ckpt.with_extension("json.corrupt");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&corrupt_copy);
    let run = |extra: &[&str]| -> Output {
        let mut args = vec![
            "sweep",
            "t3d",
            "load",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        gasnub(&args)
    };

    let clean = run(&[]);
    assert_eq!(clean.status.code(), Some(0));
    let good = std::fs::read(&ckpt).unwrap();

    // Tear the tail off the checkpoint: the next run must refuse loudly —
    // a named corruption error with exit 2, not a silent restart.
    std::fs::write(&ckpt, &good[..good.len() - 9]).unwrap();
    let refused = run(&[]);
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert_eq!(refused.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("corrupt") && stderr.contains("--force-restart"),
        "refusal must name the corruption and the escape hatch: {stderr}"
    );

    // --force-restart: recovers, preserves the evidence, reports the event.
    let healed = run(&["--force-restart"]);
    let stderr = String::from_utf8_lossy(&healed.stderr);
    assert_eq!(healed.status.code(), Some(0), "stderr: {stderr}");
    let text = String::from_utf8_lossy(&healed.stdout);
    assert!(
        text.contains("robustness:") && text.contains("sweep.force_restarts=1"),
        "recovery must be counted: {text}"
    );
    assert!(
        corrupt_copy.exists(),
        "the corrupt checkpoint must be preserved as {}",
        corrupt_copy.display()
    );
    assert_eq!(
        std::fs::read(&ckpt).unwrap(),
        good,
        "the healed run must converge to the original checkpoint bytes"
    );

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&corrupt_copy);
}

#[test]
fn sweep_robustness_counters_are_deterministic_across_threads() {
    // A zero cell budget times out every cell — deterministically, because
    // the runner checks the expired token before each attempt. The recorded
    // counters must be identical for any worker count.
    let scratch = |threads: usize| {
        std::env::temp_dir().join(format!(
            "gasnub-cli-timeout-{}-t{threads}.json",
            std::process::id()
        ))
    };
    let mut lines = Vec::new();
    for threads in [1, 4] {
        let ckpt = scratch(threads);
        let _ = std::fs::remove_file(&ckpt);
        let out = gasnub(&[
            "sweep",
            "t3d",
            "load",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--cell-timeout-ms",
            "0",
            "--threads",
            &threads.to_string(),
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        let line = text
            .lines()
            .find(|l| l.starts_with("robustness:"))
            .unwrap_or_else(|| panic!("no robustness line in: {text}"))
            .to_string();
        assert!(line.contains("sweep.timeouts="), "{line}");
        lines.push(line);
        let _ = std::fs::remove_file(&ckpt);
    }
    assert_eq!(lines[0], lines[1], "counters must not depend on --threads");
}

#[test]
fn trace_prints_counters_and_events_as_json() {
    let out = gasnub(&["trace", "t3d", "deposit", "--ws", "262144", "--stride", "8"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "trace must succeed: {stderr}");
    let text = String::from_utf8_lossy(&out.stdout);
    // Canonical JSON: one object, sorted keys, counters and events present.
    assert!(text.starts_with("{\"counters\":"), "doc shape: {text}");
    assert!(text.contains("\"machine\":\"t3d\""), "machine: {text}");
    assert!(text.contains("\"op\":\"deposit\""), "op: {text}");
    assert!(text.contains("\"ni_packets\":"), "NI counters: {text}");
    assert!(
        text.contains("\"label\":\"probe.remote_deposit\""),
        "probe event: {text}"
    );

    let again = gasnub(&["trace", "t3d", "deposit", "--ws", "262144", "--stride", "8"]);
    assert_eq!(out.stdout, again.stdout, "traces must be deterministic");
}

#[test]
fn trace_observes_degraded_machines() {
    let healthy = gasnub(&["trace", "t3d", "deposit", "--ws", "262144"]);
    let degraded = gasnub(&[
        "trace",
        "t3d",
        "deposit",
        "--ws",
        "262144",
        "--seed",
        "7",
        "--severity",
        "0.5",
    ]);
    assert_eq!(degraded.status.code(), Some(0));
    let text = String::from_utf8_lossy(&degraded.stdout);
    assert!(
        text.contains("\"ni_retries\":"),
        "a lossy NI must report retries: {text}"
    );
    assert!(
        !String::from_utf8_lossy(&healthy.stdout).contains("\"ni_retries\":"),
        "a healthy NI has no loss model and no retry counter"
    );
}

#[test]
fn sweep_counter_reports_parse_and_annotate() {
    let scratch = |tag: &str| {
        std::env::temp_dir().join(format!("gasnub-cli-ctr-{}-{tag}", std::process::id()))
    };
    let json_path = scratch("report.json");
    let csv_path = scratch("report.csv");
    let ckpt = scratch("ckpt.json");
    let out = gasnub(&[
        "sweep",
        "t3e",
        "fetch",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--counters",
        json_path.to_str().unwrap(),
        "--counters-csv",
        csv_path.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "sweep must succeed: {stderr}");

    let json = std::fs::read_to_string(&json_path).unwrap();
    let report = gasnub::core::counters::CounterReport::parse(&json)
        .expect("the CLI writes parseable counter reports");
    assert_eq!(report.machine, "t3e");
    assert_eq!(report.op, "fetch");
    assert!(!report.cells.is_empty());
    assert!(report.cells.iter().all(|c| c.counters.get("cycles") > 0));

    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let header = csv.lines().next().unwrap();
    assert!(header.starts_with("ws_bytes,stride,mb_s,"), "{header}");
    assert!(header.contains("ereg_words"), "annotated columns: {header}");
    assert_eq!(csv.lines().count(), report.cells.len() + 1);

    for f in [&json_path, &csv_path, &ckpt] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn custom_machines_sweep_end_to_end() {
    let ckpt = std::env::temp_dir().join(format!("gasnub-cli-custom-{}.json", std::process::id()));
    let out = gasnub(&[
        "sweep",
        "custom",
        "load",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "custom sweep must succeed: {stderr}"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("reference custom node"),
        "custom machine name missing: {text}"
    );
    assert!(
        text.contains("sweep complete"),
        "custom sweep must finish: {text}"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn faults_tables_are_byte_identical_across_runs() {
    let args = ["faults", "t3d", "--seed", "7", "--severity", "0.6"];
    let a = gasnub(&args);
    let b = gasnub(&args);
    assert_eq!(a.status.code(), Some(0));
    assert_eq!(
        a.stdout, b.stdout,
        "same seed must print a byte-identical table"
    );
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("healthy"), "table header missing: {text}");
    assert!(text.contains("deposit"), "T3D deposit rows missing: {text}");
}

#[test]
fn interrupted_sweep_resumes_to_the_same_surface() {
    let scratch = |tag: &str| -> PathBuf {
        std::env::temp_dir().join(format!(
            "gasnub-cli-sweep-{}-{tag}.json",
            std::process::id()
        ))
    };
    let direct_ckpt = scratch("direct");
    let resumed_ckpt = scratch("resumed");
    let run = |ckpt: &PathBuf, extra: &[&str]| -> Output {
        let mut args = vec![
            "sweep",
            "t3d",
            "deposit",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        gasnub(&args)
    };

    let direct = run(&direct_ckpt, &[]);
    assert_eq!(direct.status.code(), Some(0));

    let first = run(&resumed_ckpt, &["--max-cells", "5"]);
    assert_eq!(first.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&first.stdout).contains("pending"));
    let second = run(&resumed_ckpt, &[]);
    assert_eq!(second.status.code(), Some(0));

    let surface_of = |out: &Output| -> String {
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        // Everything up to the cell-accounting line is the rendered surface.
        text.split("\ncells:")
            .next()
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(
        surface_of(&direct),
        surface_of(&second),
        "resumed sweep must render the identical surface"
    );

    let _ = std::fs::remove_file(&direct_ckpt);
    let _ = std::fs::remove_file(&resumed_ckpt);
}
