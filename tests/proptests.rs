//! Property-based integration tests: invariants that must hold for *any*
//! stride and working set, not just the calibrated grid points.

use gasnub::machines::{Dec8400, Machine, MeasureLimits, T3d, T3e};
use gasnub_memsim::rng::run_cases;

fn fast_t3d() -> T3d {
    let mut m = T3d::new();
    m.set_limits(MeasureLimits {
        max_measure_words: 8 * 1024,
        max_prime_words: 64 * 1024,
    });
    m
}

fn fast_t3e() -> T3e {
    let mut m = T3e::new();
    m.set_limits(MeasureLimits {
        max_measure_words: 8 * 1024,
        max_prime_words: 64 * 1024,
    });
    m
}

fn fast_dec() -> Dec8400 {
    let mut m = Dec8400::new();
    m.set_limits(MeasureLimits {
        max_measure_words: 8 * 1024,
        max_prime_words: 64 * 1024,
    });
    m
}

/// Bandwidth is always positive and never exceeds the machine's
/// theoretical issue-limited peak (one word per cycle).
#[test]
fn local_load_bandwidth_is_bounded() {
    run_cases(0xB0B0, 24, |rng| {
        let ws_kb = rng.gen_range(1, 4096);
        let stride = rng.gen_range(1, 256);
        let mut m = fast_t3d();
        let bw = m.local_load(ws_kb * 1024, stride).mb_s;
        assert!(bw > 0.0, "bandwidth must be positive");
        let peak = 8.0 * m.clock_mhz(); // one 64-bit word per cycle
        assert!(bw <= peak * 1.01, "bw {bw} exceeds the issue peak {peak}");
    });
}

/// Contiguous access is never slower than the same working set at a
/// larger stride on the streams-focused T3D (its surface is monotone in
/// stride for DRAM-resident sets).
#[test]
fn t3d_contiguous_dominates_strided() {
    run_cases(0xC0411, 24, |rng| {
        let ws_mb = rng.gen_range(1, 8);
        let stride = rng.gen_range(2, 128);
        let mut m = fast_t3d();
        let contig = m.local_load(ws_mb << 20, 1).mb_s;
        let strided = m.local_load(ws_mb << 20, stride).mb_s;
        assert!(
            contig >= strided * 0.95,
            "contig {contig} vs stride-{stride} {strided}"
        );
    });
}

/// Copy payload bandwidth never exceeds pure load bandwidth at the same
/// stride (a copy does strictly more work per word).
#[test]
fn copy_never_beats_loads() {
    run_cases(0xC09E, 24, |rng| {
        let stride = rng.gen_range(1, 64);
        let mut m = fast_t3e();
        let ws = 4 << 20;
        let load = m.local_load(ws, stride).mb_s;
        let copy = m.local_copy(ws, stride, 1).mb_s;
        assert!(
            copy <= load * 1.05,
            "copy {copy} vs load {load} at stride {stride}"
        );
    });
}

/// Remote transfers never exceed the same machine's contiguous remote
/// peak, for any stride.
#[test]
fn remote_peak_is_at_unit_stride() {
    run_cases(0x3E40, 24, |rng| {
        let stride = rng.gen_range(2, 128);
        let mut m = fast_t3e();
        let ws = 4 << 20;
        let peak = m.remote_deposit(ws, 1).unwrap().mb_s;
        let strided = m.remote_deposit(ws, stride).unwrap().mb_s;
        assert!(
            strided <= peak * 1.05,
            "stride {stride}: {strided} vs peak {peak}"
        );
    });
}

/// The 8400's pull bandwidth is bounded by the bus burst ceiling.
#[test]
fn dec8400_pull_below_bus_ceiling() {
    run_cases(0x8400, 24, |rng| {
        let stride = rng.gen_range(1, 64);
        let ws_mb = rng.gen_range(1, 16);
        let mut m = fast_dec();
        let bw = m.remote_load(ws_mb << 20, stride).unwrap().mb_s;
        assert!(bw > 0.0);
        assert!(
            bw < 1600.0,
            "pulls cannot exceed the 1.6 GB/s burst ceiling: {bw}"
        );
    });
}

/// Observation is free: installing a `RingRecorder` (versus the default
/// `NullRecorder`) never changes a measured bandwidth, for any machine,
/// operation, stride or working set. The recorder only *harvests* counters
/// the components already keep — it must not perturb the simulation.
#[test]
fn recorders_never_change_measurements() {
    use gasnub::machines::RingRecorder;
    run_cases(0x0B5E4E, 24, |rng| {
        let ws_kb = rng.gen_range(8, 8192);
        let stride = rng.gen_range(1, 128);
        let machine_pick = rng.gen_range(0, 3);
        let op_pick = rng.gen_range(0, 4);
        let probe = |m: &mut dyn Machine| match op_pick {
            0 => Some(m.local_load(ws_kb * 1024, stride)),
            1 => Some(m.local_copy(ws_kb * 1024, stride, 1)),
            2 => m.remote_fetch(ws_kb * 1024, stride),
            _ => m.remote_deposit(ws_kb * 1024, stride),
        };
        let mut quiet: Box<dyn Machine> = match machine_pick {
            0 => Box::new(fast_t3d()),
            1 => Box::new(fast_t3e()),
            _ => Box::new(fast_dec()),
        };
        let mut observed: Box<dyn Machine> = match machine_pick {
            0 => Box::new(fast_t3d()),
            1 => Box::new(fast_t3e()),
            _ => Box::new(fast_dec()),
        };
        observed.set_recorder(Box::new(RingRecorder::new(4)));
        let baseline = probe(quiet.as_mut());
        let traced = probe(observed.as_mut());
        match (baseline, traced) {
            (None, None) => {}
            (Some(b), Some(t)) => {
                assert_eq!(
                    (b.bytes, b.cycles.to_bits()),
                    (t.bytes, t.cycles.to_bits()),
                    "machine {machine_pick} op {op_pick} ws {ws_kb}K stride {stride}: \
                     recording must not change the measurement"
                );
            }
            (b, t) => panic!("support must not depend on the recorder: {b:?} vs {t:?}"),
        }
    });
}

/// Warm-path engine reuse is invisible: walking a random (stride, working
/// set) chain on *one* reused engine produces bit-identical measurements
/// and identical counters to spawning a fresh engine for every cell, on
/// every machine in the built-in zoo. This is the flushed ≡
/// just-constructed invariant the warm sweep scheduler
/// ([`gasnub::machines::WarmState`]) relies on. Both sides carry a
/// recorder, which bypasses the probe memo — each comparison is a genuine
/// recomputation, and the harvested counters must agree too.
#[test]
fn warm_engine_chains_match_fresh_engines() {
    use gasnub::machines::{
        MachineRegistry, MeasureLimits, RingRecorder, SpawnEngine, TransferEngine, WarmState,
    };
    let registry = MachineRegistry::builtin();
    let limits = MeasureLimits {
        max_measure_words: 8 * 1024,
        max_prime_words: 64 * 1024,
    };
    run_cases(0x3A44, 8, |rng| {
        for spec in registry.specs() {
            let mut warm = WarmState::new();
            let chain = rng.gen_range(2, 6);
            for _ in 0..chain {
                let ws = rng.gen_range(4, 2048) * 1024;
                let stride = rng.gen_range(1, 128);
                let op = rng.gen_range(0, 6);
                let probe = |m: &mut TransferEngine| match op {
                    0 => Some(m.local_load(ws, stride)),
                    1 => Some(m.local_store(ws, stride)),
                    2 => Some(m.local_copy(ws, stride, 1)),
                    3 => m.remote_load(ws, stride),
                    4 => m.remote_fetch(ws, stride),
                    _ => m.remote_deposit(ws, stride),
                };
                let engine = warm.engine(spec).unwrap();
                engine.set_limits(limits);
                engine.set_recorder(Box::new(RingRecorder::new(4)));
                let warm_meas = probe(engine);
                let warm_counters = engine.take_counters();

                let mut fresh = spec.spawn_engine().unwrap();
                fresh.set_limits(limits);
                fresh.set_recorder(Box::new(RingRecorder::new(4)));
                let fresh_meas = probe(&mut fresh);
                let fresh_counters = fresh.take_counters();

                let ctx = format!("{} op {op} ws {ws} stride {stride}", spec.label());
                match (warm_meas, fresh_meas) {
                    (None, None) => {}
                    (Some(w), Some(f)) => assert_eq!(
                        (w.bytes, w.cycles.to_bits(), w.mb_s.to_bits()),
                        (f.bytes, f.cycles.to_bits(), f.mb_s.to_bits()),
                        "{ctx}: warm reuse must not change the measurement"
                    ),
                    (w, f) => panic!("{ctx}: support diverged: {w:?} vs {f:?}"),
                }
                assert_eq!(
                    warm_counters, fresh_counters,
                    "{ctx}: warm reuse must not change the counters"
                );
            }
            assert!(warm.is_warm());
            assert_eq!(warm.spawns(), 1, "one spawn must serve the whole chain");
        }
    });
}

/// Serving determinism: for random small grids and random interleavings
/// of 2–4 concurrent clients, every response body from the
/// characterization server equals the single-threaded offline oracle —
/// the checkpoint payload a plain [`gasnub::core::ResilientSweep`]
/// produces for the same (machine, grid, tier). Coalescing, caching and
/// thread scheduling may change *who* computes a surface, never its
/// bytes.
#[test]
fn served_sweeps_match_single_threaded_oracle() {
    use gasnub::core::json::Json;
    use gasnub::core::storage::read_verified;
    use gasnub::core::{Grid, ResilientSweep, SweepOp};
    use gasnub::machines::{MachineRegistry, ProbeTier, SpawnEngine};
    use gasnub::serve::{ServeConfig, Server};
    use std::io::{Read, Write};
    use std::sync::{Arc, Barrier};

    let mut root = std::env::temp_dir();
    root.push(format!("gasnub-serve-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let server = Server::bind(ServeConfig::new("127.0.0.1:0", root.join("state"))).unwrap();
    let addr = server.local_addr();
    std::thread::spawn(move || server.run());

    let registry = MachineRegistry::builtin();
    const MACHINES: [&str; 3] = ["t3d", "t3e", "dec8400"];
    const OPS: [&str; 4] = ["load", "store", "fetch", "deposit"];
    const STRIDES: [u64; 4] = [1, 2, 8, 64];
    const WORKING_SETS: [u64; 3] = [2048, 32768, 524288];

    let mut case = 0u64;
    run_cases(0x5E4E, 6, |rng| {
        case += 1;
        let machine = MACHINES[rng.gen_range(0, MACHINES.len() as u64) as usize];
        let op = SweepOp::parse(OPS[rng.gen_range(0, OPS.len() as u64) as usize]).unwrap();
        // An ascending subset of each axis: drop a random prefix/suffix.
        let strides = STRIDES[..rng.gen_range(2, STRIDES.len() as u64 + 1) as usize].to_vec();
        let ws_lo = rng.gen_range(0, 2) as usize;
        let working_sets = WORKING_SETS[ws_lo..].to_vec();
        let grid = Grid {
            strides: strides.clone(),
            working_sets: working_sets.clone(),
        };

        // The single-threaded offline oracle, through the same resilient
        // sweep machinery the server runs.
        let spec = registry
            .resolve(machine)
            .unwrap()
            .clone()
            .with_limits(gasnub::machines::MeasureLimits::fast());
        let name = spec.spawn_engine().unwrap().name();
        let title = op.checkpoint_title(&name, false, ProbeTier::Simulate);
        let oracle_path = root.join(format!("oracle-{case}.json"));
        ResilientSweep::new(&oracle_path)
            .with_spec_hash(spec.spec_hash())
            .run_parallel_op(&title, &grid, 1, &spec, op)
            .unwrap();
        let oracle = read_verified(&oracle_path).unwrap().unwrap();

        let body = Json::object([
            (
                "grid",
                Json::object([
                    (
                        "strides",
                        Json::Array(strides.iter().map(|&s| Json::U64(s)).collect()),
                    ),
                    (
                        "working_sets",
                        Json::Array(working_sets.iter().map(|&w| Json::U64(w)).collect()),
                    ),
                ]),
            ),
            ("machine", Json::Str(machine.to_string())),
            ("op", Json::Str(op.label().to_string())),
        ])
        .render();

        let clients = rng.gen_range(2, 5) as usize;
        let barrier = Arc::new(Barrier::new(clients));
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let body = body.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut stream = std::net::TcpStream::connect(addr).unwrap();
                    let request = format!(
                        "POST /v1/sweep HTTP/1.1\r\nHost: gasnub\r\nConnection: close\r\n\
                         Content-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    stream.write_all(request.as_bytes()).unwrap();
                    let mut raw = Vec::new();
                    stream.read_to_end(&mut raw).unwrap();
                    String::from_utf8(raw).unwrap()
                })
            })
            .collect();
        for worker in workers {
            let response = worker.join().unwrap();
            let (head, served) = response.split_once("\r\n\r\n").unwrap();
            assert!(
                head.starts_with("HTTP/1.1 200"),
                "{machine} {} must serve: {response}",
                op.label()
            );
            assert_eq!(
                served,
                oracle,
                "{machine} {} with {clients} interleaved clients must match \
                 the single-threaded oracle",
                op.label()
            );
        }
    });

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let _ = stream
        .write_all(b"POST /v1/shutdown HTTP/1.1\r\nHost: gasnub\r\nContent-Length: 0\r\n\r\n");
}

/// Measurements scale: the cycle count grows with the measured words
/// (same stride, larger working set ⇒ at least as many cycles until the
/// measure cap).
#[test]
fn cycles_grow_with_working_set() {
    run_cases(0x9120, 24, |rng| {
        let stride = rng.gen_range(1, 32);
        let mut m = fast_t3d();
        let small = m.local_load(64 << 10, stride).cycles;
        let large = m.local_load(4 << 20, stride).cycles;
        // Both runs measure the same capped word count; the larger set must
        // not be meaningfully cheaper (small pattern-dependent wiggle from
        // DRAM row reuse is tolerated).
        assert!(large >= small * 0.9, "{large} >= {small}");
    });
}
