//! Structural properties of the measured surfaces, asserted for all three
//! machines: plateau monotonicity along the working-set axis, spectroscopy
//! of the cache structure, and stride-axis behaviour.

use gasnub::core::bench::local_load_surface;
use gasnub::core::sweep::Grid;
use gasnub::machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};

fn machines() -> Vec<Box<dyn Machine>> {
    let mut v: Vec<Box<dyn Machine>> = vec![
        Box::new(Dec8400::new()),
        Box::new(T3d::new()),
        Box::new(T3e::new()),
    ];
    for m in &mut v {
        m.set_limits(MeasureLimits::fast());
    }
    v
}

fn grid() -> Grid {
    Grid {
        strides: vec![1, 2, 8, 16, 64],
        working_sets: vec![
            2 << 10,
            4 << 10,
            8 << 10,
            16 << 10,
            64 << 10,
            256 << 10,
            1 << 20,
            4 << 20,
            8 << 20,
            16 << 20,
        ],
    }
}

#[test]
fn bandwidth_never_meaningfully_rises_with_working_set() {
    // Larger working sets can only move data further from the processor.
    for m in &mut machines() {
        let s = local_load_surface(m.as_mut(), &grid());
        for &stride in s.strides() {
            let col = s.column(stride).unwrap();
            for pair in col.windows(2) {
                let (w0, v0) = pair[0];
                let (w1, v1) = pair[1];
                assert!(
                    v1 <= v0 * 1.10,
                    "{}: stride {stride}: bw rose {v0} -> {v1} between ws {w0} and {w1}",
                    m.name()
                );
            }
        }
    }
}

#[test]
fn spectroscopy_matches_the_data_sheets() {
    let expect: &[(MachineId, &[u64])] = &[
        // The 8400's 96 KB L2 sits between measured points (64 K and 128 K),
        // so the knee attributes ~64 KB; L1 (8 K) and L3 (4 M) are exact.
        (MachineId::Dec8400, &[8 << 10, 4 << 20]),
        (MachineId::CrayT3d, &[8 << 10]),
        (MachineId::CrayT3e, &[8 << 10]),
    ];
    for m in &mut machines() {
        let s = local_load_surface(m.as_mut(), &grid());
        let caches = s.inferred_cache_bytes();
        let want = expect.iter().find(|(id, _)| *id == m.id()).unwrap().1;
        for w in want {
            assert!(
                caches.contains(w),
                "{}: expected a knee at {w} bytes, inferred {caches:?}",
                m.name()
            );
        }
    }
}

#[test]
fn contiguous_is_never_the_slowest_stride_in_dram() {
    for m in &mut machines() {
        let s = local_load_surface(m.as_mut(), &grid());
        let row = s.row(16 << 20).unwrap();
        let contig = row[0].1;
        for &(stride, v) in &row[1..] {
            assert!(
                contig >= v * 0.95,
                "{}: stride {stride} ({v}) beat contiguous ({contig}) in DRAM",
                m.name()
            );
        }
    }
}

#[test]
fn every_machine_peaks_in_its_l1() {
    for m in &mut machines() {
        let s = local_load_surface(m.as_mut(), &grid());
        let l1 = s.value(4 << 10, 1).unwrap();
        assert!(
            (s.peak() - l1).abs() < 1e-9 || l1 >= s.peak() * 0.99,
            "{}: peak {} should be the L1 plateau {}",
            m.name(),
            s.peak(),
            l1
        );
    }
}
