//! Integration test: the HPF BLOCK↔CYCLIC redistribution kernel, where the
//! best transfer style flips with the direction of the redistribution —
//! the paper's cost-model decision applied to the Catacomb back end's
//! general array-assignment case (§2.1).

use gasnub::machines::{Machine, MachineId, T3d, T3e};
use gasnub::shmem::{
    block_to_cyclic, cyclic_to_block, MeasuredCost, Pe, RedistStyle, ShmemCtx, TransferCost,
};

fn comm_ms(machine: MachineId, to_cyclic: bool, style: RedistStyle, n: usize) -> f64 {
    let boxed: Box<dyn Machine> = match machine {
        MachineId::CrayT3d => Box::new(T3d::new()),
        MachineId::CrayT3e => Box::new(T3e::new()),
        _ => unreachable!("not used in this test"),
    };
    let cost = MeasuredCost::new(boxed);
    let clock = cost.clock_mhz();
    let mut ctx = ShmemCtx::new(4, n / 2, cost);
    if to_cyclic {
        block_to_cyclic(&mut ctx, style, n / 8, 0, n / 8 * 4);
    } else {
        cyclic_to_block(&mut ctx, style, n / 8, 0, n / 8 * 4);
    }
    let max_comm = (0..4).map(|p| ctx.comm_cycles(Pe(p))).fold(0.0, f64::max);
    max_comm / clock / 1000.0
}

const N: usize = 1 << 18;

#[test]
fn t3e_best_style_flips_with_direction() {
    // block->cyclic: deposits land contiguously -> push wins.
    let push = comm_ms(MachineId::CrayT3e, true, RedistStyle::Push, N);
    let pull = comm_ms(MachineId::CrayT3e, true, RedistStyle::Pull, N);
    assert!(
        push < pull,
        "block->cyclic: push {push} must beat pull {pull}"
    );

    // cyclic->block: the pattern mirrors -> pull wins.
    let push = comm_ms(MachineId::CrayT3e, false, RedistStyle::Push, N);
    let pull = comm_ms(MachineId::CrayT3e, false, RedistStyle::Pull, N);
    assert!(
        pull < push,
        "cyclic->block: pull {pull} must beat push {push}"
    );
}

#[test]
fn t3d_deposits_win_both_directions() {
    // §9: "On the T3D, pulling data (fetch model) proves to be consistently
    // inferior than pushing data (deposit model)" — even when the deposit
    // side is the strided one.
    for to_cyclic in [true, false] {
        let push = comm_ms(MachineId::CrayT3d, to_cyclic, RedistStyle::Push, N);
        let pull = comm_ms(MachineId::CrayT3d, to_cyclic, RedistStyle::Pull, N);
        assert!(
            push < pull,
            "to_cyclic={to_cyclic}: push {push} must beat pull {pull}"
        );
    }
}
