//! Integration tests for the six headline findings of the paper, as listed
//! in DESIGN.md §1 — each asserted end-to-end through the facade crate.

use gasnub::core::cost::{CostModel, Strategy};
use gasnub::fft::run_benchmark;
use gasnub::machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn fast<M: Machine>(mut m: M) -> M {
    m.set_limits(MeasureLimits::fast());
    m
}

/// Finding 1: local bandwidth plateaus track the cache hierarchy, and
/// strided DRAM accesses collapse by an order of magnitude vs. contiguous.
#[test]
fn finding_1_plateaus_track_the_hierarchy() {
    let mut dec = fast(Dec8400::new());
    let l1 = dec.local_load(4 * KB, 1).mb_s;
    let l2 = dec.local_load(64 * KB, 1).mb_s;
    let l3 = dec.local_load(2 * MB, 1).mb_s;
    let dram = dec.local_load(32 * MB, 1).mb_s;
    assert!(
        l1 > l2 && l2 > l3 && l3 > dram,
        "{l1} > {l2} > {l3} > {dram} expected"
    );

    let dram_strided = dec.local_load(32 * MB, 16).mb_s;
    assert!(
        dram / dram_strided > 4.0,
        "strided collapse: {dram} vs {dram_strided}"
    );

    // The T3D has only two tiers.
    let mut t3d = fast(T3d::new());
    let t3d_l1 = t3d.local_load(4 * KB, 1).mb_s;
    let t3d_dram = t3d.local_load(8 * MB, 1).mb_s;
    assert!(t3d_l1 > 2.0 * t3d_dram);
}

/// Finding 2: remote bandwidth on the 8400 is an order of magnitude below
/// its local peak (1100 -> 140 MB/s).
#[test]
fn finding_2_remote_is_an_order_of_magnitude_below_local() {
    let mut dec = fast(Dec8400::new());
    let local_peak = dec.local_load(4 * KB, 1).mb_s;
    let remote_peak = dec.remote_load(32 * MB, 1).unwrap().mb_s;
    let ratio = local_peak / remote_peak;
    assert!(
        ratio > 5.0 && ratio < 12.0,
        "local/remote ratio {ratio} (paper: 1100/140 ≈ 7.9)"
    );
}

/// Finding 3: the T3D's streams-focused design beats the cache-focused
/// 8400 for large strided transfers despite half the clock, and deposit
/// beats naive fetch on the T3D.
#[test]
fn finding_3_t3d_streams_beat_8400_caches_for_strided_transfers() {
    let mut t3d = fast(T3d::new());
    let mut dec = fast(Dec8400::new());
    let t3d_strided = t3d.remote_deposit(8 * MB, 16).unwrap().mb_s;
    let dec_strided = dec.remote_fetch(32 * MB, 16).unwrap().mb_s;
    assert!(
        t3d_strided > 2.0 * dec_strided,
        "paper: 55 vs 22 MB/s; got {t3d_strided} vs {dec_strided}"
    );

    let deposit = t3d.remote_deposit(8 * MB, 1).unwrap().mb_s;
    let fetch = t3d.remote_fetch(8 * MB, 1).unwrap().mb_s;
    assert!(
        deposit > 3.0 * fetch,
        "deposit {deposit} must dominate naive fetch {fetch}"
    );
}

/// Finding 4: the T3E's E-registers make fetch and deposit symmetric at
/// ~350 MB/s contiguous — 4x the T3D and 2x the 8400 — but even-stride
/// deposits ripple down with destination bank conflicts.
#[test]
fn finding_4_t3e_eregisters() {
    let mut t3e = fast(T3e::new());
    let put = t3e.remote_deposit(8 * MB, 1).unwrap().mb_s;
    let get = t3e.remote_fetch(8 * MB, 1).unwrap().mb_s;
    assert!((put - get).abs() / put < 0.1, "symmetry: {put} vs {get}");

    let mut t3d = fast(T3d::new());
    let mut dec = fast(Dec8400::new());
    assert!(put / t3d.remote_deposit(8 * MB, 1).unwrap().mb_s > 2.4);
    assert!(put / dec.remote_load(32 * MB, 1).unwrap().mb_s > 1.7);

    let even = t3e.remote_deposit(8 * MB, 16).unwrap().mb_s;
    let odd = t3e.remote_deposit(8 * MB, 15).unwrap().mb_s;
    assert!(
        odd > 1.5 * even,
        "even-stride ripples: odd {odd} vs even {even}"
    );
}

/// Finding 5: strided DRAM load bandwidth is stuck across Cray generations
/// (43 -> 42 MB/s) while contiguous more than doubled.
#[test]
fn finding_5_strided_dram_stuck_across_generations() {
    let mut t3d = fast(T3d::new());
    let mut t3e = fast(T3e::new());
    let t3d_strided = t3d.local_load(8 * MB, 16).mb_s;
    let t3e_strided = t3e.local_load(8 * MB, 16).mb_s;
    let stuck_ratio = t3e_strided / t3d_strided;
    assert!(
        stuck_ratio > 0.7 && stuck_ratio < 1.4,
        "stuck: {t3d_strided} -> {t3e_strided}"
    );

    let t3d_contig = t3d.local_load(8 * MB, 1).mb_s;
    let t3e_contig = t3e.local_load(8 * MB, 1).mb_s;
    assert!(
        t3e_contig / t3d_contig > 1.8,
        "contiguous doubled: {t3d_contig} -> {t3e_contig}"
    );
}

/// Finding 6: in the 2D-FFT the 8400's ~2.5x compute advantage over the T3D
/// shrinks to well under 2x overall because its communication is no better,
/// and the T3E wins overall.
#[test]
fn finding_6_fft_compute_advantage_shrinks() {
    let t3d = run_benchmark(MachineId::CrayT3d, 256, 4);
    let dec = run_benchmark(MachineId::Dec8400, 256, 4);
    let t3e = run_benchmark(MachineId::CrayT3e, 256, 4);

    let compute_ratio = dec.compute_mflops_total / t3d.compute_mflops_total;
    assert!(
        compute_ratio > 2.0,
        "compute advantage {compute_ratio} (paper: >2.5)"
    );

    let overall_ratio = dec.total_mflops / t3d.total_mflops;
    assert!(
        overall_ratio < compute_ratio * 0.8 && overall_ratio > 1.2,
        "overall advantage {overall_ratio} must shrink below compute advantage {compute_ratio}"
    );

    // Communication: "approximately the same performance level".
    let comm_ratio = dec.comm_mb_s_total / t3d.comm_mb_s_total;
    assert!(
        comm_ratio > 0.5 && comm_ratio < 2.0,
        "8400 ≈ T3D comm: {comm_ratio}"
    );

    // The T3E wins overall.
    assert!(t3e.total_mflops > dec.total_mflops);
    assert!(t3e.total_mflops > 2.0 * t3d.total_mflops);
}

/// The counter layer ties the findings to their mechanisms. Finding 2's
/// slow 8400 pull: every remote cache line crosses the shared bus at least
/// once, supplied cache-to-cache out of the producer's modified lines.
/// Finding 3's slow naive T3D fetch: every single word comes back through
/// the NI's fetch circuitry — no read-ahead or coalescing can batch it,
/// unlike the deposit path, which streams packets without fetch requests.
#[test]
fn finding_mechanisms_show_in_the_counters() {
    use gasnub::machines::RingRecorder;

    let mut dec = fast(Dec8400::new());
    dec.set_recorder(Box::new(RingRecorder::new(4)));
    let pull = dec.remote_load(4 * MB, 1).unwrap();
    let counters = dec.take_counters().expect("the pull must harvest counters");
    let lines = pull.bytes / 64;
    assert!(
        counters.get("bus_transactions") >= lines,
        "every pulled 64-byte line is at least one bus transaction: {} < {lines}",
        counters.get("bus_transactions")
    );

    // A cache-resident set stays dirty in the producer's cache, so the pull
    // is supplied cache-to-cache, downgrading Modified lines to Shared.
    let pull = dec.remote_load(32 * KB, 1).unwrap();
    let counters = dec.take_counters().expect("the pull must harvest counters");
    assert!(
        counters.get("bus_transactions") >= pull.bytes / 64,
        "cache-to-cache supplies still cross the bus"
    );
    assert!(
        counters.get("smp_cache_supplies") > 0,
        "the producer's dirty lines must be supplied cache-to-cache"
    );
    assert!(
        counters.get("mesi_m_to_s") > 0,
        "coherent pulls must downgrade the producer's Modified lines"
    );

    let mut t3d = fast(T3d::new());
    t3d.set_recorder(Box::new(RingRecorder::new(4)));
    let fetch = t3d.remote_fetch(4 * MB, 16).unwrap();
    let counters = t3d
        .take_counters()
        .expect("the fetch must harvest counters");
    assert_eq!(
        counters.get("ni_fetched_words"),
        fetch.bytes / 8,
        "a strided fetch pulls every 64-bit word through the NI individually"
    );

    let deposit = t3d.remote_deposit(4 * MB, 1).unwrap();
    let counters = t3d
        .take_counters()
        .expect("the deposit must harvest counters");
    let words = deposit.bytes / 8;
    let packets = counters.get("ni_packets");
    assert!(
        packets > 0 && packets < words,
        "a contiguous deposit coalesces words into fewer packets: \
         {packets} packets for {words} words"
    );
    assert_eq!(
        counters.get("ni_fetched_words"),
        0,
        "the deposit path never issues fetch requests"
    );
}

/// §9's compiler guidance falls out of the measured cost model.
#[test]
fn cost_model_reproduces_section_9_guidance() {
    let strides = [15u64, 16];
    let words = 1 << 20;

    let mut t3d = fast(T3d::new());
    let model = CostModel::characterize(&mut t3d, &strides, 32 * MB);
    for &s in &strides {
        assert_eq!(
            model.best(words, s).strategy,
            Strategy::Deposit,
            "T3D pushes"
        );
    }

    let mut t3e = fast(T3e::new());
    let model = CostModel::characterize(&mut t3e, &strides, 32 * MB);
    assert_eq!(
        model.best(words, 16).strategy,
        Strategy::Fetch,
        "T3E pulls even strides"
    );

    let mut dec = fast(Dec8400::new());
    let model = CostModel::characterize(&mut dec, &strides, 32 * MB);
    for &s in &strides {
        let best = model.best(words, s);
        assert!(
            matches!(best.strategy, Strategy::Fetch | Strategy::BlockedFetch),
            "the 8400 can only pull (blocked or straight), and packing must not win: {best:?}"
        );
    }
}
