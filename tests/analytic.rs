//! The analytic fast path's acceptance bar. Over the full reference grid
//! of every zoo machine, the `auto` tier must agree with full simulation:
//! bit-identical wherever it simulates, and within the machine's
//! calibration tolerance wherever it answers from the analytic model. The
//! residual surface (one row per analytic cell) can be exported for CI by
//! setting `GASNUB_ANALYTIC_RESIDUALS` to an output path.

use std::path::{Path, PathBuf};

use gasnub::analytic::TieredSpec;
use gasnub::core::json::Json;
use gasnub::core::{Grid, SweepOp};
use gasnub::machines::{dispatch, MachineSpec, MeasureLimits, ProbePath, ProbeTier, SpawnEngine};

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn zoo_spec(name: &str) -> MachineSpec {
    let text = std::fs::read_to_string(repo_file(&format!("machines/zoo/{name}.toml")))
        .unwrap_or_else(|e| panic!("machines/zoo/{name}.toml must be readable: {e}"));
    MachineSpec::from_spec_str(&text)
        .unwrap_or_else(|e| panic!("machines/zoo/{name}.toml must parse: {e}"))
        .with_limits(MeasureLimits::fast())
}

/// Every machine the zoo ships, with the analytic-path cell count the
/// agreement sweep must reach on the reference grid (25 cells × 7 ops).
/// The floors pin today's trust coverage so a calibration regression
/// (trusted cells silently falling back to simulation) fails loudly.
const ZOO: [(&str, usize); 6] = [
    ("dec8400", 40),
    ("t3d", 40),
    ("t3e", 40),
    ("custom", 20),
    ("numa2s", 20),
    ("smp16", 20),
];

struct Residual {
    op: SweepOp,
    ws: u64,
    stride: u64,
    sim_mb_s: f64,
    model_mb_s: f64,
}

impl Residual {
    fn rel_err(&self) -> f64 {
        if self.sim_mb_s > 0.0 {
            (self.model_mb_s - self.sim_mb_s).abs() / self.sim_mb_s
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("op", Json::Str(self.op.label().to_string())),
            ("ws_bytes", Json::U64(self.ws)),
            ("stride", Json::U64(self.stride)),
            ("sim_mb_s_bits", Json::U64(self.sim_mb_s.to_bits())),
            ("model_mb_s_bits", Json::U64(self.model_mb_s.to_bits())),
            (
                "rel_err_ppm",
                Json::U64((self.rel_err() * 1e6).round() as u64),
            ),
        ])
    }
}

/// Sweeps one machine's reference grid under `--tier auto` and plain
/// simulation side by side, checking the tiering contract cell by cell.
/// Returns the analytic-path residual rows.
fn agreement_sweep(name: &str, spec: &MachineSpec) -> Vec<Residual> {
    let tolerance = spec.calibration_tolerance().unwrap_or(0.15);
    let tiered = TieredSpec::new(spec.clone(), ProbeTier::Auto)
        .unwrap_or_else(|e| panic!("{name}: analytic model must build: {e}"));
    let mut auto = tiered.spawn_engine().unwrap();
    let mut sim = spec.spawn_engine().unwrap();
    let grid = Grid::quick();
    let mut residuals = Vec::new();
    for op in SweepOp::all() {
        for &ws in &grid.working_sets {
            for &stride in &grid.strides {
                let req = op.request(ws, stride);
                let tiered_cell = dispatch(&mut auto, &req);
                let path = auto.last_path();
                let sim_cell = dispatch(&mut sim, &req);
                let cell = format!("{name} {} ws={ws} stride={stride}", op.label());
                match (tiered_cell.measurement, sim_cell.measurement) {
                    (None, None) => {} // unsupported on both sides
                    pair @ ((None, Some(_)) | (Some(_), None)) => {
                        panic!("{cell}: tiers disagree on op support ({pair:?})")
                    }
                    (Some(a), Some(s)) if path == ProbePath::Simulated => assert_eq!(
                        (a.bytes, a.cycles.to_bits(), a.mb_s.to_bits()),
                        (s.bytes, s.cycles.to_bits(), s.mb_s.to_bits()),
                        "{cell}: a simulated auto-tier cell must be bit-identical"
                    ),
                    (Some(a), Some(s)) => {
                        let residual = Residual {
                            op,
                            ws,
                            stride,
                            sim_mb_s: s.mb_s,
                            model_mb_s: a.mb_s,
                        };
                        assert!(
                            residual.rel_err() <= tolerance,
                            "{cell}: analytic {:.1} MB/s vs simulated {:.1} MB/s \
                             ({:.1}% off, tolerance {:.0}%)",
                            a.mb_s,
                            s.mb_s,
                            residual.rel_err() * 100.0,
                            tolerance * 100.0
                        );
                        residuals.push(residual);
                    }
                }
            }
        }
    }
    residuals
}

/// The tentpole's cross-validation: on every zoo machine's full reference
/// grid, analytic-path cells agree with simulation within the machine's
/// calibration tolerance, simulated cells are bit-identical, and trust
/// coverage stays at or above today's level.
#[test]
fn analytic_tier_agrees_with_simulation_on_every_zoo_machine() {
    let mut surface = Vec::new();
    for (name, min_analytic_cells) in ZOO {
        let spec = zoo_spec(name);
        let residuals = agreement_sweep(name, &spec);
        assert!(
            residuals.len() >= min_analytic_cells,
            "{name}: only {} analytic-path cells on the reference grid \
             (expected at least {min_analytic_cells}) — trust coverage regressed",
            residuals.len()
        );
        surface.push((name, residuals));
    }

    if let Ok(path) = std::env::var("GASNUB_ANALYTIC_RESIDUALS") {
        let doc = Json::Object(
            surface
                .iter()
                .map(|(name, residuals)| {
                    (
                        name.to_string(),
                        Json::Array(residuals.iter().map(Residual::to_json).collect()),
                    )
                })
                .collect(),
        );
        let mut text = doc.render();
        text.push('\n');
        std::fs::write(&path, text)
            .unwrap_or_else(|e| panic!("cannot write residual surface to {path}: {e}"));
    }
}

/// The `auto` tier keeps the determinism contract: checkpoints are
/// byte-identical at every worker count. Analytic answers come from pure
/// arithmetic over memoized anchor probes, so thread interleaving cannot
/// change a single bit.
#[test]
fn auto_tier_checkpoints_are_byte_identical_across_thread_counts() {
    let scratch = |tag: &str| {
        std::env::temp_dir().join(format!(
            "gasnub-analytic-det-{}-{tag}.json",
            std::process::id()
        ))
    };
    let sweep = |machine: &str, ckpt: &Path, threads: &str, tier: &str| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_gasnub"))
            .args([
                "sweep",
                machine,
                "load",
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--threads",
                threads,
                "--tier",
                tier,
            ])
            .output()
            .expect("the gasnub binary must spawn");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{machine} --tier {tier} --threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    for machine in ["t3d", "t3e"] {
        let reference = scratch(&format!("{machine}-t1"));
        sweep(machine, &reference, "1", "auto");
        let want = std::fs::read(&reference).unwrap();
        for threads in ["2", "4"] {
            let ckpt = scratch(&format!("{machine}-t{threads}"));
            sweep(machine, &ckpt, threads, "auto");
            let got = std::fs::read(&ckpt).unwrap();
            assert_eq!(
                want, got,
                "{machine}: --tier auto checkpoint must not depend on --threads"
            );
            let _ = std::fs::remove_file(&ckpt);
        }
        let _ = std::fs::remove_file(&reference);
    }
}

/// A checkpoint written under one tier refuses to resume under another:
/// the tier is part of the sweep title, so the foreign-title check fires
/// before mixed-provenance measurements can land in one file.
#[test]
fn checkpoints_do_not_mix_tiers() {
    let ckpt =
        std::env::temp_dir().join(format!("gasnub-analytic-mix-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let run = |tier: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_gasnub"))
            .args([
                "sweep",
                "t3e",
                "load",
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--max-cells",
                "3",
                "--tier",
                tier,
            ])
            .output()
            .expect("the gasnub binary must spawn")
    };
    let first = run("auto");
    assert_eq!(
        first.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = run("sim");
    assert_eq!(
        second.status.code(),
        Some(2),
        "resuming an auto-tier checkpoint under --tier sim must be refused"
    );
    let _ = std::fs::remove_file(&ckpt);
}

/// Usage-error paths: a malformed tier exits 2, and `trace` (which exists
/// to harvest simulation observability) rejects the pure-analytic tier.
#[test]
fn tier_flag_usage_errors_exit_2() {
    let run = |args: &[&str]| {
        std::process::Command::new(env!("CARGO_BIN_EXE_gasnub"))
            .args(args)
            .output()
            .expect("the gasnub binary must spawn")
    };
    let bogus = run(&[
        "sweep",
        "t3d",
        "load",
        "--checkpoint",
        "/tmp/unused.json",
        "--tier",
        "warp",
    ]);
    assert_eq!(bogus.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bogus.stderr).contains("--tier"),
        "the error must name the flag"
    );

    let trace = run(&["trace", "t3d", "load", "--tier", "analytic"]);
    assert_eq!(trace.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&trace.stderr).contains("analytic"),
        "trace must explain why the analytic tier is rejected"
    );
}
