//! Every layer of the stack is deterministic: identical configurations and
//! inputs produce bit-identical results. This is the property that makes
//! the characterization reproducible and the figures stable.

use gasnub::core::sweep::Grid;
use gasnub::core::{local_load_surface, CostModel};
use gasnub::fft::run_benchmark;
use gasnub::machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};

fn fast<M: Machine>(mut m: M) -> M {
    m.set_limits(MeasureLimits::fast());
    m
}

#[test]
fn machine_probes_are_deterministic() {
    let probe = |m: &mut dyn Machine| {
        (
            m.local_load(8 << 20, 7).cycles,
            m.local_copy(4 << 20, 16, 1).cycles,
            m.remote_fetch(4 << 20, 3).map(|r| r.cycles),
            m.remote_deposit(4 << 20, 3).map(|r| r.cycles),
        )
    };
    let mut a = fast(T3d::new());
    let mut b = fast(T3d::new());
    assert_eq!(probe(&mut a), probe(&mut b));

    let mut a = fast(T3e::new());
    let mut b = fast(T3e::new());
    assert_eq!(probe(&mut a), probe(&mut b));

    let mut a = fast(Dec8400::new());
    let mut b = fast(Dec8400::new());
    assert_eq!(probe(&mut a), probe(&mut b));
}

#[test]
fn repeated_probes_on_one_machine_are_stable() {
    // Each probe flushes, so state from a previous probe must not leak.
    let mut m = fast(T3e::new());
    let first = m.local_load(4 << 20, 5).cycles;
    let _ = m.remote_deposit(4 << 20, 16);
    let second = m.local_load(4 << 20, 5).cycles;
    assert_eq!(first, second);
}

#[test]
fn surfaces_are_deterministic() {
    let grid = Grid {
        strides: vec![1, 8],
        working_sets: vec![64 << 10, 4 << 20],
    };
    let mut a = fast(T3d::new());
    let mut b = fast(T3d::new());
    assert_eq!(
        local_load_surface(&mut a, &grid),
        local_load_surface(&mut b, &grid)
    );
}

#[test]
fn cost_models_are_deterministic() {
    let mut a = fast(T3e::new());
    let mut b = fast(T3e::new());
    let ma = CostModel::characterize(&mut a, &[1, 16], 32 << 20);
    let mb = CostModel::characterize(&mut b, &[1, 16], 32 << 20);
    assert_eq!(ma, mb);
}

#[test]
fn fft_benchmark_is_deterministic() {
    let a = run_benchmark(MachineId::CrayT3d, 64, 4);
    let b = run_benchmark(MachineId::CrayT3d, 64, 4);
    assert_eq!(a, b);
}

#[test]
fn parallel_sweeps_match_sequential_ones_bit_for_bit() {
    use gasnub::core::{sweep_surface_par, SweepOp};
    use gasnub::machines::MachineSpec;
    let grid = Grid {
        strides: vec![1, 8],
        working_sets: vec![64 << 10, 4 << 20],
    };
    let mut m = fast(T3d::new());
    let sequential = local_load_surface(&mut m, &grid);
    let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
    let parallel = sweep_surface_par(&spec, SweepOp::LocalLoad, &grid, 4)
        .unwrap()
        .unwrap();
    assert_eq!(parallel, sequential);
}

/// The acceptance bar for parallel execution: a `--threads 4` sweep leaves
/// a checkpoint file *and* a `--counters` report byte-identical to a
/// `--threads 1` sweep of the same grid, for every reference machine.
#[test]
fn parallel_cli_sweeps_write_byte_identical_checkpoints() {
    let scratch = |tag: &str| {
        std::env::temp_dir().join(format!("gasnub-det-par-{}-{tag}.json", std::process::id()))
    };
    for (machine, op) in [("dec8400", "pull"), ("t3d", "deposit"), ("t3e", "fetch")] {
        let seq_ckpt = scratch(&format!("{machine}-seq"));
        let par_ckpt = scratch(&format!("{machine}-par"));
        let seq_counters = scratch(&format!("{machine}-seq-counters"));
        let par_counters = scratch(&format!("{machine}-par-counters"));
        let mut outputs = Vec::new();
        for (ckpt, counters, threads) in [
            (&seq_ckpt, &seq_counters, "1"),
            (&par_ckpt, &par_counters, "4"),
        ] {
            let out = std::process::Command::new(env!("CARGO_BIN_EXE_gasnub"))
                .args([
                    "sweep",
                    machine,
                    op,
                    "--checkpoint",
                    ckpt.to_str().unwrap(),
                    "--threads",
                    threads,
                    "--counters",
                    counters.to_str().unwrap(),
                ])
                .output()
                .expect("the gasnub binary must spawn");
            assert_eq!(
                out.status.code(),
                Some(0),
                "{machine} {op} --threads {threads}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            // Everything before the cell-accounting line is the rendered
            // surface (the tail names the per-run checkpoint path).
            let text = String::from_utf8_lossy(&out.stdout).to_string();
            outputs.push(
                text.split("\ncells:")
                    .next()
                    .unwrap_or_default()
                    .to_string(),
            );
        }
        assert_eq!(
            outputs[0], outputs[1],
            "{machine} {op}: parallel run must render the same surface"
        );
        let seq = std::fs::read(&seq_ckpt).unwrap();
        let par = std::fs::read(&par_ckpt).unwrap();
        assert_eq!(
            seq, par,
            "{machine} {op}: checkpoints must be byte-identical"
        );
        let seq = std::fs::read(&seq_counters).unwrap();
        let par = std::fs::read(&par_counters).unwrap();
        assert_eq!(
            seq, par,
            "{machine} {op}: counter reports must be byte-identical"
        );
        for f in [&seq_ckpt, &par_ckpt, &seq_counters, &par_counters] {
            let _ = std::fs::remove_file(f);
        }
    }
}

/// The warm path's acceptance bar: a default (warm) sweep — memoized
/// probes, stats-free priming, run-granular scheduling, batched fsync —
/// leaves a checkpoint byte-identical to a `--cold` sweep (full cold
/// simulation, fsync per cell) at every thread count, for every reference
/// machine. The warm path is an optimization, never a different answer.
#[test]
fn warm_sweeps_write_byte_identical_checkpoints_to_cold_sweeps() {
    let scratch = |tag: &str| {
        std::env::temp_dir().join(format!("gasnub-det-warm-{}-{tag}.json", std::process::id()))
    };
    let sweep = |machine: &str, ckpt: &std::path::Path, extra: &[&str]| {
        let mut args = vec![
            "sweep",
            machine,
            "load",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_gasnub"))
            .args(&args)
            .output()
            .expect("the gasnub binary must spawn");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{machine} {extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    for machine in ["dec8400", "t3d", "t3e"] {
        let cold_ckpt = scratch(&format!("{machine}-cold"));
        sweep(
            machine,
            &cold_ckpt,
            &["--cold", "--fsync-every", "1", "--threads", "1"],
        );
        let cold = std::fs::read(&cold_ckpt).unwrap();
        for threads in ["1", "2", "4"] {
            let warm_ckpt = scratch(&format!("{machine}-warm-{threads}"));
            sweep(machine, &warm_ckpt, &["--threads", threads]);
            let warm = std::fs::read(&warm_ckpt).unwrap();
            assert_eq!(
                cold, warm,
                "{machine} --threads {threads}: warm checkpoint must match --cold"
            );
            let _ = std::fs::remove_file(&warm_ckpt);
        }
        let _ = std::fs::remove_file(&cold_ckpt);
    }
}

/// Counter collection gathers cells in grid order whatever the worker
/// count, so the library-level report is identical too (the CLI test above
/// pins the rendered bytes; this pins the structured value).
#[test]
fn counter_reports_are_thread_count_invariant() {
    use gasnub::core::counters::collect_counters;
    use gasnub::core::SweepOp;
    use gasnub::machines::MachineSpec;
    let grid = Grid {
        strides: vec![1, 8],
        working_sets: vec![64 << 10, 4 << 20],
    };
    let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
    let sequential = collect_counters(&spec, SweepOp::RemoteDeposit, &grid, 1)
        .unwrap()
        .unwrap();
    let parallel = collect_counters(&spec, SweepOp::RemoteDeposit, &grid, 4)
        .unwrap()
        .unwrap();
    assert_eq!(sequential, parallel);
    assert_eq!(sequential.render_json(), parallel.render_json());
}
