//! Every layer of the stack is deterministic: identical configurations and
//! inputs produce bit-identical results. This is the property that makes
//! the characterization reproducible and the figures stable.

use gasnub::core::sweep::Grid;
use gasnub::core::{local_load_surface, CostModel};
use gasnub::fft::run_benchmark;
use gasnub::machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};

fn fast<M: Machine>(mut m: M) -> M {
    m.set_limits(MeasureLimits::fast());
    m
}

#[test]
fn machine_probes_are_deterministic() {
    let probe = |m: &mut dyn Machine| {
        (
            m.local_load(8 << 20, 7).cycles,
            m.local_copy(4 << 20, 16, 1).cycles,
            m.remote_fetch(4 << 20, 3).map(|r| r.cycles),
            m.remote_deposit(4 << 20, 3).map(|r| r.cycles),
        )
    };
    let mut a = fast(T3d::new());
    let mut b = fast(T3d::new());
    assert_eq!(probe(&mut a), probe(&mut b));

    let mut a = fast(T3e::new());
    let mut b = fast(T3e::new());
    assert_eq!(probe(&mut a), probe(&mut b));

    let mut a = fast(Dec8400::new());
    let mut b = fast(Dec8400::new());
    assert_eq!(probe(&mut a), probe(&mut b));
}

#[test]
fn repeated_probes_on_one_machine_are_stable() {
    // Each probe flushes, so state from a previous probe must not leak.
    let mut m = fast(T3e::new());
    let first = m.local_load(4 << 20, 5).cycles;
    let _ = m.remote_deposit(4 << 20, 16);
    let second = m.local_load(4 << 20, 5).cycles;
    assert_eq!(first, second);
}

#[test]
fn surfaces_are_deterministic() {
    let grid = Grid { strides: vec![1, 8], working_sets: vec![64 << 10, 4 << 20] };
    let mut a = fast(T3d::new());
    let mut b = fast(T3d::new());
    assert_eq!(local_load_surface(&mut a, &grid), local_load_surface(&mut b, &grid));
}

#[test]
fn cost_models_are_deterministic() {
    let mut a = fast(T3e::new());
    let mut b = fast(T3e::new());
    let ma = CostModel::characterize(&mut a, &[1, 16], 32 << 20);
    let mb = CostModel::characterize(&mut b, &[1, 16], 32 << 20);
    assert_eq!(ma, mb);
}

#[test]
fn fft_benchmark_is_deterministic() {
    let a = run_benchmark(MachineId::CrayT3d, 64, 4);
    let b = run_benchmark(MachineId::CrayT3d, 64, 4);
    assert_eq!(a, b);
}
