//! Black-box tests for the characterization server: byte-identity with
//! offline checkpoints, compute-once coalescing, stable error shapes, the
//! `gasnub serve` binary, and the warm-path counter contract.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

use gasnub::core::storage::read_verified;
use gasnub::serve::{ServeConfig, Server};

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gasnub-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Boots an in-process server on an ephemeral port; the accept loop runs
/// on a background thread until [`shutdown`].
fn boot(state_dir: &std::path::Path) -> SocketAddr {
    let server = Server::bind(ServeConfig::new("127.0.0.1:0", state_dir)).expect("server binds");
    let addr = server.local_addr();
    std::thread::spawn(move || server.run());
    addr
}

fn shutdown(addr: SocketAddr) {
    let _ = http(addr, "POST", "/v1/shutdown", "");
}

/// A minimal HTTP/1.1 client: one request per connection
/// (`Connection: close`), returning status, lowercased headers and body.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("server accepts connections");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: gasnub\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .expect("request writes");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response reads");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line parses");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// The named counter out of a flat JSON object like `/metrics` returns.
fn counter(metrics_body: &str, name: &str) -> u64 {
    let doc = gasnub::core::json::Json::parse(metrics_body).expect("metrics is valid JSON");
    doc.get(name)
        .and_then(gasnub::core::json::Json::as_u64)
        .unwrap_or_else(|| panic!("metrics must carry {name}: {metrics_body}"))
}

/// ISSUE satellite (a): a served sweep body is byte-identical to the
/// payload of an offline `gasnub sweep` checkpoint of the same
/// (machine, grid, tier) — both are the canonical checkpoint bytes.
#[test]
fn sweep_response_is_byte_identical_to_offline_checkpoint() {
    let dir = scratch("identity");
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    let offline = dir.join("offline.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_gasnub"))
        .args(["sweep", "t3d", "load", "--checkpoint"])
        .arg(&offline)
        .output()
        .expect("the gasnub binary must spawn");
    assert!(
        out.status.success(),
        "offline sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let offline_payload = read_verified(&offline)
        .expect("offline checkpoint verifies")
        .expect("offline checkpoint exists");

    let addr = boot(&dir.join("state"));
    // No "grid" field: the server defaults to the same quick grid the
    // offline `sweep` subcommand uses.
    let body = r#"{"machine":"t3d","op":"load"}"#;
    let (status, headers, served) = http(addr, "POST", "/v1/sweep", body);
    assert_eq!(status, 200, "sweep must succeed: {served}");
    assert_eq!(header(&headers, "x-gasnub-source"), Some("computed"));
    assert_eq!(
        served, offline_payload,
        "served sweep must be byte-identical to the offline checkpoint payload"
    );

    // A repeat is a memory-cache hit with the exact same bytes.
    let (status, headers, again) = http(addr, "POST", "/v1/sweep", body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-gasnub-source"), Some("memory"));
    assert_eq!(again, offline_payload);
    shutdown(addr);
}

/// ISSUE satellite (b): two concurrent identical requests return identical
/// bodies and the counters show the surface was computed exactly once.
#[test]
fn concurrent_identical_sweeps_compute_once() {
    let dir = scratch("coalesce");
    let addr = boot(&dir);
    let body = r#"{"machine":"t3e","op":"fetch","grid":{"strides":[1,8,64],"working_sets":[2048,32768,524288]}}"#;
    let barrier = Arc::new(Barrier::new(2));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                http(addr, "POST", "/v1/sweep", body)
            })
        })
        .collect();
    let responses: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread joins"))
        .collect();

    for (status, _, body) in &responses {
        assert_eq!(*status, 200, "both requests must succeed: {body}");
    }
    assert_eq!(
        responses[0].2, responses[1].2,
        "concurrent identical requests must return identical bodies"
    );

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        counter(&metrics, "serve.sweeps_computed"),
        1,
        "the surface must be computed exactly once: {metrics}"
    );
    assert_eq!(counter(&metrics, "serve.sweeps"), 2);
    // The follower either coalesced onto the leader's in-flight run or
    // (if it arrived after completion) hit the memory cache.
    assert_eq!(
        counter(&metrics, "serve.sweeps_coalesced")
            + counter(&metrics, "serve.sweep_cache_hits_memory"),
        1,
        "the second request must reuse the first: {metrics}"
    );
    shutdown(addr);
}

/// ISSUE satellite (c): malformed JSON, unknown machines and bad grids map
/// to structured 4xx responses with stable shapes.
#[test]
fn malformed_requests_return_stable_4xx_shapes() {
    let dir = scratch("errors");
    let addr = boot(&dir);
    let cases: &[(&str, &str, &str, u16, &str)] = &[
        ("POST", "/v1/sweep", "{not json", 400, "bad_json"),
        ("POST", "/v1/sweep", "[1,2,3]", 400, "bad_json"),
        ("POST", "/v1/sweep", r#"{"op":"load"}"#, 400, "bad_request"),
        (
            "POST",
            "/v1/sweep",
            r#"{"machine":"paragon","op":"load"}"#,
            404,
            "unknown_machine",
        ),
        (
            "POST",
            "/v1/sweep",
            r#"{"machine":"t3d","op":"teleport"}"#,
            400,
            "unknown_op",
        ),
        (
            "POST",
            "/v1/sweep",
            r#"{"machine":"t3d","op":"load","tier":"warp"}"#,
            400,
            "bad_tier",
        ),
        (
            "POST",
            "/v1/sweep",
            r#"{"machine":"t3d","op":"load","grid":{"strides":[8,1],"working_sets":[2048]}}"#,
            400,
            "bad_grid",
        ),
        (
            "POST",
            "/v1/probe",
            r#"{"machine":"t3d","op":"load","ws_bytes":1}"#,
            400,
            "bad_request",
        ),
        ("GET", "/v1/teapot", "", 404, "unknown_endpoint"),
        ("GET", "/v1/sweep", "", 405, "method_not_allowed"),
    ];
    for &(method, path, body, want_status, want_code) in cases {
        let (status, _, response) = http(addr, method, path, body);
        assert_eq!(
            status, want_status,
            "{method} {path} with {body:?}: {response}"
        );
        let doc = gasnub::core::json::Json::parse(&response).expect("error body is valid JSON");
        let error = doc.get("error").expect("error body has an \"error\" key");
        assert_eq!(
            error.get("code").and_then(gasnub::core::json::Json::as_str),
            Some(want_code),
            "{method} {path} with {body:?}: {response}"
        );
        assert_eq!(
            error
                .get("status")
                .and_then(gasnub::core::json::Json::as_u64),
            Some(u64::from(want_status))
        );
        assert!(
            error
                .get("detail")
                .and_then(gasnub::core::json::Json::as_str)
                .is_some_and(|d| !d.is_empty()),
            "errors must carry a human-readable detail: {response}"
        );
    }
    // Unknown machines get the registry's full "expected ..." list, the
    // same detail the CLI prints.
    let (_, _, response) = http(
        addr,
        "POST",
        "/v1/sweep",
        r#"{"machine":"paragon","op":"load"}"#,
    );
    assert!(
        response.contains("expected"),
        "unknown machine must list resolvable names: {response}"
    );
    shutdown(addr);
}

/// The `gasnub serve` binary boots, prints a parseable address line,
/// answers requests, and prints the shutdown counter report.
#[test]
fn cli_serve_boots_and_reports() {
    let dir = scratch("cli");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_gasnub"))
        .args(["serve", "--addr", "127.0.0.1:0", "--state-dir"])
        .arg(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("the gasnub binary must spawn");

    let mut stdout = child.stdout.take().expect("stdout is piped");
    let mut first_line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stdout.read(&mut byte).expect("serve stdout reads");
        assert!(n > 0, "serve must print its address before closing stdout");
        if byte[0] == b'\n' {
            break;
        }
        first_line.push(byte[0]);
    }
    let first_line = String::from_utf8(first_line).expect("address line is UTF-8");
    let addr: SocketAddr = first_line
        .strip_prefix("gasnub: serving on http://")
        .unwrap_or_else(|| panic!("unexpected boot line: {first_line}"))
        .parse()
        .expect("boot line ends in the bound address");

    let (status, _, body) = http(addr, "GET", "/v1/status", "");
    assert_eq!(status, 200, "status must answer: {body}");
    assert!(
        body.contains("\"machines\""),
        "status lists the zoo: {body}"
    );
    shutdown(addr);

    let mut rest = String::new();
    stdout
        .read_to_string(&mut rest)
        .expect("serve stdout drains");
    let out = child.wait().expect("serve exits after shutdown");
    assert!(out.success(), "serve must exit cleanly after shutdown");
    assert!(
        rest.lines().any(|l| l.starts_with("serving: ")
            && l.contains("serve.requests=")
            && l.contains("serve.responses_2xx=")),
        "serve must print a shutdown counter report, got: {rest:?}"
    );
}

/// ISSUE satellite: the serving counter path must not force probes cold.
/// Repeated identical probes hit the per-process memo (observed via the
/// memo's own statistics on `/metrics`) while `serve.probes` still counts
/// every request — counters and the warm path coexist.
#[test]
fn serving_probes_stay_on_the_warm_path() {
    let dir = scratch("warm");
    let addr = boot(&dir);
    let body = r#"{"machine":"dec8400","op":"store","ws_bytes":32768,"stride":2}"#;
    let mut bodies = Vec::new();
    for _ in 0..3 {
        let (status, _, response) = http(addr, "POST", "/v1/probe", body);
        assert_eq!(status, 200, "probe must succeed: {response}");
        bodies.push(response);
    }
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "repeated probes must be deterministic: {bodies:?}"
    );
    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "serve.probes"), 3);
    assert!(
        counter(&metrics, "memo.hits") >= 2,
        "repeated served probes must hit the probe memo (warm path): {metrics}"
    );
    shutdown(addr);
}
