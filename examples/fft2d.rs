//! The §7 application kernel end-to-end: run the distributed 2D-FFT on all
//! three machines, verify the numerics against a serial transform, and
//! print the figs 15-17 metrics.
//!
//! ```text
//! cargo run --release --example fft2d            # n = 256
//! cargo run --release --example fft2d -- 512
//! ```

use gasnub::fft::complex::Complex;
use gasnub::fft::dist2d::{run_benchmark, Dist2dFft, TransposeStyle};
use gasnub::fft::fft1d::fft_forward;
use gasnub::machines::MachineId;
use gasnub::shmem::UniformCost;

/// Serial 2D FFT for verification.
fn serial_2d(n: usize, data: &mut [Complex]) {
    for r in 0..n {
        fft_forward(&mut data[r * n..(r + 1) * n]);
    }
    for c in 0..n {
        let mut col: Vec<Complex> = (0..n).map(|r| data[r * n + c]).collect();
        fft_forward(&mut col);
        for (r, v) in col.into_iter().enumerate() {
            data[r * n + c] = v;
        }
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);

    // 1. Correctness: the distributed kernel computes the same transform as
    //    a serial 2D FFT (checked at a small size for speed).
    let vn = 32;
    let mut fft = Dist2dFft::new(vn, 4, UniformCost::new(), TransposeStyle::Deposit);
    let mut reference = vec![Complex::ZERO; vn * vn];
    for i in 0..vn {
        for j in 0..vn {
            let v = Complex::new(((i * 3 + j) % 13) as f64, ((i + 5 * j) % 11) as f64);
            fft.set(i, j, v);
            reference[i * vn + j] = v;
        }
    }
    fft.run(0.0);
    serial_2d(vn, &mut reference);
    let mut max_err: f64 = 0.0;
    for i in 0..vn {
        for j in 0..vn {
            max_err = max_err.max((fft.get(i, j) - reference[i * vn + j]).abs());
        }
    }
    println!("distributed vs serial 2D-FFT ({vn}x{vn}): max |error| = {max_err:.3e}");
    assert!(max_err < 1e-9, "numerical verification failed");

    // 2. Performance: the figs 15-17 metrics at the requested size.
    println!("\n2D-FFT on 4 PEs, n = {n} (paper figs 15-17):");
    println!(
        "{:<22}{:>16}{:>18}{:>16}",
        "machine", "total MFlop/s", "compute MFlop/s", "comm MB/s"
    );
    for id in [MachineId::CrayT3d, MachineId::Dec8400, MachineId::CrayT3e] {
        let r = run_benchmark(id, n, 4);
        println!(
            "{:<22}{:>16.0}{:>18.0}{:>16.0}",
            id.to_string(),
            r.total_mflops,
            r.compute_mflops_total,
            r.comm_mb_s_total
        );
    }
    println!("\npaper @256: T3D 133, 8400 ~220, T3E ~330 MFlop/s total.");
}
