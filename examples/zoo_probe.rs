//! Probes every machine in the zoo with one DRAM-resident working set:
//! contiguous and strided, local and remote — the one-screen version of
//! the paper's bandwidth characterization, across three decades of
//! machines.
//!
//! ```text
//! cargo run --release --example zoo_probe
//! ```

use gasnub::machines::{Machine, MachineRegistry, MeasureLimits};

fn main() {
    // 32 MB: past every cache in the zoo, so the probes measure memory.
    let ws: u64 = 32 << 20;
    let registry = MachineRegistry::discover();

    println!(
        "{:<10}{:>12}{:>12}{:>8}  {:>12}{:>12}",
        "machine", "local MB/s", "remote MB/s", "ratio", "local s=8", "remote s=8"
    );
    for spec in registry.specs() {
        let label = spec.label().to_string();
        let mut m = match spec.clone().with_limits(MeasureLimits::new()).build() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{label}: does not build: {e}");
                continue;
            }
        };
        let local = m.local_load(ws, 1);
        let local8 = m.local_load(ws, 8);
        match (m.remote_fetch(ws, 1), m.remote_fetch(ws, 8)) {
            (Some(remote), Some(remote8)) => println!(
                "{:<10}{:>12.0}{:>12.0}{:>7.2}x  {:>12.0}{:>12.0}",
                label,
                local.mb_s,
                remote.mb_s,
                local.mb_s / remote.mb_s,
                local8.mb_s,
                remote8.mb_s
            ),
            _ => println!(
                "{:<10}{:>12.0}{:>12}{:>8}  {:>12.0}{:>12}",
                label, local.mb_s, "-", "-", local8.mb_s, "-"
            ),
        }
    }
    for broken in registry.broken() {
        eprintln!("broken spec {}: {}", broken.path.display(), broken.message);
    }
}
