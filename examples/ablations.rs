//! Runs the ablation suite: each hardware mechanism the paper credits,
//! switched off, with the bandwidth it was worth.
//!
//! ```text
//! cargo run --release --example ablations
//! ```

use gasnub::machines::{Dec8400, Machine, MeasureLimits, T3d, T3e};

fn main() {
    let limits = MeasureLimits::fast();
    let ws = 8 << 20;

    println!(
        "{:<44}{:>10}{:>10}{:>9}",
        "mechanism", "with", "without", "worth"
    );

    let row = |name: &str, with: f64, without: f64| {
        println!(
            "{:<44}{:>10.0}{:>10.0}{:>8.2}x",
            name,
            with,
            without,
            with / without
        );
    };

    {
        let mut a = T3e::new();
        a.set_limits(limits);
        let mut b = T3e::new_without_streams();
        b.set_limits(limits);
        row(
            "T3E stream buffers (contiguous DRAM loads)",
            a.local_load(ws, 1).mb_s,
            b.local_load(ws, 1).mb_s,
        );
    }
    {
        let mut a = T3d::new();
        a.set_limits(limits);
        let mut b = T3d::new_without_read_ahead();
        b.set_limits(limits);
        row(
            "T3D read-ahead logic (contiguous DRAM loads)",
            a.local_load(ws, 1).mb_s,
            b.local_load(ws, 1).mb_s,
        );
    }
    {
        let mut a = T3d::new();
        a.set_limits(limits);
        let mut b = T3d::new_without_coalescing();
        b.set_limits(limits);
        row(
            "T3D WBQ coalescing (contiguous deposits)",
            a.remote_deposit(ws, 1).unwrap().mb_s,
            b.remote_deposit(ws, 1).unwrap().mb_s,
        );
    }
    {
        let mut a = T3d::new();
        a.set_limits(limits);
        let mut b = T3d::new_with_blocking_fetch();
        b.set_limits(limits);
        row(
            "T3D prefetch FIFO (contiguous fetches)",
            a.remote_fetch(ws, 1).unwrap().mb_s,
            b.remote_fetch(ws, 1).unwrap().mb_s,
        );
    }
    {
        let mut a = Dec8400::new();
        a.set_limits(limits);
        row(
            "8400 L3 blocking (strided pulls, 2 MB vs 32 MB)",
            a.remote_load(2 << 20, 16).unwrap().mb_s,
            a.remote_load(32 << 20, 16).unwrap().mb_s,
        );
    }
}
