//! The §9 guidance, derived from measurement: for each machine and stride,
//! which implementation of a strided remote transfer is cheapest?
//!
//! Reproduces the paper's conclusions: deposits win on the T3D, fetches win
//! (or tie) on the T3E, the 8400 can only pull, and packing into contiguous
//! buffers "never pays off".
//!
//! ```text
//! cargo run --release --example compiler_strategy
//! ```

use gasnub::core::cost::{CostModel, Strategy};
use gasnub::machines::{Dec8400, Machine, MeasureLimits, T3d, T3e};

fn main() {
    let strides = [1u64, 2, 8, 15, 16, 64];
    let words = 1 << 20; // 8 MB transfer
    let mut machines: Vec<Box<dyn Machine>> = vec![
        Box::new(Dec8400::new()),
        Box::new(T3d::new()),
        Box::new(T3e::new()),
    ];

    println!(
        "Cheapest strategy for moving {words} words ({} MB) at each stride:\n",
        (words * 8) >> 20
    );
    for m in &mut machines {
        m.set_limits(MeasureLimits::fast());
        let model = CostModel::characterize(m.as_mut(), &strides, 32 << 20);
        println!("== {} ==", m.name());
        println!("{:>8} {:>10} {:<42}ranking", "stride", "MB/s", "winner");
        for &s in &strides {
            let ranked = model.rank(words, s);
            let best = &ranked[0];
            let ranking: Vec<String> = ranked
                .iter()
                .map(|e| {
                    let tag = match e.strategy {
                        Strategy::Deposit => "deposit",
                        Strategy::Fetch => "fetch",
                        Strategy::PackAndDeposit => "pack+dep",
                        Strategy::PackAndFetch => "pack+fetch",
                        Strategy::BlockedFetch => "blocked",
                    };
                    format!("{tag} {:.0}", e.mb_s)
                })
                .collect();
            println!(
                "{s:>8} {:>10.0} {:<42}{}",
                best.mb_s,
                best.strategy.to_string(),
                ranking.join("  >  ")
            );
        }
        println!();
    }
    println!("Paper §9: deposits on the T3D, fetch on the T3E for even strides,");
    println!("pull-only on the 8400 — and packing never pays off on any of them.");
}
