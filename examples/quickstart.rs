//! Quickstart: measure a few memory-system bandwidths on the three
//! machines and let the cost model pick a transfer strategy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gasnub::core::cost::CostModel;
use gasnub::core::sweep::Grid;
use gasnub::machines::{Dec8400, Machine, MeasureLimits, T3d, T3e};

fn main() {
    let mut machines: Vec<Box<dyn Machine>> = vec![
        Box::new(Dec8400::new()),
        Box::new(T3d::new()),
        Box::new(T3e::new()),
    ];

    println!("== Local load bandwidth (MB/s), 8 MB working set ==");
    println!("{:<22}{:>12}{:>12}", "machine", "stride 1", "stride 16");
    for m in &mut machines {
        m.set_limits(MeasureLimits::fast());
        let contig = m.local_load(8 << 20, 1).mb_s;
        let strided = m.local_load(8 << 20, 16).mb_s;
        println!("{:<22}{:>12.0}{:>12.0}", m.name(), contig, strided);
    }

    println!("\n== Remote transfer bandwidth (MB/s), 8 MB working set ==");
    println!("{:<22}{:>14}{:>14}", "machine", "fetch s16", "deposit s16");
    for m in &mut machines {
        let fetch = m.remote_fetch(8 << 20, 16).map(|r| r.mb_s);
        let deposit = m.remote_deposit(8 << 20, 16).map(|r| r.mb_s);
        let fmt = |v: Option<f64>| v.map(|v| format!("{v:.0}")).unwrap_or_else(|| "n/a".into());
        println!("{:<22}{:>14}{:>14}", m.name(), fmt(fetch), fmt(deposit));
    }

    println!("\n== Cheapest way to move 1M words at stride 16 (the compiler's question) ==");
    for m in &mut machines {
        let model = CostModel::characterize(m.as_mut(), &Grid::copy_strides(), 32 << 20);
        let best = model.best(1 << 20, 16);
        println!(
            "{:<22}{} ({:.0} MB/s, {:.1} ms)",
            m.name(),
            best.strategy,
            best.mb_s,
            best.us / 1000.0
        );
    }
}
