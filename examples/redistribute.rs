//! HPF array redistribution (BLOCK ↔ CYCLIC) priced by the measured cost
//! models: the best transfer style flips with the direction, because the
//! remote-side access pattern flips.
//!
//! ```text
//! cargo run --release --example redistribute
//! ```

use gasnub::machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};
use gasnub::shmem::{block_to_cyclic, cyclic_to_block, MeasuredCost, Pe, RedistStyle, ShmemCtx};

/// Runs one redistribution of `n` words on a 4-PE machine and returns the
/// max per-PE communication time in milliseconds.
fn run(machine: MachineId, to_cyclic: bool, style: RedistStyle, n: usize) -> f64 {
    let boxed: Box<dyn Machine> = match machine {
        MachineId::Dec8400 => Box::new(Dec8400::new()),
        MachineId::CrayT3d => Box::new(T3d::new()),
        MachineId::CrayT3e => Box::new(T3e::new()),
        MachineId::Custom => unreachable!("only the paper's machines are compared here"),
    };
    let cost = MeasuredCost::new(boxed);
    let clock = {
        use gasnub::shmem::TransferCost;
        cost.clock_mhz()
    };
    let mut ctx = ShmemCtx::new(4, 2 * n / 4 + n, cost);
    // Fill the source layout.
    for pe in 0..4 {
        for w in 0..n / 4 {
            ctx.heap_mut().local_mut(Pe(pe))[w] = (pe * (n / 4) + w) as f64;
        }
    }
    if to_cyclic {
        block_to_cyclic(&mut ctx, style, n / 4, 0, n);
    } else {
        cyclic_to_block(&mut ctx, style, n / 4, 0, n);
    }
    let max_comm = (0..4).map(|p| ctx.comm_cycles(Pe(p))).fold(0.0, f64::max);
    max_comm / clock / 1000.0
}

fn main() {
    // Keep the machine limits small; MeasuredCost probes internally.
    let _ = MeasureLimits::fast();
    let n = 1 << 20; // 8 MB array

    println!("HPF redistribution of a 1M-word array on 4 PEs (max per-PE comm time, ms):\n");
    println!(
        "{:<12}{:>22}{:>22}{:>22}{:>22}",
        "machine",
        "block->cyclic push",
        "block->cyclic pull",
        "cyclic->block push",
        "cyclic->block pull"
    );
    for id in [MachineId::CrayT3d, MachineId::Dec8400, MachineId::CrayT3e] {
        let bc_push = run(id, true, RedistStyle::Push, n);
        let bc_pull = run(id, true, RedistStyle::Pull, n);
        let cb_push = run(id, false, RedistStyle::Push, n);
        let cb_pull = run(id, false, RedistStyle::Pull, n);
        println!(
            "{:<12}{:>22.1}{:>22.1}{:>22.1}{:>22.1}",
            id.label(),
            bc_push,
            bc_pull,
            cb_push,
            cb_pull
        );
    }
    println!(
        "\nblock->cyclic deposits land contiguously at the target (cheap remote side);\n\
         cyclic->block reverses the pattern — the measured cost model flips its choice."
    );
}
