//! Characterize a machine that never existed: a "T3D with a big L2" —
//! the methodology applied to a design question instead of a data sheet.
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use gasnub::core::report::{machine_report, ReportOptions};
use gasnub::machines::custom::CustomMachineBuilder;
use gasnub::machines::{Machine, MeasureLimits};
use gasnub::memsim::cache::{AllocatePolicy, CacheConfig, WritePolicy};
use gasnub::memsim::hierarchy::LevelConfig;
use gasnub::memsim::stream::StreamConfig;

fn main() {
    // Start from the T3D node and graft a 512 KB L2 behind its L1 — the
    // design question the paper's §7.3 raises implicitly: would a board
    // cache have fixed the T3D's large-FFT falloff?
    let mut node = gasnub::machines::params::t3d_node();
    node.name = "T3D + 512 KB L2 (what-if)".to_string();
    // The L1's fill cost was the DRAM interface's; refilling from a nearby
    // SRAM L2 is much faster.
    node.hierarchy.levels[0].fill_cycles = 5.0;
    node.hierarchy.levels[0].streamed_fill_cycles = 5.0;
    node.hierarchy.levels.push(LevelConfig {
        cache: CacheConfig {
            name: "L2".to_string(),
            capacity_bytes: 512 << 10,
            line_bytes: 64,
            associativity: 4,
            write_policy: WritePolicy::WriteBack,
            allocate_policy: AllocatePolicy::ReadWriteAllocate,
        },
        fill_cycles: 10.0,
        streamed_fill_cycles: 5.0,
        stream: Some(StreamConfig {
            slots: 2,
            train_length: 2,
        }),
        write_back_cycles: 8.0,
    });

    let mut what_if = CustomMachineBuilder::new("T3D+L2", node)
        .limits(MeasureLimits::fast())
        .build()
        .expect("valid design");

    // Compare against the real T3D at an FFT-row-sized working set (64 KB:
    // a 4096-point complex row).
    let mut real = gasnub::machines::T3d::new();
    real.set_limits(MeasureLimits::fast());
    let ws = 64 << 10;
    println!("64 KB working set (a 4096-point complex FFT row):");
    println!(
        "  real T3D : {:>6.0} MB/s contiguous, {:>6.0} MB/s strided",
        real.local_load(ws, 1).mb_s,
        real.local_load(ws, 16).mb_s
    );
    println!(
        "  T3D + L2 : {:>6.0} MB/s contiguous, {:>6.0} MB/s strided",
        what_if.local_load(ws, 1).mb_s,
        what_if.local_load(ws, 16).mb_s
    );
    println!();

    println!("{}", machine_report(&mut what_if, &ReportOptions::quick()));
}
