//! Full memory-system characterization of one machine: every surface the
//! paper draws for it, rendered as terminal tables.
//!
//! ```text
//! cargo run --release --example characterize -- t3e
//! cargo run --release --example characterize -- dec8400 --full
//! ```

use gasnub::core::profile::MachineProfile;
use gasnub::core::sweep::Grid;
use gasnub::machines::{Dec8400, Machine, MeasureLimits, T3d, T3e};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("t3d");
    let full = args.iter().any(|a| a == "--full");

    let mut machine: Box<dyn Machine> = match which {
        "dec8400" => Box::new(Dec8400::new()),
        "t3d" => Box::new(T3d::new()),
        "t3e" => Box::new(T3e::new()),
        other => {
            eprintln!("unknown machine {other:?}; use dec8400 | t3d | t3e");
            std::process::exit(2);
        }
    };

    let (local_grid, remote_grid) = if full {
        machine.set_limits(MeasureLimits::new());
        (Grid::paper_local(), Grid::paper_remote())
    } else {
        machine.set_limits(MeasureLimits::fast());
        (
            Grid {
                strides: vec![1, 2, 4, 8, 16, 64],
                working_sets: Grid::paper_working_sets(16 << 20),
            },
            Grid {
                strides: vec![1, 2, 4, 8, 16, 64],
                working_sets: Grid::paper_working_sets(8 << 20),
            },
        )
    };

    eprintln!(
        "characterizing {} ({} cells per surface) …",
        machine.name(),
        local_grid.cells()
    );
    let profile = MachineProfile::measure(machine.as_mut(), &local_grid, &remote_grid);
    println!("{}", profile.report());
}
