//! Tiered execution: one machine, two backends, per-cell routing.
//!
//! A [`TieredMachine`] pairs a full [`TransferEngine`] with a shared
//! [`AnalyticModel`] and routes every probe by tier:
//!
//! * `Simulate` — everything runs through the simulator (the default CLI
//!   behavior, bit-compatible with pre-tier releases);
//! * `Analytic` — every cell is answered from the model's nearest anchor,
//!   trusted or not (model validation and raw speed);
//! * `Auto` — trusted cells take the closed-form answer, everything else
//!   (transition zones, non-flat windows, unsupported ops aside) simulates.
//!
//! Routing is *forced* to simulation whenever probe side effects matter,
//! regardless of tier: an enabled recorder must observe real component
//! counters, and the `--cold` escape hatch disables every shortcut. Fault
//! plans are kept out of the analytic path one layer up — the CLI
//! downgrades the tier to `sim` whenever a plan is active — so a model is
//! only ever consulted for the healthy installation it calibrated against.

use std::sync::Arc;

use gasnub_machines::cancel::CancelToken;
use gasnub_machines::{
    dispatch, Machine, MachineId, MachineSpec, MeasureLimits, Measurement, ProbeBackend, ProbeOp,
    ProbeOutcome, ProbePath, ProbeRequest, ProbeTier, SpawnEngine, TransferEngine,
};
use gasnub_memsim::SimError;
use gasnub_trace::{CounterSet, Event, Recorder};

use crate::model::{AnalyticModel, Prediction};

/// A spawner producing [`TieredMachine`]s that all share one calibrated
/// [`AnalyticModel`]. Drop-in wherever a [`MachineSpec`] is used as a
/// [`SpawnEngine`] — parallel sweeps get per-thread engines but a single
/// calibration, which keeps checkpoints byte-identical across thread
/// counts.
#[derive(Debug, Clone)]
pub struct TieredSpec {
    spec: MachineSpec,
    model: Arc<AnalyticModel>,
    tier: ProbeTier,
}

impl TieredSpec {
    /// Derives the analytic model from `spec` and binds the default tier
    /// spawned machines start in.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure when the spec cannot build the model's
    /// calibration engine.
    pub fn new(spec: MachineSpec, tier: ProbeTier) -> Result<Self, SimError> {
        let model = Arc::new(AnalyticModel::new(&spec)?);
        Ok(TieredSpec { spec, model, tier })
    }

    /// The underlying machine spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The shared analytic model.
    pub fn model(&self) -> &Arc<AnalyticModel> {
        &self.model
    }

    /// The tier spawned machines start in.
    pub fn tier(&self) -> ProbeTier {
        self.tier
    }
}

impl SpawnEngine for TieredSpec {
    type Engine = TieredMachine;

    fn spawn_engine(&self) -> Result<TieredMachine, SimError> {
        Ok(TieredMachine {
            sim: self.spec.spawn_engine()?,
            model: Arc::clone(&self.model),
            tier: self.tier,
            last_path: ProbePath::Simulated,
        })
    }
}

/// Where a routed probe goes.
enum Route {
    /// Answered without per-cell simulation (`None` = unsupported op).
    Value(Option<Measurement>),
    /// Run the full simulator.
    Sim,
}

/// A [`Machine`] whose probes route between the analytic model and a full
/// simulator engine by tier. See the module docs for the routing rules.
#[derive(Debug)]
pub struct TieredMachine {
    sim: TransferEngine,
    model: Arc<AnalyticModel>,
    tier: ProbeTier,
    /// Which path answered the most recent probe (reported through
    /// [`ProbeOutcome`] and [`TieredMachine::last_path`]).
    last_path: ProbePath,
}

impl TieredMachine {
    /// The shared analytic model.
    pub fn model(&self) -> &Arc<AnalyticModel> {
        &self.model
    }

    /// The tier probes currently route through.
    pub fn tier(&self) -> ProbeTier {
        self.tier
    }

    /// Changes the routing tier for subsequent probes.
    pub fn set_tier(&mut self, tier: ProbeTier) {
        self.tier = tier;
    }

    /// Which path answered the most recent probe.
    pub fn last_path(&self) -> ProbePath {
        self.last_path
    }

    /// Routes one cell. Side effects win over tiers: observed or `--cold`
    /// probes always simulate.
    fn route(&mut self, op: ProbeOp, ws: u64, stride: u64, stride2: u64) -> Route {
        if self.sim.recorder_enabled() || gasnub_memsim::cold_path() {
            self.last_path = ProbePath::Simulated;
            return Route::Sim;
        }
        let limits = self.sim.limits();
        let route = match self.tier {
            ProbeTier::Simulate => Route::Sim,
            ProbeTier::Analytic => {
                Route::Value(self.model.predict_forced(op, ws, stride, stride2, limits))
            }
            ProbeTier::Auto => match self.model.predict(op, ws, stride, stride2, limits) {
                Prediction::Trusted(m) => Route::Value(Some(m)),
                Prediction::Unsupported => Route::Value(None),
                Prediction::Untrusted => Route::Sim,
            },
        };
        self.last_path = match route {
            Route::Value(_) => ProbePath::Analytic,
            Route::Sim => ProbePath::Simulated,
        };
        route
    }
}

impl Machine for TieredMachine {
    fn id(&self) -> MachineId {
        self.sim.id()
    }

    fn name(&self) -> String {
        self.sim.name()
    }

    fn label(&self) -> String {
        self.sim.label()
    }

    fn clock_mhz(&self) -> f64 {
        self.sim.clock_mhz()
    }

    fn limits(&self) -> MeasureLimits {
        self.sim.limits()
    }

    fn set_limits(&mut self, limits: MeasureLimits) {
        self.sim.set_limits(limits);
    }

    fn local_load(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        match self.route(ProbeOp::LocalLoad, ws_bytes, stride, 0) {
            Route::Value(Some(m)) => m,
            // Local probes are universally supported; an (impossible)
            // analytic refusal still answers rather than panicking.
            Route::Value(None) | Route::Sim => self.sim.local_load(ws_bytes, stride),
        }
    }

    fn local_store(&mut self, ws_bytes: u64, stride: u64) -> Measurement {
        match self.route(ProbeOp::LocalStore, ws_bytes, stride, 0) {
            Route::Value(Some(m)) => m,
            Route::Value(None) | Route::Sim => self.sim.local_store(ws_bytes, stride),
        }
    }

    fn local_copy(&mut self, ws_bytes: u64, load_stride: u64, store_stride: u64) -> Measurement {
        match self.route(ProbeOp::LocalCopy, ws_bytes, load_stride, store_stride) {
            Route::Value(Some(m)) => m,
            Route::Value(None) | Route::Sim => {
                self.sim.local_copy(ws_bytes, load_stride, store_stride)
            }
        }
    }

    fn local_gather(&mut self, ws_bytes: u64) -> Measurement {
        match self.route(ProbeOp::LocalGather, ws_bytes, 0, 0) {
            Route::Value(Some(m)) => m,
            Route::Value(None) | Route::Sim => self.sim.local_gather(ws_bytes),
        }
    }

    fn remote_load(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement> {
        match self.route(ProbeOp::RemoteLoad, ws_bytes, stride, 0) {
            Route::Value(v) => v,
            Route::Sim => self.sim.remote_load(ws_bytes, stride),
        }
    }

    fn remote_fetch(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement> {
        match self.route(ProbeOp::RemoteFetch, ws_bytes, stride, 0) {
            Route::Value(v) => v,
            Route::Sim => self.sim.remote_fetch(ws_bytes, stride),
        }
    }

    fn remote_deposit(&mut self, ws_bytes: u64, stride: u64) -> Option<Measurement> {
        match self.route(ProbeOp::RemoteDeposit, ws_bytes, stride, 0) {
            Route::Value(v) => v,
            Route::Sim => self.sim.remote_deposit(ws_bytes, stride),
        }
    }

    fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.sim.set_recorder(recorder);
    }

    fn take_counters(&mut self) -> Option<CounterSet> {
        self.sim.take_counters()
    }

    fn drain_events(&mut self) -> Vec<Event> {
        self.sim.drain_events()
    }

    fn set_cancel_token(&mut self, token: CancelToken) {
        self.sim.set_cancel_token(token);
    }
}

impl ProbeBackend for TieredMachine {
    /// Honors the *request's* tier (the machine's own tier is only the
    /// default for direct [`Machine`] calls) and reports which path
    /// actually answered.
    fn probe(&mut self, req: &ProbeRequest) -> Result<ProbeOutcome, SimError> {
        let prev = self.tier;
        self.tier = req.tier;
        let answered = dispatch(self, req);
        self.tier = prev;
        Ok(ProbeOutcome {
            measurement: answered.measurement,
            path: self.last_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(spec: MachineSpec) -> MachineSpec {
        spec.with_limits(MeasureLimits::fast())
    }

    #[test]
    fn sim_tier_is_bit_identical_to_a_plain_engine() {
        let spec = fast(MachineSpec::t3d());
        let tiered = TieredSpec::new(spec.clone(), ProbeTier::Simulate).unwrap();
        let mut a = tiered.spawn_engine().unwrap();
        let mut b = spec.spawn_engine().unwrap();
        let x = a.local_load(512 << 10, 8);
        let y = b.local_load(512 << 10, 8);
        assert_eq!(x.cycles.to_bits(), y.cycles.to_bits());
        assert_eq!(a.last_path(), ProbePath::Simulated);
    }

    #[test]
    fn auto_tier_answers_trusted_cells_analytically() {
        let spec = fast(MachineSpec::t3e());
        let tiered = TieredSpec::new(spec, ProbeTier::Auto).unwrap();
        let mut m = tiered.spawn_engine().unwrap();
        // Mid-L1 cell on a machine with generous plateaus.
        let v = m.local_load(2 << 10, 1);
        assert!(v.mb_s > 0.0);
        assert_eq!(m.last_path(), ProbePath::Analytic);
    }

    #[test]
    fn requests_override_the_machine_tier() {
        let spec = fast(MachineSpec::t3e());
        let tiered = TieredSpec::new(spec, ProbeTier::Simulate).unwrap();
        let mut m = tiered.spawn_engine().unwrap();
        let req = ProbeRequest::new(ProbeOp::LocalLoad, 2 << 10, 1)
            .with_limits(MeasureLimits::fast())
            .with_tier(ProbeTier::Analytic);
        let out = m.probe(&req).unwrap();
        assert_eq!(out.path, ProbePath::Analytic);
        assert_eq!(m.tier(), ProbeTier::Simulate, "machine default restored");
    }

    #[test]
    fn recorder_forces_simulation_in_every_tier() {
        let spec = fast(MachineSpec::t3e());
        let tiered = TieredSpec::new(spec, ProbeTier::Analytic).unwrap();
        let mut m = tiered.spawn_engine().unwrap();
        m.set_recorder(Box::new(gasnub_trace::RingRecorder::new(4)));
        let _ = m.local_load(2 << 10, 1);
        assert_eq!(m.last_path(), ProbePath::Simulated);
        assert!(m.take_counters().is_some(), "observed probes harvest");
    }

    #[test]
    fn unsupported_ops_stay_unsupported_across_tiers() {
        let spec = fast(MachineSpec::dec8400());
        for tier in [ProbeTier::Auto, ProbeTier::Analytic, ProbeTier::Simulate] {
            let tiered = TieredSpec::new(spec.clone(), tier).unwrap();
            let mut m = tiered.spawn_engine().unwrap();
            // "The DEC 8400 does not have support for pushing data into
            // memory or caches of a remote processor."
            assert!(m.remote_deposit(1 << 20, 1).is_none(), "tier {tier:?}");
        }
    }

    #[test]
    fn spawned_machines_share_one_calibration() {
        let spec = fast(MachineSpec::t3d());
        let tiered = TieredSpec::new(spec, ProbeTier::Auto).unwrap();
        let mut a = tiered.spawn_engine().unwrap();
        let mut b = tiered.spawn_engine().unwrap();
        let x = a.local_load(2 << 10, 2);
        let count = tiered.model().anchor_count();
        let y = b.local_load(2 << 10, 2);
        assert_eq!(x.cycles.to_bits(), y.cycles.to_bits());
        assert_eq!(
            tiered.model().anchor_count(),
            count,
            "second machine reuses the first's anchors"
        );
    }
}
