#![warn(missing_docs)]

//! # gasnub-analytic
//!
//! An ECM-style closed-form bandwidth model ([Treibig & Hager,
//! arXiv:0905.0792]) derived automatically from any
//! [`gasnub_machines::MachineSpec`], and the tiered dispatch that wires it
//! in as a fast path beside the cycle-accounting simulator.
//!
//! The paper's characterization surfaces are plateau functions: per-level
//! bandwidths, flat in the working set wherever one hierarchy level
//! dominates, with stride-dependent effective line utilization selecting
//! the plateau height. [`AnalyticModel`] exploits exactly that structure —
//! regime windows derived from the spec's cache capacities, plateau values
//! calibrated by probing the simulator at a handful of anchor working sets
//! per `(op, stride)` class, and an explicit *trust* rule: a cell's answer
//! is only trusted when the simulator demonstrably sits on a flat plateau
//! around it. Trusted cells cost O(1) arithmetic instead of an
//! O(working-set) simulation — the ≥100x fast path behind million-cell
//! sweeps.
//!
//! [`TieredSpec`]/[`TieredMachine`] package the model with a full
//! simulator engine behind the unified probe API
//! ([`gasnub_machines::ProbeRequest`]): the `auto` tier answers trusted
//! cells analytically and simulates the rest; `analytic` forces the model
//! everywhere (validation); `sim` is bit-compatible with pre-tier
//! behavior. Fault plans, enabled recorders and the `--cold` escape hatch
//! always route to the simulator.
//!
//! ```rust
//! use gasnub_analytic::TieredSpec;
//! use gasnub_machines::{Machine, MachineSpec, MeasureLimits, ProbeTier, SpawnEngine};
//!
//! let spec = MachineSpec::t3e().with_limits(MeasureLimits::fast());
//! let tiered = TieredSpec::new(spec, ProbeTier::Auto).unwrap();
//! let mut machine = tiered.spawn_engine().unwrap();
//! // In-L1 cell: answered from the calibrated plateau, no simulation.
//! let bw = machine.local_load(2 << 10, 1).mb_s;
//! assert!(bw > 0.0);
//! ```

pub mod model;
pub mod tiered;

pub use model::{AnalyticModel, Prediction, DEFAULT_TOLERANCE};
pub use tiered::{TieredMachine, TieredSpec};
