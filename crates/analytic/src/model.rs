//! The closed-form bandwidth model and its calibration machinery.
//!
//! ## Model shape
//!
//! Following the ECM ansatz (Treibig & Hager), a bandwidth-limited strided
//! kernel's throughput is a *plateau function* of the working set: flat
//! wherever one hierarchy level dominates, with transitions pinned to the
//! cache capacities. The gasnub simulator's surfaces have exactly this
//! shape by construction — within a regime the hit ratio, stream-buffer
//! state and DRAM row behavior are independent of the working set — so the
//! model is a per-`(op, stride)` step function over working-set *regimes*
//! rather than a curve over cells.
//!
//! ## Derivation from the spec
//!
//! The **structure** comes straight from the [`MachineSpec`]: each cache
//! level with capacity `c_i` contributes a trust window
//! `[max(512, 4·c_{i-1}), c_i / 2]` (safely inside the regime, away from
//! both transition shoulders), and everything past `4·c_top` is the memory
//! regime. The **plateau values** are calibrated, not guessed: the model
//! probes the cycle-accounting simulator at up to three *anchor* working
//! sets per window (the edges plus a power-of-two geometric mid) and at a
//! lazily-extended ×4 ladder through the memory regime. Anchor results are
//! memoized per `(op, strides, working set, measurement caps)`, so a full
//! reference-grid sweep costs a handful of simulated probes per
//! `(op, stride)` class and every further cell is O(1) arithmetic.
//!
//! ## Trust
//!
//! A prediction is [`Prediction::Trusted`] only when the simulator itself
//! *demonstrates* the plateau: all anchors of the cell's window must agree
//! pairwise within half the machine's calibration tolerance. A cell in a
//! transition zone (between windows), or whose window turns out not to be
//! flat (bank-conflict ripples, stride/associativity aliasing), is
//! [`Prediction::Untrusted`] and falls back to full simulation in the
//! `Auto` tier. This makes the agreement guarantee structural: trusting a
//! cell requires the ground truth to be flat around it.

use std::collections::HashMap;
use std::sync::Mutex;

use gasnub_machines::{
    dispatch, words_of, MachineSpec, MeasureLimits, Measurement, ProbeOp, ProbeRequest,
    SpawnEngine, TransferEngine,
};
use gasnub_memsim::{SimError, WORD_BYTES};

/// Trust tolerance when the spec does not set a calibration tolerance.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// Fraction of the machine tolerance the anchors must agree within for a
/// window to be trusted. Half the budget is spent proving flatness; the
/// other half absorbs the residual between the nearest anchor and the cell.
const TRUST_FRACTION: f64 = 0.5;

/// Smallest working set any trust window covers, in bytes.
const MIN_WS: u64 = 512;

/// A working-set regime the model predicts inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    lo: u64,
    /// Upper edge; `None` for the unbounded memory regime.
    hi: Option<u64>,
}

/// One calibrated sample: the simulator's bandwidth for an `(op, strides,
/// working set, caps)` point, or `None` when the machine does not support
/// the op (support never depends on the cell).
type AnchorKey = (ProbeOp, u64, u64, u64, u64, u64);

/// Mutable calibration state behind the model's lock: the probing engine
/// plus every anchor measured so far. Anchor values are pure functions of
/// the spec and the key (the simulator's determinism invariant), so the
/// cache only avoids recomputation — it never changes an answer, which is
/// what keeps multi-threaded sweeps byte-identical regardless of which
/// thread populates an entry first.
struct CalState {
    engine: TransferEngine,
    anchors: HashMap<AnchorKey, Option<f64>>,
}

/// The verdict of the model for one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prediction {
    /// The cell sits on a demonstrated plateau; the measurement is the
    /// closed-form answer.
    Trusted(Measurement),
    /// The cell is in a transition zone or its window is not flat — the
    /// caller must simulate.
    Untrusted,
    /// The machine does not support the operation (e.g. deposits on the
    /// 8400); matches the simulator returning `None`.
    Unsupported,
}

/// An ECM-style analytic bandwidth model derived from a [`MachineSpec`]
/// and calibrated against the spec's own simulator.
///
/// Cheap to share: clone the surrounding `Arc` and every spawned tiered
/// machine reuses one calibration (see `CalState` for why sharing cannot
/// perturb results).
pub struct AnalyticModel {
    spec: MachineSpec,
    clock_mhz: f64,
    /// Cache capacities, innermost first.
    caps: Vec<u64>,
    tolerance: f64,
    cal: Mutex<CalState>,
}

impl std::fmt::Debug for AnalyticModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyticModel")
            .field("label", &self.spec.label())
            .field("caps", &self.caps)
            .field("tolerance", &self.tolerance)
            .field("anchors", &self.anchor_count())
            .finish()
    }
}

impl AnalyticModel {
    /// Derives a model from `spec`: regime structure from the cache
    /// capacities, trust budget from the spec's calibration tolerance
    /// (or [`DEFAULT_TOLERANCE`]).
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure when the spec cannot build its
    /// calibration engine.
    pub fn new(spec: &MachineSpec) -> Result<Self, SimError> {
        let engine = spec.spawn_engine()?;
        let caps = spec
            .node_config()
            .hierarchy
            .levels
            .iter()
            .map(|level| level.cache.capacity_bytes)
            .collect();
        Ok(AnalyticModel {
            spec: spec.clone(),
            clock_mhz: spec.clock_mhz(),
            caps,
            tolerance: spec.calibration_tolerance().unwrap_or(DEFAULT_TOLERANCE),
            cal: Mutex::new(CalState {
                engine,
                anchors: HashMap::new(),
            }),
        })
    }

    /// The spec this model was derived from.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The relative disagreement budget trusted predictions stay within.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Number of anchor cells calibrated (simulated) so far.
    pub fn anchor_count(&self) -> usize {
        let state = match self.cal.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.anchors.len()
    }

    /// The model's trust windows as `(lo, hi)` byte ranges (`hi = None`
    /// for the unbounded memory regime). Exposed for docs and tests; the
    /// gaps between windows are the tiering decision boundary.
    pub fn windows(&self) -> Vec<(u64, Option<u64>)> {
        let mut out: Vec<(u64, Option<u64>)> = self
            .cache_windows()
            .into_iter()
            .map(|w| (w.lo, w.hi))
            .collect();
        out.push((self.memory_floor(), None));
        out
    }

    /// Trust windows inside the cache hierarchy. A level squeezed between
    /// a close-by inner capacity and its own half-capacity can yield an
    /// empty window, which simply isn't offered.
    fn cache_windows(&self) -> Vec<Window> {
        let mut out = Vec::new();
        let mut prev = 0u64;
        for &cap in &self.caps {
            let lo = MIN_WS.max(4 * prev);
            let hi = cap / 2;
            if lo <= hi {
                out.push(Window { lo, hi: Some(hi) });
            }
            prev = cap;
        }
        out
    }

    /// Lower edge of the memory regime: far enough past the outermost
    /// cache that capacity misses dominate.
    fn memory_floor(&self) -> u64 {
        (2 * MIN_WS).max(4 * self.caps.last().copied().unwrap_or(MIN_WS))
    }

    /// Anchor working sets of a bounded window: the edges plus a
    /// power-of-two geometric mid (grid working sets are powers of two, so
    /// a power-of-two mid keeps stride/associativity aliasing congruent
    /// across the window).
    fn window_anchors(w: Window) -> Vec<u64> {
        let hi = w.hi.expect("bounded window");
        let mid = ((w.lo as f64).log2() + (hi as f64).log2()) / 2.0;
        let mid = (mid.round() as u32).min(62);
        let mut anchors = vec![w.lo, (1u64 << mid).clamp(w.lo, hi), hi];
        anchors.sort_unstable();
        anchors.dedup();
        anchors
    }

    /// Anchor working sets of the ×4 memory ladder around `ws`: the
    /// nearest rung in log space plus its neighbors.
    fn ladder_anchors(&self, ws: u64) -> Vec<u64> {
        let floor = self.memory_floor();
        let ratio = (ws.max(floor) as f64) / (floor as f64);
        // log4(ratio), nearest rung.
        let k = (ratio.log2() / 2.0).round().max(0.0) as u32;
        let mut anchors: Vec<u64> = [k.saturating_sub(1), k, k + 1]
            .into_iter()
            .map(|k| floor.saturating_mul(4u64.saturating_pow(k)))
            .collect();
        anchors.sort_unstable();
        anchors.dedup();
        anchors
    }

    /// The anchors governing `ws`, or `None` when `ws` falls in a
    /// transition zone between regimes (→ untrusted).
    fn anchors_for(&self, ws: u64) -> Option<Vec<u64>> {
        for w in self.cache_windows() {
            if ws >= w.lo && ws <= w.hi.unwrap_or(u64::MAX) {
                return Some(Self::window_anchors(w));
            }
        }
        if ws >= self.memory_floor() {
            return Some(self.ladder_anchors(ws));
        }
        None
    }

    /// Every candidate anchor near `ws`, transition zones included — the
    /// forced-tier lookup set.
    fn all_anchors(&self, ws: u64) -> Vec<u64> {
        let mut anchors: Vec<u64> = self
            .cache_windows()
            .into_iter()
            .flat_map(Self::window_anchors)
            .collect();
        anchors.extend(self.ladder_anchors(ws));
        anchors.sort_unstable();
        anchors.dedup();
        anchors
    }

    /// Log-space distance between two working sets.
    fn log_dist(a: u64, b: u64) -> f64 {
        ((a.max(1) as f64).log2() - (b.max(1) as f64).log2()).abs()
    }

    /// Simulates (or recalls) the anchor `(op, strides, ws)` under `limits`.
    fn anchor_mb_s(
        &self,
        op: ProbeOp,
        stride: u64,
        stride2: u64,
        ws: u64,
        limits: MeasureLimits,
    ) -> Option<f64> {
        let key = (
            op,
            stride,
            stride2,
            ws,
            limits.max_measure_words,
            limits.max_prime_words,
        );
        let mut state = match self.cal.lock() {
            Ok(g) => g,
            // Anchor probes cannot tear the map (single insert per probe);
            // recover like the process-wide memo does.
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(&v) = state.anchors.get(&key) {
            return v;
        }
        let req = ProbeRequest::new(op, ws, stride)
            .with_stride2(stride2)
            .with_limits(limits);
        let value = dispatch(&mut state.engine, &req).mb_s();
        state.anchors.insert(key, value);
        value
    }

    /// Reconstructs a [`Measurement`] for a cell from a plateau bandwidth,
    /// mirroring the simulator's payload accounting (measured words ×
    /// word size).
    fn measurement(&self, ws: u64, limits: MeasureLimits, mb_s: f64) -> Measurement {
        let bytes = limits.measure_words(words_of(ws)) * WORD_BYTES;
        let cycles = if mb_s > 0.0 {
            bytes as f64 * self.clock_mhz / mb_s
        } else {
            0.0
        };
        Measurement::new(bytes, cycles, self.clock_mhz)
    }

    /// Predicts one cell, trusting the answer only on a demonstrated
    /// plateau (see the module docs for the trust rule).
    pub fn predict(
        &self,
        op: ProbeOp,
        ws: u64,
        stride: u64,
        stride2: u64,
        limits: MeasureLimits,
    ) -> Prediction {
        let Some(anchors) = self.anchors_for(ws) else {
            return Prediction::Untrusted;
        };
        let mut values = Vec::with_capacity(anchors.len());
        for &a in &anchors {
            match self.anchor_mb_s(op, stride, stride2, a, limits) {
                Some(v) => values.push(v),
                // Support is cell-independent: one unsupported anchor
                // means the op is unsupported everywhere.
                None => return Prediction::Unsupported,
            }
        }
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        if min <= 0.0 || max / min - 1.0 > self.tolerance * TRUST_FRACTION {
            return Prediction::Untrusted;
        }
        let nearest = anchors
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                Self::log_dist(**a, ws)
                    .partial_cmp(&Self::log_dist(**b, ws))
                    .expect("finite log distances")
            })
            .map(|(i, _)| values[i])
            .expect("windows always carry anchors");
        Prediction::Trusted(self.measurement(ws, limits, nearest))
    }

    /// Predicts one cell unconditionally from the nearest anchor,
    /// transition zones and non-flat windows included — the forced
    /// `analytic` tier. `None` when the op is unsupported.
    pub fn predict_forced(
        &self,
        op: ProbeOp,
        ws: u64,
        stride: u64,
        stride2: u64,
        limits: MeasureLimits,
    ) -> Option<Measurement> {
        let anchors = self.all_anchors(ws);
        let nearest = anchors
            .into_iter()
            .min_by(|a, b| {
                Self::log_dist(*a, ws)
                    .partial_cmp(&Self::log_dist(*b, ws))
                    .expect("finite log distances")
            })
            .expect("the memory ladder is never empty");
        let mb_s = self.anchor_mb_s(op, stride, stride2, nearest, limits)?;
        Some(self.measurement(ws, limits, mb_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_machines::Machine;

    #[test]
    fn windows_stay_inside_regimes_and_leave_transition_gaps() {
        let model = AnalyticModel::new(&MachineSpec::dec8400()).unwrap();
        // 8K L1 / 96K L2 / 4M L3 → windows [512,4K], [32K,48K], [384K,2M],
        // memory floor 16M.
        let windows = model.windows();
        assert_eq!(
            windows,
            vec![
                (512, Some(4 << 10)),
                (32 << 10, Some(48 << 10)),
                (384 << 10, Some(2 << 20)),
                (16 << 20, None),
            ]
        );
        // 8M sits in the L3→memory transition: untrusted by construction.
        assert!(model.anchors_for(8 << 20).is_none());
        assert!(model.anchors_for(2 << 10).is_some());
    }

    #[test]
    fn trusted_predictions_match_the_simulator_on_anchor_cells() {
        let spec = MachineSpec::t3d();
        let model = AnalyticModel::new(&spec).unwrap();
        let limits = MeasureLimits::fast();
        // The memory floor is itself an anchor: the prediction must be the
        // simulator's own value there.
        let ws = 32 << 10;
        match model.predict(ProbeOp::LocalLoad, ws, 1, 0, limits) {
            Prediction::Trusted(m) => {
                let mut sim = spec.spawn_engine().unwrap();
                sim.set_limits(limits);
                let truth = sim.local_load(ws, 1);
                let rel = (m.mb_s - truth.mb_s).abs() / truth.mb_s;
                assert!(rel < 1e-9, "anchor cell must be exact, got rel {rel}");
            }
            other => panic!("expected a trusted in-window prediction, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_ops_are_reported_not_guessed() {
        let model = AnalyticModel::new(&MachineSpec::t3d()).unwrap();
        // Pure remote loads are an SMP-only probe.
        assert_eq!(
            model.predict(ProbeOp::RemoteLoad, 32 << 10, 1, 0, MeasureLimits::fast()),
            Prediction::Unsupported
        );
        assert!(model
            .predict_forced(ProbeOp::RemoteLoad, 32 << 10, 1, 0, MeasureLimits::fast())
            .is_none());
    }

    #[test]
    fn forced_predictions_cover_transition_zones() {
        let model = AnalyticModel::new(&MachineSpec::dec8400()).unwrap();
        let forced = model
            .predict_forced(ProbeOp::LocalLoad, 8 << 20, 1, 0, MeasureLimits::fast())
            .expect("local loads always supported");
        assert!(forced.mb_s > 0.0);
    }

    #[test]
    fn calibration_is_shared_and_counted() {
        let model = AnalyticModel::new(&MachineSpec::t3e()).unwrap();
        assert_eq!(model.anchor_count(), 0);
        let _ = model.predict(ProbeOp::LocalLoad, 2 << 10, 1, 0, MeasureLimits::fast());
        let after_first = model.anchor_count();
        assert!(after_first > 0);
        // Same window, different cell: no new anchors.
        let _ = model.predict(ProbeOp::LocalLoad, 3 << 10, 1, 0, MeasureLimits::fast());
        assert_eq!(model.anchor_count(), after_first);
    }
}
