//! Benches for the remote-transfer surfaces (figs 2, 4, 5, 7, 8).
//! Plain `std::time::Instant` timing — no external harness.

use std::time::Instant;

use gasnub_bench::figure_by_id;

fn main() {
    for id in ["fig02", "fig04", "fig05", "fig07", "fig08"] {
        let fig = figure_by_id(id).expect("figure exists");
        let out = fig.run(true);
        println!("\n==== {} — {}\n{}", fig.id, fig.title, out.text);
        let iters = 10u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(fig.run(true));
        }
        println!("{id}  {:?}/iter", start.elapsed() / iters);
    }
}
