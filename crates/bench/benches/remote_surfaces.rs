//! Criterion benches for the remote-transfer surfaces (figs 2, 4, 5, 7, 8).

use criterion::{criterion_group, criterion_main, Criterion};
use gasnub_bench::figure_by_id;

fn bench_remote_surfaces(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_surfaces");
    group.sample_size(10);
    for id in ["fig02", "fig04", "fig05", "fig07", "fig08"] {
        let fig = figure_by_id(id).expect("figure exists");
        let out = fig.run(true);
        println!("\n==== {} — {}\n{}", fig.id, fig.title, out.text);
        group.bench_function(id, |b| b.iter(|| fig.run(true)));
    }
    group.finish();
}

criterion_group!(benches, bench_remote_surfaces);
criterion_main!(benches);
