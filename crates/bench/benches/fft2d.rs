//! Criterion benches for the 2D-FFT application kernel (figs 15-17).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gasnub_bench::figure_by_id;
use gasnub_fft::run_benchmark;
use gasnub_machines::MachineId;

fn bench_fft_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2d_figures");
    group.sample_size(10);
    for id in ["fig15", "fig16", "fig17"] {
        let fig = figure_by_id(id).expect("figure exists");
        let out = fig.run(true);
        println!("\n==== {} — {}\n{}", fig.id, fig.title, out.text);
        group.bench_function(id, |b| b.iter(|| fig.run(true)));
    }
    group.finish();
}

fn bench_single_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2d_single");
    group.sample_size(10);
    for machine in [MachineId::CrayT3d, MachineId::Dec8400, MachineId::CrayT3e] {
        group.bench_with_input(
            BenchmarkId::new("n256_4pe", machine.label()),
            &machine,
            |b, &m| b.iter(|| run_benchmark(m, 256, 4)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fft_figures, bench_single_runs);
criterion_main!(benches);
