//! Benches for the 2D-FFT application kernel (figs 15-17).
//! Plain `std::time::Instant` timing — no external harness.

use std::time::Instant;

use gasnub_bench::figure_by_id;
use gasnub_fft::run_benchmark;
use gasnub_machines::MachineId;

fn main() {
    for id in ["fig15", "fig16", "fig17"] {
        let fig = figure_by_id(id).expect("figure exists");
        let out = fig.run(true);
        println!("\n==== {} — {}\n{}", fig.id, fig.title, out.text);
        let iters = 10u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(fig.run(true));
        }
        println!("{id}  {:?}/iter", start.elapsed() / iters);
    }

    for machine in [MachineId::CrayT3d, MachineId::Dec8400, MachineId::CrayT3e] {
        let iters = 10u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(run_benchmark(machine, 256, 4));
        }
        println!(
            "fft2d_single/n256_4pe/{}  {:?}/iter",
            machine.label(),
            start.elapsed() / iters
        );
    }
}
