//! Bench comparing sequential and parallel execution of a full paper-grid
//! sweep. Plain `std::time::Instant` timing — no external harness.
//!
//! Both runs spawn a fresh engine per grid cell from the same
//! `MachineSpec`, so the surfaces are bit-identical and the only variable
//! is how many workers the cells are spread across. The speedup scales
//! with the host's cores; on a single-core host it is ~1x by construction.

use std::time::Instant;

use gasnub_core::{auto_threads, sweep_surface_par, Grid, SweepOp};
use gasnub_machines::{MachineSpec, MeasureLimits};

fn main() {
    let workers = auto_threads();
    let grid = Grid::paper_remote();
    for (label, spec, op) in [
        ("t3d/deposit", MachineSpec::t3d(), SweepOp::RemoteDeposit),
        ("t3e/fetch", MachineSpec::t3e(), SweepOp::RemoteFetch),
    ] {
        let spec = spec.with_limits(MeasureLimits::fast());
        let t0 = Instant::now();
        let sequential = sweep_surface_par(&spec, op, &grid, 1)
            .expect("spec builds")
            .expect("op supported");
        let seq = t0.elapsed();
        let t1 = Instant::now();
        let parallel = sweep_surface_par(&spec, op, &grid, workers)
            .expect("spec builds")
            .expect("op supported");
        let par = t1.elapsed();
        assert_eq!(sequential, parallel, "parallel sweep must be bit-identical");
        println!(
            "sweep_parallel/{label}  {} cells  1 thread: {seq:?}  {workers} thread{}: {par:?}  \
             speedup {:.2}x (surfaces bit-identical)",
            grid.cells(),
            if workers == 1 { "" } else { "s" },
            seq.as_secs_f64() / par.as_secs_f64()
        );
    }
}
