//! Criterion bench for the ablation suite (DESIGN.md's design-choice table).

use criterion::{criterion_group, criterion_main, Criterion};
use gasnub_bench::ablations;

fn bench_ablations(c: &mut Criterion) {
    let all = ablations::run_all();
    println!("\n==== ablations\n{}", ablations::render(&all));
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("run_all", |b| b.iter(ablations::run_all));
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
