//! Bench for the ablation suite (DESIGN.md's design-choice table).
//! Plain `std::time::Instant` timing — no external harness.

use std::time::Instant;

use gasnub_bench::ablations;

fn main() {
    let all = ablations::run_all();
    println!("\n==== ablations\n{}", ablations::render(&all));
    let iters = 10u32;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(ablations::run_all());
    }
    println!("ablations/run_all  {:?}/iter", start.elapsed() / iters);
}
