//! Criterion benches for the local-load surfaces (figs 1, 3, 6).
//!
//! Each iteration regenerates the figure's data series on a reduced grid
//! and reports the series once, so `cargo bench` both times the simulator
//! and prints the reproduced rows.

use criterion::{criterion_group, criterion_main, Criterion};
use gasnub_bench::figure_by_id;

fn bench_local_surfaces(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_surfaces");
    group.sample_size(10);
    for id in ["fig01", "fig03", "fig06"] {
        let fig = figure_by_id(id).expect("figure exists");
        // Print the series once per figure so bench output carries the data.
        let out = fig.run(true);
        println!("\n==== {} — {}\n{}", fig.id, fig.title, out.text);
        group.bench_function(id, |b| b.iter(|| fig.run(true)));
    }
    group.finish();
}

criterion_group!(benches, bench_local_surfaces);
criterion_main!(benches);
