//! Benches for the local-load surfaces (figs 1, 3, 6).
//!
//! Each run regenerates the figure's data series on a reduced grid and
//! reports the series once, so `cargo bench` both times the simulator and
//! prints the reproduced rows. Plain `std::time::Instant` timing.

use std::time::Instant;

use gasnub_bench::figure_by_id;

fn main() {
    for id in ["fig01", "fig03", "fig06"] {
        let fig = figure_by_id(id).expect("figure exists");
        // Print the series once per figure so bench output carries the data.
        let out = fig.run(true);
        println!("\n==== {} — {}\n{}", fig.id, fig.title, out.text);
        let iters = 10u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(fig.run(true));
        }
        println!("{id}  {:?}/iter", start.elapsed() / iters);
    }
}
