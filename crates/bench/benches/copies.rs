//! Criterion benches for the large copy-transfer series (figs 9-14).

use criterion::{criterion_group, criterion_main, Criterion};
use gasnub_bench::figure_by_id;

fn bench_copies(c: &mut Criterion) {
    let mut group = c.benchmark_group("copies");
    group.sample_size(10);
    for id in ["fig09", "fig10", "fig11", "fig12", "fig13", "fig14"] {
        let fig = figure_by_id(id).expect("figure exists");
        let out = fig.run(true);
        println!("\n==== {} — {}\n{}", fig.id, fig.title, out.text);
        group.bench_function(id, |b| b.iter(|| fig.run(true)));
    }
    group.finish();
}

criterion_group!(benches, bench_copies);
criterion_main!(benches);
