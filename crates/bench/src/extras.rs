//! Exhibits beyond the paper's figures: the §9 summary table, the indexed
//! (gather) access class, and the false-sharing experiment of §1.

use gasnub_core::bench::local_gather_curve;
use gasnub_core::compare::Comparison;
use gasnub_core::sweep::Grid;
use gasnub_machines::{Dec8400, Machine, MeasureLimits, T3d, T3e};

fn machines() -> Vec<Box<dyn Machine>> {
    let mut v: Vec<Box<dyn Machine>> = vec![
        Box::new(Dec8400::new()),
        Box::new(T3d::new()),
        Box::new(T3e::new()),
    ];
    for m in &mut v {
        m.set_limits(MeasureLimits::fast());
    }
    v
}

/// The §9 cross-machine summary table.
pub fn comparison_table() -> String {
    let mut ms = machines();
    let c = Comparison::measure(&mut ms, 32 << 20);
    format!(
        "Cross-machine summary, 32 MB working sets (MB/s):\n\n{}",
        c.render()
    )
}

/// Gather (indexed access) curves along the working-set axis.
pub fn gather_curves() -> String {
    let ws = Grid::paper_working_sets(8 << 20);
    let mut out = String::from("Indexed (gather) loads, MB/s by working set:\n\n");
    out.push_str(&format!("{:>10}", "ws"));
    let mut ms = machines();
    for m in &ms {
        out.push_str(&format!("{:>10}", m.id().label()));
    }
    out.push('\n');
    let curves: Vec<Vec<(u64, f64)>> = ms
        .iter_mut()
        .map(|m| local_gather_curve(m.as_mut(), &ws))
        .collect();
    for (i, &w) in ws.iter().enumerate() {
        let human = if w >= 1 << 20 {
            format!("{}M", w >> 20)
        } else if w >= 1 << 10 {
            format!("{}K", w >> 10)
        } else {
            format!("{w}B")
        };
        out.push_str(&format!("{human:>10}"));
        for c in &curves {
            out.push_str(&format!("{:>10.0}", c[i].1));
        }
        out.push('\n');
    }
    out
}

/// 2D-FFT strong scaling: total MFlop/s vs. PE count per machine (the
/// paper's §8 run from four PEs toward machine scale).
pub fn fft_scaling(n: usize) -> String {
    let pes = [1usize, 2, 4, 8, 16];
    let mut out = format!("2D-FFT({n}x{n}) strong scaling, total MFlop/s by PE count:\n\n");
    out.push_str(&format!("{:>8}", "npes"));
    let ids = [
        gasnub_machines::MachineId::CrayT3d,
        gasnub_machines::MachineId::Dec8400,
        gasnub_machines::MachineId::CrayT3e,
    ];
    for id in ids {
        out.push_str(&format!("{:>10}", id.label()));
    }
    out.push('\n');
    for &p in &pes {
        if !n.is_multiple_of(p) {
            continue;
        }
        out.push_str(&format!("{p:>8}"));
        for id in ids {
            let r = gasnub_fft::run_benchmark(id, n, p);
            out.push_str(&format!("{:>10.0}", r.total_mflops));
        }
        out.push('\n');
    }
    out
}

/// §7.3's planned iput rewrite, evaluated: the T3E 2D-FFT with a
/// fetch-based transpose vs. the measured iput transpose.
pub fn t3e_fetch_rewrite(n: usize) -> String {
    use gasnub_fft::dist2d::{run_benchmark_with_style, TransposeStyle};
    use gasnub_machines::MachineId;
    let iput = run_benchmark_with_style(MachineId::CrayT3e, n, 4, TransposeStyle::Deposit);
    let fetch = run_benchmark_with_style(MachineId::CrayT3e, n, 4, TransposeStyle::Fetch);
    format!(
        "T3E 2D-FFT({n}x{n}) transpose primitive (the §7.3 planned rewrite):\n\n\
         {:<22}{:>14}{:>14}\n{:<22}{:>14.0}{:>14.1}\n{:<22}{:>14.0}{:>14.1}\n",
        "primitive",
        "MFlop/s",
        "comm ms",
        "shmem_iput (paper)",
        iput.total_mflops,
        iput.comm_us / 1000.0,
        "fetch rewrite",
        fetch.total_mflops,
        fetch.comm_us / 1000.0,
    )
}

/// The §1 false-sharing experiment on the 8400.
pub fn false_sharing() -> String {
    let mut smp = gasnub_coherence::smp::SnoopingSmp::new(gasnub_machines::params::dec8400_smp())
        .expect("built-in parameters validate");
    let shared = smp.alternating_store_cycles(500, 1);
    let private = smp.alternating_store_cycles(500, 8);
    format!(
        "False sharing on the DEC 8400 (alternating stores by P0/P1):\n\n\
         same 64-byte line : {shared:>8.1} cycles/store\n\
         one line apart    : {private:>8.1} cycles/store\n\
         penalty           : {:>8.1}x\n",
        shared / private
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_table_has_three_machines() {
        let t = comparison_table();
        assert!(t.contains("dec8400") && t.contains("t3d") && t.contains("t3e"));
    }

    #[test]
    fn false_sharing_reports_a_penalty() {
        let t = false_sharing();
        assert!(t.contains("penalty"));
    }
}
