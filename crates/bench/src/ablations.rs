//! Ablation studies: the design choices the paper credits, switched off.
//!
//! Each ablation returns `(with, without)` bandwidth pairs so the harness
//! (and the `ablations` Criterion bench) can print the effect of the
//! mechanism alone.

use gasnub_machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};

/// One ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// Stable identifier.
    pub id: &'static str,
    /// Which machine the mechanism belongs to.
    pub machine: MachineId,
    /// What is switched off.
    pub description: &'static str,
    /// Bandwidth with the mechanism (MB/s).
    pub with_mb_s: f64,
    /// Bandwidth without it (MB/s).
    pub without_mb_s: f64,
}

impl Ablation {
    /// The speedup the mechanism provides.
    pub fn speedup(&self) -> f64 {
        self.with_mb_s / self.without_mb_s
    }
}

fn limits() -> MeasureLimits {
    MeasureLimits {
        max_measure_words: 32 * 1024,
        max_prime_words: 2 * 1024 * 1024,
    }
}

/// Runs every ablation study.
pub fn run_all() -> Vec<Ablation> {
    let mut out = Vec::new();
    let ws = 8 << 20;

    // T3E stream buffers (paper footnote 3: ~120 MB/s without streaming).
    {
        let mut with = T3e::new();
        with.set_limits(limits());
        let mut without = T3e::new_without_streams();
        without.set_limits(limits());
        out.push(Ablation {
            id: "t3e-streams-off",
            machine: MachineId::CrayT3e,
            description: "T3E stream buffers disabled (early test vehicle, footnote 3)",
            with_mb_s: with.local_load(ws, 1).mb_s,
            without_mb_s: without.local_load(ws, 1).mb_s,
        });
    }

    // T3D read-ahead logic (§3.2: "can be turned on/off at program load time").
    {
        let mut with = T3d::new();
        with.set_limits(limits());
        let mut without = T3d::new_without_read_ahead();
        without.set_limits(limits());
        out.push(Ablation {
            id: "t3d-read-ahead-off",
            machine: MachineId::CrayT3d,
            description: "T3D external read-ahead logic disabled",
            with_mb_s: with.local_load(ws, 1).mb_s,
            without_mb_s: without.local_load(ws, 1).mb_s,
        });
    }

    // T3D write-buffer coalescing (§3.2: coalesces into 32-byte entities).
    {
        let mut with = T3d::new();
        with.set_limits(limits());
        let mut without = T3d::new_without_coalescing();
        without.set_limits(limits());
        out.push(Ablation {
            id: "t3d-coalescing-off",
            machine: MachineId::CrayT3d,
            description: "T3D write-back queue coalescing disabled (contiguous deposits)",
            with_mb_s: with.remote_deposit(ws, 1).expect("T3D deposits").mb_s,
            without_mb_s: without.remote_deposit(ws, 1).expect("T3D deposits").mb_s,
        });
    }

    // T3D prefetch FIFO vs blocking remote loads (§3.2).
    {
        let mut with = T3d::new();
        with.set_limits(limits());
        let mut without = T3d::new_with_blocking_fetch();
        without.set_limits(limits());
        out.push(Ablation {
            id: "t3d-blocking-fetch",
            machine: MachineId::CrayT3d,
            description: "T3D prefetch FIFO unused: transparent blocking remote loads",
            with_mb_s: with.remote_fetch(ws, 1).expect("T3D fetch").mb_s,
            without_mb_s: without.remote_fetch(ws, 1).expect("T3D fetch").mb_s,
        });
    }

    // T3D node-pair link sharing (footnote 1: 70 MB/s per PE when shared).
    {
        let mut with = T3d::new();
        with.set_limits(limits());
        let mut without = T3d::new_with_paired_traffic();
        without.set_limits(limits());
        out.push(Ablation {
            id: "t3d-paired-traffic",
            machine: MachineId::CrayT3d,
            description: "both PEs of a T3D node pair communicate simultaneously",
            with_mb_s: with.remote_deposit(ws, 1).expect("T3D deposits").mb_s,
            without_mb_s: without.remote_deposit(ws, 1).expect("T3D deposits").mb_s,
        });
    }

    // 8400 bus burst protocol (§3.1: 2.4 GB/s peak, 1.6 GB/s under the
    // best burst protocol). A single latency-bound consumer barely notices,
    // so the ablation reports the protocol's *ceiling* — the rate the bus
    // sustains for back-to-back line transactions, which is what bounds the
    // four-processor transposes of figs 15-17.
    {
        let bus_on = gasnub_machines::params::dec8400_smp().bus;
        let mut bus_off = bus_on.clone();
        bus_off.burst = false;
        let line = 64;
        out.push(Ablation {
            id: "dec8400-burst-off",
            machine: MachineId::Dec8400,
            description: "DEC 8400 bus burst transfer protocol disabled (line-transaction ceiling)",
            with_mb_s: bus_on.effective_mb_s(line),
            without_mb_s: bus_off.effective_mb_s(line),
        });
    }

    // 8400 L3-blocked communication (§6.1/§9: blocked cache-to-cache
    // transfers beat DRAM-to-DRAM remote copies for strided data).
    {
        let mut m = Dec8400::new();
        m.set_limits(limits());
        let blocked = m.remote_load(2 << 20, 16).expect("8400 pulls").mb_s;
        let unblocked = m.remote_load(32 << 20, 16).expect("8400 pulls").mb_s;
        out.push(Ablation {
            id: "dec8400-blocked-transpose",
            machine: MachineId::Dec8400,
            description: "strided pull from the producer's L3 (blocked) vs from DRAM",
            with_mb_s: blocked,
            without_mb_s: unblocked,
        });
    }

    out
}

/// Renders the ablation table.
pub fn render(ablations: &[Ablation]) -> String {
    let mut out = format!(
        "{:<26}{:>12}{:>12}{:>9}  {}\n",
        "ablation", "with MB/s", "without", "speedup", "description"
    );
    for a in ablations {
        out.push_str(&format!(
            "{:<26}{:>12.1}{:>12.1}{:>8.2}x  {}\n",
            a.id,
            a.with_mb_s,
            a.without_mb_s,
            a.speedup(),
            a.description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mechanism_helps() {
        let all = run_all();
        assert_eq!(all.len(), 7);
        for a in &all {
            assert!(
                a.speedup() > 1.05,
                "{} must show a benefit: {} vs {}",
                a.id,
                a.with_mb_s,
                a.without_mb_s
            );
        }
    }

    #[test]
    fn streams_matter_most_on_the_t3e() {
        let all = run_all();
        let streams = all.iter().find(|a| a.id == "t3e-streams-off").unwrap();
        assert!(
            streams.speedup() > 2.0,
            "stream buffers are worth >2x: {}",
            streams.speedup()
        );
    }

    #[test]
    fn render_mentions_every_id() {
        let all = run_all();
        let text = render(&all);
        for a in &all {
            assert!(text.contains(a.id));
        }
    }
}
