//! One regeneration target per figure of the paper.

use gasnub_core::bench::{
    local_load_surface, remote_deposit_surface, remote_fetch_surface, remote_load_surface,
};
use gasnub_core::surface::Surface;
use gasnub_core::sweep::Grid;
use gasnub_fft::run_benchmark;
use gasnub_machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};

/// The rendered output of one figure: a terminal table and machine-readable
/// CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureOutput {
    /// Aligned text table(s).
    pub text: String,
    /// CSV of the same data.
    pub csv: String,
}

/// One figure of the paper, regenerable on demand.
pub struct Figure {
    /// Stable identifier (`"fig01"` … `"fig17"`).
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub title: &'static str,
    /// What the reproduction asserts about the shape.
    pub expectation: &'static str,
    runner: fn(bool) -> FigureOutput,
}

impl Figure {
    /// Regenerates the figure. `quick` uses reduced grids (seconds instead
    /// of minutes) without changing any plateau location.
    pub fn run(&self, quick: bool) -> FigureOutput {
        (self.runner)(quick)
    }
}

impl std::fmt::Debug for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Figure")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish()
    }
}

fn machine(id: MachineId) -> Box<dyn Machine> {
    let mut m: Box<dyn Machine> = match id {
        MachineId::Dec8400 => Box::new(Dec8400::new()),
        MachineId::CrayT3d => Box::new(T3d::new()),
        MachineId::CrayT3e => Box::new(T3e::new()),
        MachineId::Custom => unreachable!("figures cover only the paper's machines"),
    };
    m.set_limits(MeasureLimits {
        max_measure_words: 32 * 1024,
        max_prime_words: 2 * 1024 * 1024,
    });
    m
}

fn local_grid(quick: bool, max_ws: u64) -> Grid {
    if quick {
        Grid {
            strides: vec![1, 2, 4, 8, 16, 64],
            working_sets: Grid::paper_working_sets(max_ws.min(16 << 20))
                .into_iter()
                .step_by(2)
                .collect(),
        }
    } else {
        Grid {
            strides: Grid::paper_strides(),
            working_sets: Grid::paper_working_sets(max_ws),
        }
    }
}

fn surface_output(s: Surface) -> FigureOutput {
    FigureOutput {
        text: s.render(),
        csv: s.to_csv(),
    }
}

fn surface_figure(
    id: MachineId,
    quick: bool,
    max_ws: u64,
    f: impl Fn(&mut dyn Machine, &Grid) -> Option<Surface>,
) -> FigureOutput {
    let mut m = machine(id);
    let grid = local_grid(quick, max_ws);
    let s = f(m.as_mut(), &grid).expect("surface supported on this machine");
    surface_output(s)
}

// ---------------------------------------------------------------- figs 1-8

fn fig01(quick: bool) -> FigureOutput {
    surface_figure(MachineId::Dec8400, quick, 128 << 20, |m, g| {
        Some(local_load_surface(m, g))
    })
}

fn fig02(quick: bool) -> FigureOutput {
    surface_figure(MachineId::Dec8400, quick, 8 << 20, |m, g| {
        remote_load_surface(m, g)
    })
}

fn fig03(quick: bool) -> FigureOutput {
    surface_figure(MachineId::CrayT3d, quick, 16 << 20, |m, g| {
        Some(local_load_surface(m, g))
    })
}

fn fig04(quick: bool) -> FigureOutput {
    surface_figure(MachineId::CrayT3d, quick, 8 << 20, |m, g| {
        remote_fetch_surface(m, g)
    })
}

fn fig05(quick: bool) -> FigureOutput {
    surface_figure(MachineId::CrayT3d, quick, 8 << 20, |m, g| {
        remote_deposit_surface(m, g)
    })
}

fn fig06(quick: bool) -> FigureOutput {
    surface_figure(MachineId::CrayT3e, quick, 8 << 20, |m, g| {
        Some(local_load_surface(m, g))
    })
}

fn fig07(quick: bool) -> FigureOutput {
    surface_figure(MachineId::CrayT3e, quick, 8 << 20, |m, g| {
        remote_fetch_surface(m, g)
    })
}

fn fig08(quick: bool) -> FigureOutput {
    surface_figure(MachineId::CrayT3e, quick, 8 << 20, |m, g| {
        remote_deposit_surface(m, g)
    })
}

// -------------------------------------------------------------- figs 9-14

/// The large-transfer working set of §6 ("a working set of 65 MByte per
/// processor is sufficient to force every copy operation to go from DRAM
/// memory to DRAM memory").
const BIG_WS: u64 = 64 << 20;

/// One named bandwidth-vs-stride probe of a stride-series figure.
type SeriesProbe<'a> = (&'a str, Box<dyn FnMut(u64) -> Option<f64> + 'a>);

fn stride_series(title: &str, quick: bool, series: Vec<SeriesProbe<'_>>) -> FigureOutput {
    let strides = if quick {
        vec![1, 2, 4, 8, 16, 64]
    } else {
        Grid::copy_strides()
    };
    let mut rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
    let mut columns: Vec<Vec<Option<f64>>> = Vec::new();
    let mut names = Vec::new();
    for (name, mut probe) in series {
        names.push(name.to_string());
        columns.push(strides.iter().map(|&s| probe(s)).collect());
    }
    for (i, &s) in strides.iter().enumerate() {
        rows.push((s.to_string(), columns.iter().map(|c| c[i]).collect()));
    }

    let mut text = format!("{title} (MB/s)\n{:>8}", "stride");
    for n in &names {
        text.push_str(&format!("{n:>38}"));
    }
    text.push('\n');
    let mut csv = String::from("stride");
    for n in &names {
        csv.push_str(&format!(",{}", n.replace(' ', "_")));
    }
    csv.push('\n');
    for (s, vals) in &rows {
        text.push_str(&format!("{s:>8}"));
        csv.push_str(s);
        for v in vals {
            match v {
                Some(v) => {
                    text.push_str(&format!("{v:>38.1}"));
                    csv.push_str(&format!(",{v:.1}"));
                }
                None => {
                    text.push_str(&format!("{:>38}", "n/a"));
                    csv.push_str(",n/a");
                }
            }
        }
        text.push('\n');
        csv.push('\n');
    }
    FigureOutput { text, csv }
}

fn local_copy_figure(id: MachineId, quick: bool) -> FigureOutput {
    let title = format!("Local memory copy, 64 MB working set — {id}");
    let m1 = std::cell::RefCell::new(machine(id));
    let m2 = std::cell::RefCell::new(machine(id));
    stride_series(
        &title,
        quick,
        vec![
            (
                "strided loads/contiguous stores",
                Box::new(move |s| Some(m1.borrow_mut().local_copy(BIG_WS, s, 1).mb_s)),
            ),
            (
                "contiguous loads/strided stores",
                Box::new(move |s| Some(m2.borrow_mut().local_copy(BIG_WS, 1, s).mb_s)),
            ),
        ],
    )
}

fn fig09(quick: bool) -> FigureOutput {
    local_copy_figure(MachineId::Dec8400, quick)
}

fn fig10(quick: bool) -> FigureOutput {
    local_copy_figure(MachineId::CrayT3d, quick)
}

fn fig11(quick: bool) -> FigureOutput {
    local_copy_figure(MachineId::CrayT3e, quick)
}

fn fig12(quick: bool) -> FigureOutput {
    let m = std::cell::RefCell::new(machine(MachineId::Dec8400));
    stride_series(
        "Remote copy transfers, DEC 8400 (P0 pulls from P1), 64 MB",
        quick,
        vec![(
            "strided remote loads/contiguous stores",
            Box::new(move |s| m.borrow_mut().remote_fetch(BIG_WS, s).map(|r| r.mb_s)),
        )],
    )
}

fn remote_copy_figure(id: MachineId, quick: bool) -> FigureOutput {
    let title = format!("Remote copy transfers — {id}, 64 MB");
    let m1 = std::cell::RefCell::new(machine(id));
    let m2 = std::cell::RefCell::new(machine(id));
    stride_series(
        &title,
        quick,
        vec![
            (
                "strided remote loads (fetch)",
                Box::new(move |s| m1.borrow_mut().remote_fetch(BIG_WS, s).map(|r| r.mb_s)),
            ),
            (
                "strided remote stores (deposit)",
                Box::new(move |s| m2.borrow_mut().remote_deposit(BIG_WS, s).map(|r| r.mb_s)),
            ),
        ],
    )
}

fn fig13(quick: bool) -> FigureOutput {
    remote_copy_figure(MachineId::CrayT3d, quick)
}

fn fig14(quick: bool) -> FigureOutput {
    remote_copy_figure(MachineId::CrayT3e, quick)
}

// ------------------------------------------------------------- figs 15-17

/// Which 2D-FFT metric a figure reports.
#[derive(Clone, Copy)]
enum FftMetric {
    Total,
    Compute,
    Comm,
}

fn fft_figure(metric: FftMetric, quick: bool) -> FigureOutput {
    let sizes: Vec<usize> = if quick {
        vec![32, 64, 256]
    } else {
        vec![32, 64, 128, 256, 512, 1024]
    };
    let machines = [MachineId::CrayT3d, MachineId::Dec8400, MachineId::CrayT3e];
    let (title, unit) = match metric {
        FftMetric::Total => (
            "2D-FFT overall application performance, 4 PEs",
            "MFlop/s total",
        ),
        FftMetric::Compute => (
            "2D-FFT local computation performance, 4 PEs",
            "MFlop/s total",
        ),
        FftMetric::Comm => (
            "2D-FFT communication performance (transposes), 4 PEs",
            "MB/s total",
        ),
    };
    let mut text = format!("{title} [{unit}]\n{:>8}", "n");
    let mut csv = String::from("n");
    for m in machines {
        text.push_str(&format!("{:>12}", m.label()));
        csv.push_str(&format!(",{}", m.label()));
    }
    text.push('\n');
    csv.push('\n');
    for &n in &sizes {
        text.push_str(&format!("{n:>8}"));
        csv.push_str(&n.to_string());
        for m in machines {
            let r = run_benchmark(m, n, 4);
            let v = match metric {
                FftMetric::Total => r.total_mflops,
                FftMetric::Compute => r.compute_mflops_total,
                FftMetric::Comm => r.comm_mb_s_total,
            };
            text.push_str(&format!("{v:>12.0}"));
            csv.push_str(&format!(",{v:.1}"));
        }
        text.push('\n');
        csv.push('\n');
    }
    FigureOutput { text, csv }
}

fn fig15(quick: bool) -> FigureOutput {
    fft_figure(FftMetric::Total, quick)
}

fn fig16(quick: bool) -> FigureOutput {
    fft_figure(FftMetric::Compute, quick)
}

fn fig17(quick: bool) -> FigureOutput {
    fft_figure(FftMetric::Comm, quick)
}

/// The complete figure index, in paper order.
pub fn all_figures() -> Vec<Figure> {
    vec![
        Figure {
            id: "fig01",
            title: "DEC 8400 local load bandwidth (stride x working set)",
            expectation: "plateaus ~1100/700/600c-120s/150c-28s MB/s",
            runner: fig01,
        },
        Figure {
            id: "fig02",
            title: "DEC 8400 remote (pull) load bandwidth",
            expectation: "<=140 MB/s contiguous, ~22 strided",
            runner: fig02,
        },
        Figure {
            id: "fig03",
            title: "Cray T3D local load bandwidth",
            expectation: "~600 L1; 195 contiguous / 43 strided DRAM",
            runner: fig03,
        },
        Figure {
            id: "fig04",
            title: "Cray T3D fetch transfers (remote loads)",
            expectation: "~25 MB/s, far below deposits",
            runner: fig04,
        },
        Figure {
            id: "fig05",
            title: "Cray T3D deposit transfers (remote stores)",
            expectation: "~120 contiguous / 55-70 strided",
            runner: fig05,
        },
        Figure {
            id: "fig06",
            title: "Cray T3E local load bandwidth",
            expectation: "L1/L2 like the 8400; 430 contiguous / 42 strided DRAM",
            runner: fig06,
        },
        Figure {
            id: "fig07",
            title: "Cray T3E fetch transfers (E-registers)",
            expectation: "350 contiguous / ~140 strided, smooth",
            runner: fig07,
        },
        Figure {
            id: "fig08",
            title: "Cray T3E deposit transfers (E-registers)",
            expectation: "350 contiguous; even-stride ripples down to ~70",
            runner: fig08,
        },
        Figure {
            id: "fig09",
            title: "DEC 8400 local copies vs stride",
            expectation: "57 contiguous -> ~18-26 strided, both variants alike",
            runner: fig09,
        },
        Figure {
            id: "fig10",
            title: "Cray T3D local copies vs stride",
            expectation: "100 contiguous; strided stores ~70 >> strided loads ~40",
            runner: fig10,
        },
        Figure {
            id: "fig11",
            title: "Cray T3E local copies vs stride",
            expectation: "200 contiguous; strided resembles the 8400, not the T3D",
            runner: fig11,
        },
        Figure {
            id: "fig12",
            title: "DEC 8400 remote copies vs stride",
            expectation: "~140 contiguous -> ~20 strided",
            runner: fig12,
        },
        Figure {
            id: "fig13",
            title: "Cray T3D remote copies vs stride",
            expectation: "deposit >> fetch; strided deposits ~55-70",
            runner: fig13,
        },
        Figure {
            id: "fig14",
            title: "Cray T3E remote copies vs stride",
            expectation: "350 contiguous; fetch 140 / deposit 70 strided, odd-stride ripples",
            runner: fig14,
        },
        Figure {
            id: "fig15",
            title: "2D-FFT overall performance (4 PEs)",
            expectation: "T3E > 8400 > T3D; 8400/T3D ~1.5x despite 2.5x compute",
            runner: fig15,
        },
        Figure {
            id: "fig16",
            title: "2D-FFT local computation performance",
            expectation: "8400 ~2.5x T3D, flat; T3D falls off at n=1024; T3E highest",
            runner: fig16,
        },
        Figure {
            id: "fig17",
            title: "2D-FFT communication performance",
            expectation: "8400 ~ T3D; T3E well above both",
            runner: fig17,
        },
    ]
}

/// Looks up a figure by its id (`"fig01"` … `"fig17"`).
pub fn figure_by_id(id: &str) -> Option<Figure> {
    all_figures().into_iter().find(|f| f.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_complete_and_ordered() {
        let figs = all_figures();
        assert_eq!(figs.len(), 17);
        for (i, f) in figs.iter().enumerate() {
            assert_eq!(f.id, format!("fig{:02}", i + 1));
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(figure_by_id("fig07").is_some());
        assert!(figure_by_id("fig99").is_none());
    }

    #[test]
    fn quick_fig03_regenerates_t3d_plateaus() {
        let out = figure_by_id("fig03").unwrap().run(true);
        assert!(out.text.contains("local loads"));
        assert!(out.csv.starts_with("ws_bytes"));
        assert!(out.csv.lines().count() > 3);
    }

    #[test]
    fn quick_fig13_has_both_series() {
        let out = figure_by_id("fig13").unwrap().run(true);
        assert!(out.text.contains("fetch"));
        assert!(out.text.contains("deposit"));
        assert!(
            !out.text.contains("n/a"),
            "the T3D supports both directions"
        );
    }

    #[test]
    fn quick_fig12_marks_unsupported_deposit_absent() {
        let out = figure_by_id("fig12").unwrap().run(true);
        // Fig 12 only has the pull series by construction.
        assert!(out.text.contains("strided remote loads"));
    }

    #[test]
    fn quick_fig15_shows_the_ordering() {
        let out = figure_by_id("fig15").unwrap().run(true);
        let last = out.csv.lines().last().unwrap(); // n=256 row: n,t3d,dec,t3e
        let vals: Vec<f64> = last
            .split(',')
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(
            vals[2] > vals[1] && vals[1] > vals[0],
            "T3E > 8400 > T3D: {vals:?}"
        );
    }
}
