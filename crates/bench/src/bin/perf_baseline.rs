//! Records the repository's performance baseline as machine-readable JSON
//! (`BENCH_<n>.json`, ROADMAP item 5).
//!
//! Two families of numbers:
//!
//! * **Sweep throughput** — cells/sec for the reference grid
//!   ([`Grid::quick`], the `gasnub sweep` grid) on each machine, at one
//!   thread and at all available cores, through the full resilient runner
//!   (checkpoint write + fsync after every cell — the real sweep path).
//! * **Checkpoint-write overhead** — microseconds per durable write of a
//!   real completed-sweep payload, with and without fsync, isolating the
//!   durability tax from the simulation cost.
//!
//! Usage: `perf_baseline [OUT.json]` (stdout when no path is given).
//! Wall-clock timings vary by host; each `BENCH_<n>.json` is a snapshot of
//! one machine, committed so later PRs can compare shapes, not a CI gate.

use std::path::PathBuf;
use std::time::Instant;

use gasnub_core::json::Json;
use gasnub_core::{auto_threads, storage, Grid, ResilientSweep, SweepOp};
use gasnub_machines::{MachineSpec, MeasureLimits};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gasnub-perf-{}-{tag}.json", std::process::id()))
}

/// One complete resilient sweep of `grid` on a fresh checkpoint; returns
/// cells/sec including the per-cell checkpoint write + fsync.
fn sweep_rate(spec: &MachineSpec, grid: &Grid, threads: usize) -> f64 {
    let path = scratch(&format!("sweep-{threads}"));
    let _ = std::fs::remove_file(&path);
    let start = Instant::now();
    let outcome = ResilientSweep::new(&path)
        .run_parallel("perf baseline", grid, threads, spec, |m, ws, s| {
            SweepOp::LocalLoad.probe(m, ws, s)
        })
        .expect("the baseline sweep must succeed");
    let secs = start.elapsed().as_secs_f64();
    assert!(outcome.is_complete(), "the baseline sweep must complete");
    let _ = std::fs::remove_file(&path);
    grid.cells() as f64 / secs
}

/// Mean microseconds per durable checkpoint write of `payload`.
fn write_micros(payload: &str, fsync: bool) -> f64 {
    let path = scratch(if fsync { "fsync" } else { "nofsync" });
    let rounds = 64u32;
    let start = Instant::now();
    for _ in 0..rounds {
        storage::write_durable(&path, payload, fsync).expect("baseline write must succeed");
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / f64::from(rounds);
    let _ = std::fs::remove_file(&path);
    micros
}

/// A real completed-sweep checkpoint payload for the write benchmark.
fn reference_payload(grid: &Grid) -> String {
    let path = scratch("payload");
    let _ = std::fs::remove_file(&path);
    ResilientSweep::new(&path)
        .with_fsync(false)
        .run("perf baseline", grid, |ws, s| {
            Some((ws as f64).sqrt() / s as f64)
        })
        .expect("the payload sweep must succeed");
    let payload = storage::read_verified(&path)
        .expect("the payload checkpoint must verify")
        .expect("the payload checkpoint must exist");
    let _ = std::fs::remove_file(&path);
    payload
}

/// Fixed-precision decimal for the JSON snapshot (the checkpoint JSON
/// subset has no float type, and full float precision is noise here).
fn rate(value: f64) -> Json {
    Json::Str(format!("{value:.1}"))
}

fn main() {
    let out = std::env::args().nth(1);
    let grid = Grid::quick();
    let threads = auto_threads();

    let mut machines = std::collections::BTreeMap::new();
    for (label, spec) in [
        ("dec8400", MachineSpec::dec8400()),
        ("t3d", MachineSpec::t3d()),
        ("t3e", MachineSpec::t3e()),
    ] {
        let spec = spec.with_limits(MeasureLimits::fast());
        eprintln!("measuring {label} ({} cells) ...", grid.cells());
        let single = sweep_rate(&spec, &grid, 1);
        let multi = sweep_rate(&spec, &grid, threads);
        machines.insert(
            label.to_string(),
            Json::object([
                ("cells_per_sec_1_thread", rate(single)),
                ("cells_per_sec_n_threads", rate(multi)),
                ("speedup", Json::Str(format!("{:.2}", multi / single))),
            ]),
        );
    }

    let payload = reference_payload(&grid);
    let fsync_on = write_micros(&payload, true);
    let fsync_off = write_micros(&payload, false);

    let report = Json::object([
        ("bench", Json::U64(7)),
        (
            "grid",
            Json::object([
                ("cells", Json::U64(grid.cells() as u64)),
                (
                    "strides",
                    Json::Array(grid.strides.iter().map(|&s| Json::U64(s)).collect()),
                ),
                (
                    "working_sets",
                    Json::Array(grid.working_sets.iter().map(|&w| Json::U64(w)).collect()),
                ),
            ]),
        ),
        ("threads", Json::U64(threads as u64)),
        ("machines", Json::Object(machines)),
        (
            "checkpoint_write",
            Json::object([
                ("payload_bytes", Json::U64(payload.len() as u64)),
                ("micros_per_write_fsync", rate(fsync_on)),
                ("micros_per_write_no_fsync", rate(fsync_off)),
            ]),
        ),
    ]);

    let rendered = format!("{}\n", report.render());
    match out {
        Some(path) => {
            std::fs::write(&path, rendered).expect("baseline output must be writable");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
