//! Records the repository's performance baseline as machine-readable JSON
//! (`BENCH_<n>.json`, ROADMAP item 5).
//!
//! BENCH_9 measures the warm-path sweep engine (DESIGN §5e) and the
//! analytic fast path (DESIGN §5f), reporting per zoo machine four honest
//! cells/sec columns:
//!
//! * **cold** — `--cold` semantics: fresh simulation per cell, no memo, no
//!   fast paths; the BENCH_7-comparable number.
//! * **warm first pass** — the default sweep path on an empty memo table:
//!   run-granular scheduling, engine reuse across a stride run, stats-free
//!   priming. Every cell still simulates; this is the honest "first sweep
//!   of a new spec" speed.
//! * **warm memoized** — steady state: every cell hits the per-process
//!   probe memo, as in repeated `faults`/`trace`/`sweep` invocations.
//! * **analytic** — the `--tier auto` fast path on its calibration-trusted
//!   cells, measured at probe level on a pre-calibrated model (no runner,
//!   no checkpoint IO: the column isolates the model's answer cost, which
//!   a per-cell checkpoint write would otherwise dominate).
//!
//! Plus golden-trace overhead (a `RingRecorder` per probe, which also
//! bypasses the memo — genuine recomputation), checkpoint-write costs
//! (fsync per write, none, and the batched default), and a thread-pool
//! micro-benchmark (per-item vs chunked claiming) for the scheduling layer.
//!
//! Usage: `perf_baseline [--check BASELINE.json] [OUT.json]`
//!
//! `--check` compares the fresh measurement against a committed baseline
//! and exits non-zero if any warm cells/sec column dropped more than 20%
//! below it (the CI perf-smoke gate). A missing or unreadable baseline is
//! a warning, not a failure, so the first run of the gate is warn-only.
//! Wall-clock timings vary by host; each `BENCH_<n>.json` is a snapshot of
//! one machine, committed so later PRs can compare shapes.

use std::path::PathBuf;
use std::time::Instant;

use gasnub_analytic::TieredSpec;
use gasnub_core::json::Json;
use gasnub_core::pool::run_indexed_chunked;
use gasnub_core::{auto_threads, run_indexed, storage, Grid, ResilientSweep, SweepOp};
use gasnub_machines::{
    dispatch, Machine, MachineSpec, MeasureLimits, ProbePath, ProbeTier, RingRecorder, SpawnEngine,
    TransferEngine,
};

/// The CI gate: fail `--check` when a guarded column drops below this
/// fraction of the committed baseline.
const CHECK_FLOOR: f64 = 0.8;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gasnub-perf-{}-{tag}.json", std::process::id()))
}

/// One complete resilient sweep of `grid` on a fresh checkpoint; returns
/// cells/sec through the default runner (checkpoint write per cell, fsync
/// batched).
fn sweep_rate<P>(spec: &MachineSpec, grid: &Grid, threads: usize, probe: P) -> f64
where
    P: Fn(&mut TransferEngine, u64, u64) -> Option<f64> + Sync,
{
    let path = scratch(&format!("sweep-{threads}"));
    let _ = std::fs::remove_file(&path);
    let start = Instant::now();
    let outcome = ResilientSweep::new(&path)
        .run_parallel("perf baseline", grid, threads, spec, probe)
        .expect("the baseline sweep must succeed");
    let secs = start.elapsed().as_secs_f64();
    assert!(outcome.is_complete(), "the baseline sweep must complete");
    let _ = std::fs::remove_file(&path);
    grid.cells() as f64 / secs
}

/// Best-of-`rounds` sweep rate; `prep` runs before every round (memo
/// clearing, cold-path toggling). Best-of-N because the gate compares
/// against a committed baseline: max is the noise-robust statistic for
/// "how fast can this host go", and more rounds shrink the variance the
/// 20% floor must absorb.
fn best_rate<P>(
    rounds: u32,
    spec: &MachineSpec,
    grid: &Grid,
    threads: usize,
    prep: impl Fn(),
    probe: P,
) -> f64
where
    P: Fn(&mut TransferEngine, u64, u64) -> Option<f64> + Sync,
{
    let mut best = 0.0f64;
    for _ in 0..rounds {
        prep();
        best = best.max(sweep_rate(spec, grid, threads, &probe));
    }
    best
}

fn plain_probe(m: &mut TransferEngine, ws: u64, s: u64) -> Option<f64> {
    SweepOp::LocalLoad.measure(m, ws, s)
}

fn traced_probe(m: &mut TransferEngine, ws: u64, s: u64) -> Option<f64> {
    m.set_recorder(Box::new(RingRecorder::new(64)));
    SweepOp::LocalLoad.measure(m, ws, s)
}

/// Cells/sec answering the grid's calibration-trusted cells through the
/// analytic tier, plus how many of the grid's cells are trusted. The model
/// is calibrated by the discovery pass, so the timed rounds measure the
/// steady state a `--tier auto` sweep sees on every trusted cell.
fn analytic_rate(spec: &MachineSpec, grid: &Grid) -> (f64, usize) {
    let tiered = TieredSpec::new(spec.clone(), ProbeTier::Auto)
        .expect("zoo machines always carry an analytic model");
    let mut machine = tiered.spawn_engine().expect("zoo machines always build");
    let mut trusted = Vec::new();
    for &ws in &grid.working_sets {
        for &stride in &grid.strides {
            let req = SweepOp::LocalLoad.request(ws, stride);
            if dispatch(&mut machine, &req).measurement.is_some()
                && machine.last_path() == ProbePath::Analytic
            {
                trusted.push(req);
            }
        }
    }
    if trusted.is_empty() {
        return (0.0, 0);
    }
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut cells = 0u64;
        while start.elapsed().as_secs_f64() < 0.05 {
            for req in &trusted {
                assert!(dispatch(&mut machine, req).measurement.is_some());
                cells += 1;
            }
        }
        best = best.max(cells as f64 / start.elapsed().as_secs_f64());
    }
    (best, trusted.len())
}

/// Mean microseconds per checkpoint write of `payload`. `fsync_every = 0`
/// disables fsync entirely; `1` syncs every write; `n` syncs every nth
/// (the batched default path).
fn write_micros(payload: &str, fsync_every: u64) -> f64 {
    let path = scratch(&format!("write-{fsync_every}"));
    let rounds = 64u64;
    let start = Instant::now();
    for n in 1..=rounds {
        let durable = fsync_every > 0 && n % fsync_every == 0;
        storage::write_durable(&path, payload, durable).expect("baseline write must succeed");
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
    let _ = std::fs::remove_file(&path);
    micros
}

/// A real completed-sweep checkpoint payload for the write benchmark.
fn reference_payload(grid: &Grid) -> String {
    let path = scratch("payload");
    let _ = std::fs::remove_file(&path);
    ResilientSweep::new(&path)
        .with_fsync(false)
        .run("perf baseline", grid, |ws, s| {
            Some((ws as f64).sqrt() / s as f64)
        })
        .expect("the payload sweep must succeed");
    let payload = storage::read_verified(&path)
        .expect("the payload checkpoint must verify")
        .expect("the payload checkpoint must exist");
    let _ = std::fs::remove_file(&path);
    payload
}

/// Golden-trace overhead: the percent a `RingRecorder` adds per probe.
///
/// Measured at probe level — no runner, no checkpoint IO — because the
/// recorder's harvest cost is a small delta that sweep-level disk noise
/// swamps. Each round walks the whole grid untraced and then traced on
/// one warm engine (memo cleared before the untraced pass so every probe
/// is a genuine simulation), and the reported figure is the median
/// per-round ratio: slow host drift hits both sides of a pair and
/// cancels, where independent best-of columns would not.
fn trace_overhead_pct(spec: &MachineSpec, grid: &Grid) -> f64 {
    use gasnub_machines::NullRecorder;
    let mut engine = spec.spawn_engine().expect("zoo machines always build");
    let pass = |engine: &mut TransferEngine| {
        let start = Instant::now();
        for &ws in &grid.working_sets {
            for &s in &grid.strides {
                let _ = plain_probe(engine, ws, s);
            }
        }
        start.elapsed().as_secs_f64()
    };
    let mut ratios = Vec::new();
    for _ in 0..5 {
        gasnub_machines::memo::clear();
        engine.set_recorder(Box::new(NullRecorder));
        let plain = pass(&mut engine);
        engine.set_recorder(Box::new(RingRecorder::new(64)));
        let traced = pass(&mut engine);
        ratios.push(traced / plain - 1.0);
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2] * 100.0
}

/// Jobs/sec pushing `n` trivial jobs through the pool at the given
/// claiming granularity (`chunk = 0` means the auto-chunked
/// [`run_indexed`] entry point).
fn pool_rate(threads: usize, n: usize, chunk: usize) -> f64 {
    let job = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64 >> 7);
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let out = if chunk == 0 {
            run_indexed(threads, n, job)
        } else {
            run_indexed_chunked(threads, n, chunk, job)
        };
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out.len(), n);
        best = best.max(n as f64 / secs);
    }
    best
}

/// Fixed-precision decimal for the JSON snapshot (the checkpoint JSON
/// subset has no float type, and full float precision is noise here).
fn rate(value: f64) -> Json {
    Json::Str(format!("{value:.1}"))
}

fn ratio(value: f64) -> Json {
    Json::Str(format!("{value:.2}"))
}

/// The per-machine columns `--check` guards (warm path only: the cold
/// column is the slow reference and the trace column is measured against
/// the warm one, so gating the warm columns covers the sweep path users
/// actually run).
const GUARDED: [&str; 3] = [
    "warm_first_cells_per_sec_1t",
    "warm_memo_cells_per_sec_1t",
    "analytic_cells_per_sec_1t",
];

/// Compares `report` against a committed baseline; returns the number of
/// regressions (guarded columns below [`CHECK_FLOOR`] of the baseline).
fn check_against(report: &Json, baseline_path: &str) -> usize {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("perf-check: no baseline at {baseline_path}; skipping (warn-only first run)");
        return 0;
    };
    let Ok(baseline) = Json::parse(&text) else {
        eprintln!("perf-check: baseline {baseline_path} is not valid JSON; skipping");
        return 0;
    };
    let column = |doc: &Json, machine: &str, key: &str| -> Option<f64> {
        doc.get("machines")?
            .get(machine)?
            .get(key)?
            .as_str()?
            .parse()
            .ok()
    };
    let mut regressions = 0;
    for machine in ["dec8400", "t3d", "t3e"] {
        for key in GUARDED {
            let (Some(was), Some(now)) = (
                column(&baseline, machine, key),
                column(report, machine, key),
            ) else {
                eprintln!("perf-check: {machine}.{key} missing from baseline or report; skipping");
                continue;
            };
            let floor = was * CHECK_FLOOR;
            if now < floor {
                eprintln!(
                    "perf-check: REGRESSION {machine}.{key}: {now:.1} < {floor:.1} \
                     (baseline {was:.1}, floor {:.0}%)",
                    CHECK_FLOOR * 100.0
                );
                regressions += 1;
            } else {
                eprintln!("perf-check: ok {machine}.{key}: {now:.1} vs baseline {was:.1}");
            }
        }
    }
    regressions
}

fn main() {
    let mut check: Option<String> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--check" {
            check = Some(args.next().expect("--check needs a baseline path"));
        } else {
            out = Some(arg);
        }
    }

    let grid = Grid::quick();
    let threads = auto_threads();
    let report = measure_report(&grid, threads);

    let rendered = format!("{}\n", report.render());
    if let Some(path) = &out {
        std::fs::write(path, &rendered).expect("baseline output must be writable");
        eprintln!("wrote {path}");
    }
    if let Some(baseline) = &check {
        // Best-of-N absorbs most host noise, but an IO-bound column on a
        // shared runner can still swing past the floor. A *real* regression
        // is stable; noise is not — so a failing check is re-measured up to
        // twice and only a drop that survives every attempt fails the job.
        let mut regressions = check_against(&report, baseline);
        for attempt in 0..2 {
            if regressions == 0 {
                break;
            }
            eprintln!(
                "perf-check: {regressions} regression(s); re-measuring (retry {})",
                attempt + 1
            );
            regressions = check_against(&measure_report(&grid, threads), baseline);
        }
        if regressions > 0 {
            eprintln!("perf-check: {regressions} regression(s) after retries");
            std::process::exit(1);
        }
        eprintln!("perf-check: pass");
    }
    if out.is_none() {
        print!("{rendered}");
    }
}

/// Measures the full BENCH_9 report for `grid` at the given thread count.
fn measure_report(grid: &Grid, threads: usize) -> Json {
    let grid = grid.clone();
    let cold = || gasnub_memsim::set_cold_path(true);
    let warm_fresh = || {
        gasnub_memsim::set_cold_path(false);
        gasnub_machines::memo::clear();
    };
    let warm_memo = || gasnub_memsim::set_cold_path(false);

    let mut machines = std::collections::BTreeMap::new();
    for (label, spec) in [
        ("dec8400", MachineSpec::dec8400()),
        ("t3d", MachineSpec::t3d()),
        ("t3e", MachineSpec::t3e()),
    ] {
        let spec = spec.with_limits(MeasureLimits::fast());
        eprintln!("measuring {label} ({} cells) ...", grid.cells());
        let cold_1 = best_rate(3, &spec, &grid, 1, cold, plain_probe);
        let warm_first_1 = best_rate(4, &spec, &grid, 1, warm_fresh, plain_probe);
        warm_fresh();
        let trace_1 = best_rate(2, &spec, &grid, 1, warm_fresh, traced_probe);
        let trace_overhead_pct = trace_overhead_pct(&spec, &grid);
        // The memo is populated by the warm-first rounds above; these
        // rounds are all steady-state hits.
        let warm_memo_1 = best_rate(4, &spec, &grid, 1, warm_memo, plain_probe);
        let (analytic_1, analytic_trusted) = analytic_rate(&spec, &grid);
        // On a single-core host the n-thread sweep *is* the 1-thread
        // sweep; re-measuring it would only record scheduler noise.
        let (cold_n, warm_first_n, warm_memo_n) = if threads > 1 {
            (
                best_rate(3, &spec, &grid, threads, cold, plain_probe),
                best_rate(4, &spec, &grid, threads, warm_fresh, plain_probe),
                best_rate(4, &spec, &grid, threads, warm_memo, plain_probe),
            )
        } else {
            (cold_1, warm_first_1, warm_memo_1)
        };
        gasnub_memsim::set_cold_path(false);
        machines.insert(
            label.to_string(),
            Json::object([
                ("cold_cells_per_sec_1t", rate(cold_1)),
                ("cold_cells_per_sec_nt", rate(cold_n)),
                ("warm_first_cells_per_sec_1t", rate(warm_first_1)),
                ("warm_first_cells_per_sec_nt", rate(warm_first_n)),
                ("warm_memo_cells_per_sec_1t", rate(warm_memo_1)),
                ("warm_memo_cells_per_sec_nt", rate(warm_memo_n)),
                ("analytic_cells_per_sec_1t", rate(analytic_1)),
                ("analytic_trusted_cells", Json::U64(analytic_trusted as u64)),
                ("analytic_speedup_vs_memo", ratio(analytic_1 / warm_memo_1)),
                ("trace_cells_per_sec_1t", rate(trace_1)),
                ("warm_first_speedup_vs_cold", ratio(warm_first_1 / cold_1)),
                ("warm_memo_speedup_vs_cold", ratio(warm_memo_1 / cold_1)),
                (
                    "parallel_speedup_warm_first",
                    ratio(warm_first_n / warm_first_1),
                ),
                (
                    "trace_overhead_pct",
                    Json::Str(format!("{trace_overhead_pct:.1}")),
                ),
            ]),
        );
    }

    let payload = reference_payload(&grid);
    let fsync_on = write_micros(&payload, 1);
    let fsync_batch = write_micros(&payload, gasnub_core::resilient::FSYNC_BATCH_DEFAULT);
    let fsync_off = write_micros(&payload, 0);

    // Pool micro-benchmark: chunked claiming must amortize the per-claim
    // fetch_add + channel send that per-item claiming pays on every job.
    // Forced to >= 2 workers so the pool machinery is exercised even on a
    // single-core host.
    let pool_threads = threads.max(2);
    let pool_jobs = 1 << 20;
    let per_item = pool_rate(pool_threads, pool_jobs, 1);
    let chunked = pool_rate(pool_threads, pool_jobs, 0);

    Json::object([
        ("bench", Json::U64(9)),
        (
            "grid",
            Json::object([
                ("cells", Json::U64(grid.cells() as u64)),
                (
                    "strides",
                    Json::Array(grid.strides.iter().map(|&s| Json::U64(s)).collect()),
                ),
                (
                    "working_sets",
                    Json::Array(grid.working_sets.iter().map(|&w| Json::U64(w)).collect()),
                ),
            ]),
        ),
        ("threads", Json::U64(threads as u64)),
        ("machines", Json::Object(machines)),
        (
            "checkpoint_write",
            Json::object([
                ("payload_bytes", Json::U64(payload.len() as u64)),
                ("micros_per_write_fsync", rate(fsync_on)),
                ("micros_per_write_fsync_batched", rate(fsync_batch)),
                ("micros_per_write_no_fsync", rate(fsync_off)),
            ]),
        ),
        (
            "pool",
            Json::object([
                ("threads", Json::U64(pool_threads as u64)),
                ("jobs", Json::U64(pool_jobs as u64)),
                ("per_item_jobs_per_sec", rate(per_item)),
                ("chunked_jobs_per_sec", rate(chunked)),
                ("chunked_speedup", ratio(chunked / per_item)),
            ]),
        ),
    ])
}
