//! Regenerates `EXPERIMENTS.md`: paper-vs-measured for every calibration
//! point and every figure-level claim.
//!
//! ```text
//! cargo run --release -p gasnub-bench --bin experiments > EXPERIMENTS.md
//! ```

use gasnub_analytic::TieredSpec;
use gasnub_core::counters::collect_counters;
use gasnub_core::{auto_threads, sweep_surface_par, Grid, SweepOp};
use gasnub_fft::run_benchmark;
use gasnub_machines::calibration::run_calibration;
use gasnub_machines::{
    dispatch, Dec8400, FaultPlan, Machine, MachineId, MachineSpec, MeasureLimits, ProbePath,
    ProbeTier, SpawnEngine, T3d, T3e,
};

fn human_ws(ws: u64) -> String {
    if ws >= 1 << 20 {
        format!("{}M", ws >> 20)
    } else {
        format!("{}K", ws >> 10)
    }
}

fn main() {
    println!("# EXPERIMENTS — paper vs. measured");
    println!();
    println!(
        "Regenerate with `cargo run --release -p gasnub-bench --bin experiments > EXPERIMENTS.md`."
    );
    println!("All values are MB/s unless noted. \"Paper\" quotes the HPCA-3 text; tolerances");
    println!("are the calibration table's accepted relative deviation (loose where the paper");
    println!("itself is approximate). Shape claims (orderings, crossovers, who-wins) are");
    println!("asserted by the test suite; this file records the magnitudes.");
    println!();

    // ---------------------------------------------------------------- 1
    println!("## 1. Calibration table (prose-quoted bandwidths, figs 1-14)");
    println!();
    println!("| id | paper | measured | Δ | tol | source |");
    println!("|---|---:|---:|---:|---:|---|");
    let limits = MeasureLimits {
        max_measure_words: 32 * 1024,
        max_prime_words: 2 * 1024 * 1024,
    };
    for id in [MachineId::Dec8400, MachineId::CrayT3d, MachineId::CrayT3e] {
        let mut machine: Box<dyn Machine> = match id {
            MachineId::Dec8400 => Box::new(Dec8400::new()),
            MachineId::CrayT3d => Box::new(T3d::new()),
            MachineId::CrayT3e => Box::new(T3e::new()),
            MachineId::Custom => unreachable!("only the paper's machines are calibrated"),
        };
        machine.set_limits(limits);
        for (point, measured) in run_calibration(machine.as_mut()) {
            let delta = (measured - point.paper_mb_s) / point.paper_mb_s * 100.0;
            let ok = if point.accepts(measured) { "" } else { " ⚠" };
            println!(
                "| {} | {:.0} | {:.1}{} | {:+.0}% | ±{:.0}% | {} |",
                point.id,
                point.paper_mb_s,
                measured,
                ok,
                delta,
                point.tolerance * 100.0,
                point.source.replace('|', "/")
            );
        }
    }
    println!();
    println!("Rows marked ⚠ (if any) exceed tolerance; the CI test `calibration` fails in");
    println!("that case, so a clean build implies none.");
    println!();

    // ---------------------------------------------------------------- 2
    println!("## 2. 2D-FFT application kernel (figs 15-17, 4 PEs)");
    println!();
    println!("Paper values at 256x256: T3D 133, DEC 8400 ~220, T3E ~330 MFlop/s total.");
    println!();
    println!("| n | T3D total | 8400 total | T3E total | T3D comp | 8400 comp | T3E comp | T3D comm | 8400 comm | T3E comm |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for n in [32usize, 64, 128, 256, 512, 1024] {
        let t3d = run_benchmark(MachineId::CrayT3d, n, 4);
        let dec = run_benchmark(MachineId::Dec8400, n, 4);
        let t3e = run_benchmark(MachineId::CrayT3e, n, 4);
        println!(
            "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} |",
            n,
            t3d.total_mflops,
            dec.total_mflops,
            t3e.total_mflops,
            t3d.compute_mflops_total,
            dec.compute_mflops_total,
            t3e.compute_mflops_total,
            t3d.comm_mb_s_total,
            dec.comm_mb_s_total,
            t3e.comm_mb_s_total
        );
    }
    println!();
    println!("(totals/comp in MFlop/s across 4 PEs; comm in MB/s across 4 PEs)");
    println!();
    println!("Shape checks (asserted in `tests/headline_findings.rs`):");
    println!();
    println!("* fig 15: T3E > 8400 > T3D at every size; the 8400's overall lead over the");
    println!("  T3D stays well below its >2x compute lead (paper: 1.65x vs 2.5x).");
    println!("* fig 16: 8400 compute ≈ flat with n (L2/L3 hold the rows); T3D falls off at");
    println!("  n=1024 (8 KB L1); T3E highest.");
    println!(
        "* fig 17: 8400 ≈ T3D (\"approximately the same performance level\"), T3E well above."
    );
    println!();

    // ---------------------------------------------------------------- 3
    println!("## 3. §8 scalability projection");
    println!();
    let p512 = gasnub_fft::scalability::project(MachineId::CrayT3d, 2048, 512);
    let p512e = gasnub_fft::scalability::project(MachineId::CrayT3e, 2048, 512);
    let eff = gasnub_fft::scalability::efficiency(MachineId::CrayT3d, 2048, 16, 512);
    println!("| quantity | paper | measured |");
    println!("|---|---:|---:|");
    println!(
        "| T3D 512-PE aggregate (GFlop/s) | 8.75 | {:.1} |",
        p512.gflops_total
    );
    println!(
        "| T3D per-PE at 512 (MFlop/s) | ~20 | {:.1} |",
        p512.mflops_per_pe
    );
    println!(
        "| T3D efficiency 16→512 PEs | \"almost linear\" | {:.0}% |",
        eff * 100.0
    );
    println!(
        "| T3E 512-PE projection (GFlop/s) | ~20 | {:.1} |",
        p512e.gflops_total
    );
    println!();

    // ---------------------------------------------------------------- 4
    println!("## 4. Fault experiments (beyond the paper)");
    println!();
    println!("The paper measures healthy machines; `gasnub-faults` asks how the same");
    println!("characterization shifts when the machine degrades. A `FaultPlan(seed,");
    println!("severity)` deterministically fails/slows torus channels (traffic detours");
    println!("around dead links and is charged the detour hops plus the bottleneck");
    println!("capacity of the surviving path), makes the network interface lossy (retry");
    println!("with exponential backoff), and adds bus-arbitration jitter on the 8400.");
    println!("Same seed, same numbers — the table below is reproducible byte for byte,");
    println!("and `cargo run -p gasnub -- faults <machine>` prints the live version.");
    println!();
    println!("Remote bandwidth at 4 MB working set, plan seed=7 severity=0.5:");
    println!();
    println!("| machine | op | stride | healthy | degraded | ratio |");
    println!("|---|---|---:|---:|---:|---:|");
    let plan = FaultPlan::new(7, 0.5).expect("severity 0.5 is in range");
    let fault_limits = MeasureLimits {
        max_measure_words: 8 * 1024,
        max_prime_words: 64 * 1024,
    };
    let pairs: Vec<(Box<dyn Machine>, Box<dyn Machine>)> = vec![
        (
            Box::new(T3d::new()),
            Box::new(T3d::with_faults(&plan).expect("plan applies")),
        ),
        (
            Box::new(T3e::new()),
            Box::new(T3e::with_faults(&plan).expect("plan applies")),
        ),
        (
            Box::new(Dec8400::new()),
            Box::new(Dec8400::with_faults(&plan).expect("plan applies")),
        ),
    ];
    type RemoteProbe = fn(&mut dyn Machine, u64, u64) -> Option<f64>;
    let ops: [(&str, RemoteProbe); 3] = [
        ("pull", |m, ws, s| m.remote_load(ws, s).map(|r| r.mb_s)),
        ("fetch", |m, ws, s| m.remote_fetch(ws, s).map(|r| r.mb_s)),
        ("deposit", |m, ws, s| {
            m.remote_deposit(ws, s).map(|r| r.mb_s)
        }),
    ];
    for (mut healthy, mut degraded) in pairs {
        healthy.set_limits(fault_limits);
        degraded.set_limits(fault_limits);
        for (op, probe) in ops {
            for stride in [1u64, 8] {
                let ws = 4 * 1024 * 1024;
                let (Some(h), Some(d)) = (
                    probe(healthy.as_mut(), ws, stride),
                    probe(degraded.as_mut(), ws, stride),
                ) else {
                    continue;
                };
                println!(
                    "| {} | {op} | {stride} | {h:.1} | {d:.1} | {:.2} |",
                    healthy.name(),
                    if h > 0.0 { d / h } else { 0.0 }
                );
            }
        }
    }
    println!();
    println!("Shape checks (asserted in `crates/machines/tests/faults.rs` and");
    println!("`crates/interconnect/tests/fault_routing.rs`): severity 0 is a no-op,");
    println!("degraded machines are never faster, harsher plans hurt more on average,");
    println!("fault-avoiding routes are loop-free/live/complete, and the whole pipeline");
    println!("is bit-reproducible. The `sweep` subcommand re-runs any surface under a");
    println!("plan with JSON checkpointing: interrupt it (`--max-cells`,");
    println!("`--budget-secs`, or a crash) and the re-run resumes to a bit-identical");
    println!("surface; per-cell panics are recorded as failed cells, never retried.");
    println!();

    // ---------------------------------------------------------------- 5
    println!("## 5. Parallel sweep execution (beyond the paper)");
    println!();
    println!("The machine layer separates an immutable `MachineSpec` from the mutable");
    println!("`TransferEngine` it builds, so a sweep can group same-stride cells into");
    println!("runs, walk each run on one warm engine, and schedule whole runs on a");
    println!("work-stealing pool (DESIGN \u{a7}5e). Because each probe flushes first and");
    println!("every stochastic draw is keyed by (operation, attempt), a flushed engine");
    println!("is indistinguishable from a fresh one — the parallel surface and its");
    println!("checkpoint are bit-identical to a sequential run's for any thread count");
    println!("(asserted in `tests/determinism.rs`).");
    println!();
    let workers = auto_threads();
    let grid = Grid::paper_remote();
    println!(
        "T3D deposit over the paper remote grid ({} cells), fast limits, this host",
        grid.cells()
    );
    println!(
        "({workers} hardware thread{}):",
        if workers == 1 { "" } else { "s" }
    );
    println!();
    println!("| threads | wall time (s) | speedup | surfaces |");
    println!("|---:|---:|---:|---|");
    let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
    let time_sweep = |threads: usize| {
        // Both timings are warm-first passes: the probe memo is cleared so
        // the second run re-simulates instead of replaying the first
        // (steady-state memo throughput is BENCH_8's column, not this one).
        gasnub_machines::memo::clear();
        let start = std::time::Instant::now();
        let surface = sweep_surface_par(&spec, SweepOp::RemoteDeposit, &grid, threads)
            .expect("spec builds")
            .expect("deposit supported");
        (start.elapsed(), surface)
    };
    let (seq, sequential) = time_sweep(1);
    let (par, parallel) = time_sweep(workers);
    let identical = if parallel == sequential {
        "bit-identical"
    } else {
        "DIFFER ⚠"
    };
    println!("| 1 | {:.2} | 1.00x | reference |", seq.as_secs_f64());
    println!(
        "| {workers} | {:.2} | {:.2}x | {identical} |",
        par.as_secs_f64(),
        seq.as_secs_f64() / par.as_secs_f64()
    );
    println!();
    println!("Wall times vary with the host; the identity column does not. The speedup");
    println!("scales with available cores (a single-core host reports ~1.00x by");
    println!("construction — the pool degenerates to the sequential loop). Reproduce");
    println!("with `cargo bench -p gasnub-bench --bench sweep_parallel` or");
    println!("`gasnub sweep t3d deposit --checkpoint x.json --threads 0`.");
    println!();

    // ---------------------------------------------------------------- 6
    println!("## 6. Counter-annotated figures (beyond the paper)");
    println!();
    println!("The paper infers mechanisms from bandwidth shapes; the observability layer");
    println!("(`gasnub-trace` + `core::counters`) measures them directly. Each probe can");
    println!("harvest the component counters behind its number — cache misses per level,");
    println!("bus transactions, MESI transitions, NI packets and fetched words — and the");
    println!("`trace` / `sweep --counters` commands export them per grid cell. Two");
    println!("examples (fast limits; regenerate live with");
    println!("`gasnub sweep dec8400 pull --checkpoint x.json --counters-csv -`):");
    println!();
    println!("Fig 2's coherent-pull collapse on the 8400, explained: every pulled 64-byte");
    println!("line is a bus transaction, and the supplier shifts from the producer's cache");
    println!("(cache-to-cache, with M→S downgrades) to home memory as the set outgrows it.");
    println!();
    println!("| ws | stride | MB/s | bus txns | lines | cache supplies | home supplies | M→S |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|");
    let annotate_grid = Grid {
        strides: vec![1, 16],
        working_sets: vec![32 << 10, 4 << 20],
    };
    let dec_spec = MachineSpec::dec8400().with_limits(fault_limits);
    let report = collect_counters(&dec_spec, SweepOp::RemoteLoad, &annotate_grid, 1)
        .expect("spec builds")
        .expect("the 8400 pulls");
    for cell in &report.cells {
        let c = &cell.counters;
        println!(
            "| {} | {} | {:.1} | {} | {} | {} | {} | {} |",
            human_ws(cell.ws_bytes),
            cell.stride,
            cell.mb_s(),
            c.get("bus_transactions"),
            c.get("payload_bytes") / 64,
            c.get("smp_cache_supplies"),
            c.get("smp_home_supplies"),
            c.get("mesi_m_to_s"),
        );
    }
    println!();
    println!("Finding 3's fetch/deposit asymmetry on the T3D, explained: a fetch pulls");
    println!("every 64-bit word through the NI's fetch circuitry individually, while a");
    println!("contiguous deposit coalesces words into fewer, larger packets.");
    println!();
    println!("| op | stride | MB/s | NI fetched words | NI packets | words moved |");
    println!("|---|---:|---:|---:|---:|---:|");
    let t3d_spec = MachineSpec::t3d().with_limits(fault_limits);
    let t3d_grid = Grid {
        strides: vec![1, 16],
        working_sets: vec![4 << 20],
    };
    for op in [SweepOp::RemoteFetch, SweepOp::RemoteDeposit] {
        let report = collect_counters(&t3d_spec, op, &t3d_grid, 1)
            .expect("spec builds")
            .expect("the T3D runs both remote styles");
        for cell in &report.cells {
            let c = &cell.counters;
            println!(
                "| {} | {} | {:.1} | {} | {} | {} |",
                op.label(),
                cell.stride,
                cell.mb_s(),
                c.get("ni_fetched_words"),
                c.get("ni_packets"),
                c.get("payload_bytes") / 8,
            );
        }
    }
    println!();
    println!("The golden-trace suite (`tests/golden_traces.rs`) pins these counters");
    println!("byte-for-byte on a reference grid for all three machines, so any model");
    println!("change shows up as a named-counter diff rather than a shifted bandwidth.");
    println!();

    // ---------------------------------------------------------------- 7
    println!("## 7. Modern machines (beyond the paper)");
    println!();
    println!("The machine zoo (`machines/zoo/`) extends the characterization to two");
    println!("modern designs described purely as spec files — no Rust changed to add");
    println!("either. Both reuse the paper-era model families: the NUMA node is a");
    println!("\"torus\" machine whose remote socket is one hop over the processor");
    println!("interconnect, and the many-core SMP is an \"smp\" machine with a wider,");
    println!("faster snooping bus.");
    println!();
    println!("`cargo run --release --example zoo_probe` (32 MB working set, past every");
    println!("cache in the zoo; contiguous and stride-8 word loads):");
    println!();
    println!("| machine | local MB/s | remote MB/s | ratio | local s=8 | remote s=8 |");
    println!("|---|---:|---:|---:|---:|---:|");
    let zoo_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../machines/zoo");
    let mut numa_ratio = None;
    for name in ["dec8400", "t3d", "t3e", "custom", "numa2s", "smp16"] {
        let text =
            std::fs::read_to_string(format!("{zoo_dir}/{name}.toml")).expect("zoo spec readable");
        let spec = MachineSpec::from_spec_str(&text).expect("zoo spec parses");
        let mut m = spec
            .with_limits(MeasureLimits::new())
            .build()
            .expect("zoo spec builds");
        let ws = 32 << 20;
        let local = m.local_load(ws, 1).mb_s;
        let local8 = m.local_load(ws, 8).mb_s;
        match (m.remote_fetch(ws, 1), m.remote_fetch(ws, 8)) {
            (Some(remote), Some(remote8)) => {
                if name == "numa2s" {
                    numa_ratio = Some(local / remote.mb_s);
                }
                println!(
                    "| {name} | {local:.0} | {:.0} | {:.2}x | {local8:.0} | {:.0} |",
                    remote.mb_s,
                    local / remote.mb_s,
                    remote8.mb_s
                );
            }
            _ => println!("| {name} | {local:.0} | - | - | {local8:.0} | - |"),
        }
    }
    println!();
    let ratio = numa_ratio.expect("numa2s has a remote path");
    println!("**numa2s** (two-socket NUMA node, circa-2011 Nehalem/Westmere class) is");
    println!("calibrated against the STREAM characterization in Bergstrom, *\"Measuring");
    println!("NUMA effects with the STREAM benchmark\"* (arXiv:1103.3225): one global");
    println!("address space, but a thread reads the other socket's memory at a modest");
    println!("fraction of its local bandwidth. The measured remote/local fraction of");
    println!(
        "{:.2} (ratio {ratio:.2}x) sits inside Bergstrom's reported 0.4–0.8 band, and",
        1.0 / ratio
    );
    println!("`tests/zoo.rs` asserts the ratio stays in [1.3, 2.5]. Two paper echoes");
    println!("reproduce on 2011-era parameters:");
    println!();
    println!("* *Non-uniform bandwidth under a uniform address space* — the paper's");
    println!("  thesis — survives three decades: the gap shrank from the T3D's ~6x to");
    println!("  {ratio:.2}x, but it did not close.");
    println!("* *Strided remote beats strided local* (the paper's T3D finding 3");
    println!("  inversion): at stride 8 the remote fetch path outruns the local");
    println!("  hierarchy, because word-granular fetches through the deep request");
    println!("  window skip the local line-fill penalty.");
    println!();
    println!("**smp16** (many-core single-board SMP in the spirit of the SPARC T3-4's");
    println!("throughput cores) stresses the 8400's model family at 4x the node count:");
    println!("sixteen in-order cores on one snooping bus. The bus stays far closer to");
    println!("uniform than any distributed machine in the zoo — which is exactly why");
    println!("the paper filed bus-based SMPs under \"global address space\" rather than");
    println!("\"message passing\".");
    println!();

    // ---------------------------------------------------------------- 8
    println!("## 8. Warm-path sweep throughput (BENCH_9, beyond the paper)");
    println!();
    println!("The warm execution path (DESIGN \u{a7}5e) \u{2014} run-granular scheduling with");
    println!("engine reuse, a per-process probe memo, and batched checkpoint fsyncs \u{2014}");
    println!("against the `--cold` path (fresh engine and full simulation per cell,");
    println!("fsync per write) on the reference `Grid::quick` (25 cells, fast limits),");
    println!("one thread, this host. Cells/sec, best-of-N, from `BENCH_9.json`");
    println!("(regenerate with `perf_baseline BENCH_9.json`):");
    println!();
    println!("| machine | cold | warm, first pass | warm, memoized | first-pass speedup | memoized speedup |");
    println!("|---|---:|---:|---:|---:|---:|");
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    let bench = std::fs::read_to_string(bench_path)
        .ok()
        .and_then(|t| gasnub_core::json::Json::parse(&t).ok())
        .expect("committed BENCH_9.json parses");
    for name in ["dec8400", "t3d", "t3e"] {
        let col = |key: &str| -> String {
            bench
                .get("machines")
                .and_then(|m| m.get(name))
                .and_then(|m| m.get(key))
                .and_then(|v| v.as_str())
                .expect("BENCH_9 column present")
                .to_string()
        };
        println!(
            "| {name} | {} | {} | {} | {}x | {}x |",
            col("cold_cells_per_sec_1t"),
            col("warm_first_cells_per_sec_1t"),
            col("warm_memo_cells_per_sec_1t"),
            col("warm_first_speedup_vs_cold"),
            col("warm_memo_speedup_vs_cold"),
        );
    }
    println!();
    println!("Three honest columns, because they answer different questions. *Cold* is");
    println!("the reproducibility anchor \u{2014} what a from-scratch survey costs. *Warm");
    println!("first pass* is the first sweep of a new spec in a process: every cell");
    println!("still simulates, the gain is engine reuse (the dec8400 spawn alone is");
    println!("~3 ms of tag-array construction) plus the stats-free measurement path.");
    println!("*Warm memoized* is every later pass \u{2014} `faults` and `trace` sessions");
    println!("revisiting grid cells, repeated sweeps in one process \u{2014} where probes");
    println!("are table lookups and throughput is bounded by checkpoint writes, not");
    println!("simulation. Versus the BENCH_7 baseline (per-cell fsync, cold-only");
    println!("engine-per-cell loop: 16.8 / 25.7 / 27.7 cells/s on this host class),");
    println!("even the first-pass column clears 4-7x and the steady state clears two");
    println!("orders of magnitude.");
    println!();
    println!("Identity is asserted, not assumed: warm checkpoints are byte-identical");
    println!("to `--cold` checkpoints at `--threads {{1,2,4}}` on every zoo machine");
    println!("(`tests/determinism.rs`), and installing a trace recorder bypasses the");
    println!("memo, costing ~3% per probe (the `trace_overhead_pct` column, measured");
    println!("paired at probe level) for a genuine re-simulation. The CI `perf-smoke`");
    println!("job re-measures the warm columns and fails on a >20% drop below the");
    println!("committed baseline; a failing check is re-measured up to twice so only a");
    println!(
        "drop that survives every attempt \u{2014} a real regression, not host noise \u{2014}"
    );
    println!("fails the job.");
    println!();

    // ---------------------------------------------------------------- 9
    println!("## 9. Analytic fast path: agreement and tiering (beyond the paper)");
    println!();
    println!("The ECM-style analytic backend (DESIGN \u{a7}5f) predicts a cell's bandwidth");
    println!("from spec-derived plateau anchors instead of simulating it \u{2014} but only");
    println!("where the model has demonstrated a flat plateau within half the");
    println!("machine's calibration tolerance. Cross-validation on the full reference");
    println!("grid (`Grid::quick`, 25 cells \u{d7} 7 ops) of **every** zoo machine, `--tier");
    println!("auto` against pure simulation (`tests/analytic.rs`; the CI");
    println!("`analytic-agreement` job uploads the residual surface as an artifact):");
    println!();
    println!("| machine | tolerance | analytic cells | max residual | mean residual |");
    println!("|---|---:|---:|---:|---:|");
    let zoo_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../machines/zoo");
    for name in ["dec8400", "t3d", "t3e", "custom", "numa2s", "smp16"] {
        let text =
            std::fs::read_to_string(format!("{zoo_dir}/{name}.toml")).expect("zoo spec readable");
        let spec = MachineSpec::from_spec_str(&text)
            .expect("zoo spec parses")
            .with_limits(MeasureLimits::fast());
        let tolerance = spec.calibration_tolerance().unwrap_or(0.15);
        let (count, max_err, sum_err) = analytic_residuals(&spec);
        println!(
            "| {name} | {:.0}% | {count} | {max_err:.2}% | {:.2}% |",
            tolerance * 100.0,
            sum_err / count.max(1) as f64,
        );
    }
    println!();
    println!("Every analytic-path cell agrees with full simulation well inside the");
    println!("machine's tolerance; every simulated-path cell is bit-identical by");
    println!("construction (the auto tier *is* the simulator there).");
    println!();
    println!("**The tiering decision boundary** is the interesting part. Cells whose");
    println!("working set sits inside a cache regime's window \u{2014} `[4\u{b7}cap_below,");
    println!("cap/2]`, or past `4\u{b7}cap_top` for memory \u{2014} ride the plateau the paper's");
    println!("figures show between the bandwidth cliffs, and the nearest anchor");
    println!("answers them. Cells in the *transition zones* (the cliffs themselves:");
    println!("working sets near a capacity boundary, where bandwidth is a mix of two");
    println!("regimes) are exactly where a plateau model must not speak \u{2014} they stay");
    println!("simulated. The dec8400's three-level hierarchy leaves the widest");
    println!("transition zones, the flat T3D trusts its entire grid minus unsupported");
    println!("rungs, and the modern `numa2s`/`smp16` specs sit in between. Fault");
    println!("plans, recorders and `--cold` force simulation categorically.");
    println!();
    println!("The payoff (`BENCH_9.json`, probe-level on trusted cells, one thread):");
    for name in ["dec8400", "t3d", "t3e"] {
        let col = |key: &str| -> String {
            bench
                .get("machines")
                .and_then(|m| m.get(name))
                .and_then(|m| m.get(key))
                .and_then(|v| v.as_str())
                .expect("BENCH_9 column present")
                .to_string()
        };
        let trusted = bench
            .get("machines")
            .and_then(|m| m.get(name))
            .and_then(|m| m.get("analytic_trusted_cells"))
            .map(|v| v.render())
            .expect("BENCH_9 column present");
        println!(
            "{name} answers {} trusted cells at {} cells/s \u{2014} {}x the memoized",
            trusted,
            col("analytic_cells_per_sec_1t"),
            col("analytic_speedup_vs_memo"),
        );
        println!("steady state's {};", col("warm_memo_cells_per_sec_1t"),);
    }
    println!("two orders of magnitude past the 100x target, because a trusted cell is");
    println!("one hash lookup and a nearest-anchor comparison instead of a simulated");
    println!("measurement pass.");
    println!();

    // ---------------------------------------------------------------- 10
    println!("## 10. Known deviations");
    println!();
    println!("* The DEC 8400 contiguous local copy measures ~76 MB/s against the paper's");
    println!("  ~57 MB/s (tolerance ±35%): the model under-charges the write-back traffic");
    println!("  of the destination stream relative to the real machine.");
    println!("* The T3D contiguous-load/strided-store copy lands at ~52 MB/s against the");
    println!("  quoted \"up to 70 MByte/s\" (tolerance ±30%): the shared-DRAM-pipe model");
    println!("  charges the read stream slightly more interference than the hardware did.");
    println!("* The T3E streams-off ablation lands near ~150-200 MB/s against the");
    println!("  footnote's ~120 MB/s test vehicle — the footnote machine likely also");
    println!("  lacked other tuning; the >2x effect of the stream buffers reproduces.");
    println!("* Fig 1's L1/L2 ridge fall-off at very large strides is a micro-benchmark");
    println!("  measurement artifact the paper itself attributes to loop overhead (\"the");
    println!("  diagram rather reflects what is achievable by a compiler\"); the simulator");
    println!("  reports the hardware-achievable plateau instead.");
}

/// Analytic-vs-simulated residuals over the reference grid: (analytic
/// cell count, max residual %, summed residual %) \u{2014} the same sweep the
/// agreement suite asserts on, reported here as magnitudes.
fn analytic_residuals(spec: &MachineSpec) -> (usize, f64, f64) {
    let tiered = TieredSpec::new(spec.clone(), ProbeTier::Auto)
        .expect("zoo machines always carry an analytic model");
    let mut auto = tiered.spawn_engine().expect("zoo machines always build");
    let mut sim = spec.spawn_engine().expect("zoo machines always build");
    let grid = Grid::quick();
    let (mut count, mut max_err, mut sum_err) = (0usize, 0.0f64, 0.0f64);
    for op in SweepOp::all() {
        for &ws in &grid.working_sets {
            for &stride in &grid.strides {
                let req = op.request(ws, stride);
                let a = dispatch(&mut auto, &req);
                if auto.last_path() != ProbePath::Analytic {
                    continue;
                }
                let (Some(a), Some(s)) = (a.measurement, dispatch(&mut sim, &req).measurement)
                else {
                    continue;
                };
                let err = if s.mb_s > 0.0 {
                    (a.mb_s - s.mb_s).abs() / s.mb_s * 100.0
                } else {
                    0.0
                };
                count += 1;
                max_err = max_err.max(err);
                sum_err += err;
            }
        }
    }
    (count, max_err, sum_err)
}
