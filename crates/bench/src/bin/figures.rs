//! Regenerates the paper's figures from the command line.
//!
//! ```text
//! cargo run --release -p gasnub-bench --bin figures -- list
//! cargo run --release -p gasnub-bench --bin figures -- fig03 fig15
//! cargo run --release -p gasnub-bench --bin figures -- all --quick
//! cargo run --release -p gasnub-bench --bin figures -- ablations
//! cargo run --release -p gasnub-bench --bin figures -- all --csv results/
//! ```

use std::io::Write;
use std::path::PathBuf;

use gasnub_bench::{ablations, all_figures, figure_by_id};

fn usage() -> ! {
    eprintln!(
        "usage: figures <list | all | ablations | figNN...> [--quick] [--csv DIR]\n\
         \n\
         list       print the figure index\n\
         all        regenerate every figure\n\
         ablations  run the ablation studies\n\
         figNN      regenerate one figure (fig01 … fig17)\n\
         --quick    reduced grids (seconds instead of minutes)\n\
         --csv DIR  also write <DIR>/<figNN>.csv"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| PathBuf::from(args.get(i + 1).cloned().unwrap_or_else(|| usage())));
    // Drop flags and the --csv directory operand; what remains selects work.
    let mut selectors: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--csv" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        selectors.push(a.clone());
    }
    if selectors.is_empty() {
        usage();
    }

    if selectors.iter().any(|s| s == "list") {
        for f in all_figures() {
            println!("{:<7} {}\n        expect: {}", f.id, f.title, f.expectation);
        }
        return;
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
    }

    let run_ablations = selectors.iter().any(|s| s == "ablations");
    let figures = if selectors.iter().any(|s| s == "all") {
        all_figures()
    } else {
        selectors
            .iter()
            .filter(|s| *s != "ablations" && *s != "extras")
            .map(|s| {
                figure_by_id(s).unwrap_or_else(|| {
                    eprintln!("unknown figure: {s}");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for f in figures {
        eprintln!("[{}] {} …", f.id, f.title);
        let out = f.run(quick);
        println!("---- {} — {}", f.id, f.title);
        println!("expectation: {}", f.expectation);
        println!("{}", out.text);
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", f.id));
            let mut file = std::fs::File::create(&path).expect("create csv file");
            file.write_all(out.csv.as_bytes()).expect("write csv");
            eprintln!("[{}] wrote {}", f.id, path.display());
        }
    }

    if run_ablations {
        eprintln!("[ablations] running …");
        let all = ablations::run_all();
        println!("---- ablations");
        println!("{}", ablations::render(&all));
    }

    if selectors.iter().any(|s| s == "extras") {
        eprintln!("[extras] running …");
        println!("---- extras");
        println!("{}", gasnub_bench::extras::comparison_table());
        println!("{}", gasnub_bench::extras::gather_curves());
        println!("{}", gasnub_bench::extras::fft_scaling(256));
        println!("{}", gasnub_bench::extras::t3e_fetch_rewrite(256));
        println!("{}", gasnub_bench::extras::false_sharing());
    }
}
