//! Load-tests the characterization server and records BENCH_10
//! (`BENCH_10.json`): serving throughput and latency percentiles under a
//! seeded mixed hit/miss request stream, plus the BENCH_9-comparable
//! offline warm-path columns so the serving PR's perf gate can prove the
//! warm sweep path did not regress.
//!
//! Usage: `serve_load [--clients N] [--requests N] [--quick]
//!         [--check BASELINE.json] [OUT.json]`
//!
//! The server runs in-process on an ephemeral port with a scratch state
//! directory. Each client thread replays a seeded stream of requests —
//! mostly repeated probes (warm memo hits), some shared small-grid sweeps
//! (cache hits and coalesces after the first), and a trickle of
//! unique-grid sweeps (guaranteed misses) — and records one wall-clock
//! latency per request. Percentiles are computed over the merged stream.
//!
//! `--check` compares the fresh offline warm columns against a committed
//! BENCH_9 baseline and exits non-zero when one drops more than 20% below
//! it (same floor and retry discipline as `perf_baseline --check`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use gasnub_core::json::Json;
use gasnub_core::{Grid, ResilientSweep, SweepOp};
use gasnub_machines::{MachineSpec, MeasureLimits, TransferEngine};
use gasnub_memsim::rng::Rng;
use gasnub_serve::{ServeConfig, Server};

/// The perf gate: fail `--check` when a guarded warm column drops below
/// this fraction of the committed baseline.
const CHECK_FLOOR: f64 = 0.8;

/// The offline columns the serving PR must not regress.
const GUARDED: [&str; 2] = ["warm_first_cells_per_sec_1t", "warm_memo_cells_per_sec_1t"];

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gasnub-serve-load-{}-{tag}", std::process::id()))
}

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("server accepts connections");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: gasnub\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .expect("request writes");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response reads");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line parses");
    (status, body.to_string())
}

const MACHINES: [&str; 3] = ["t3d", "t3e", "dec8400"];

/// One seeded request: the JSON body and which endpoint it targets.
/// ~70% probes over a small key space (warm memo hits after the first
/// pass), ~20% sweeps of two shared grids (cache hits / coalesces),
/// ~10% sweeps of a grid unique to (client, index) — guaranteed misses.
fn next_request(rng: &mut Rng, client: u64, index: u64) -> (&'static str, String) {
    let machine = MACHINES[rng.gen_range(0, MACHINES.len() as u64) as usize];
    let draw = rng.gen_range(0, 10);
    if draw < 7 {
        let ws = 2048u64 << rng.gen_range(0, 5); // 2K..32K
        let stride = 1u64 << rng.gen_range(0, 4); // 1..8
        (
            "/v1/probe",
            format!(r#"{{"machine":"{machine}","op":"load","ws_bytes":{ws},"stride":{stride}}}"#),
        )
    } else if draw < 9 {
        // One of two shared grids: computed once, then memory hits.
        let grid = if rng.gen_bool(0.5) {
            r#"{"strides":[1,8],"working_sets":[2048,32768]}"#
        } else {
            r#"{"strides":[1,2,64],"working_sets":[2048,32768]}"#
        };
        (
            "/v1/sweep",
            format!(r#"{{"grid":{grid},"machine":"{machine}","op":"store"}}"#),
        )
    } else {
        // A grid no other request asks for: always a fresh computation.
        let k = client * 10_000 + index;
        (
            "/v1/sweep",
            format!(
                r#"{{"grid":{{"strides":[1,{}],"working_sets":[2048,{}]}},"machine":"{machine}","op":"load"}}"#,
                2 + k % 61,
                32_768 + 1024 * (k % 97)
            ),
        )
    }
}

/// Latency percentile (already-sorted input), in microseconds.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the load phase: boots the server, fans out `clients` threads
/// replaying `requests` seeded requests each, merges latencies.
fn load_phase(clients: u64, requests: u64) -> Json {
    let state_dir = scratch("state");
    let _ = std::fs::remove_dir_all(&state_dir);
    let server = Server::bind(ServeConfig::new("127.0.0.1:0", &state_dir)).expect("server binds");
    let addr = server.local_addr();
    let server = std::thread::spawn(move || server.run());

    eprintln!("load: {clients} clients x {requests} requests against {addr} ...");
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            std::thread::spawn(move || {
                let mut rng = Rng::new(0xBEEF).fork(client);
                let mut latencies = Vec::with_capacity(requests as usize);
                let (mut probes, mut sweeps) = (0u64, 0u64);
                for index in 0..requests {
                    let (path, body) = next_request(&mut rng, client, index);
                    if path == "/v1/probe" {
                        probes += 1;
                    } else {
                        sweeps += 1;
                    }
                    let t0 = Instant::now();
                    let (status, response) = http(addr, "POST", path, &body);
                    latencies.push(t0.elapsed().as_micros() as u64);
                    assert_eq!(status, 200, "load request failed: {body} -> {response}");
                }
                (latencies, probes, sweeps)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let (mut probes, mut sweeps) = (0u64, 0u64);
    for worker in workers {
        let (lat, p, s) = worker.join().expect("client thread joins");
        latencies.extend(lat);
        probes += p;
        sweeps += s;
    }
    let wall = start.elapsed().as_secs_f64();

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    let _ = http(addr, "POST", "/v1/shutdown", "");
    let report = server.join().expect("server thread joins");
    let _ = std::fs::remove_dir_all(&state_dir);

    let counters = Json::parse(&metrics).expect("metrics is valid JSON");
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let computed = counter("serve.sweeps_computed");
    let reused = counter("serve.sweep_cache_hits_memory")
        + counter("serve.sweep_cache_hits_disk")
        + counter("serve.sweeps_coalesced");
    eprintln!(
        "load: {total} requests in {wall:.2}s ({:.1} req/s), \
         {computed} surfaces computed, {reused} reused",
        total as f64 / wall
    );
    // The shutdown report and /metrics must agree on what was served.
    assert_eq!(report.get("serve.sweeps"), counter("serve.sweeps"));

    Json::object([
        ("clients", Json::U64(clients)),
        ("requests", Json::U64(total)),
        ("probes", Json::U64(probes)),
        ("sweeps", Json::U64(sweeps)),
        ("sweeps_computed", Json::U64(computed)),
        ("sweeps_reused", Json::U64(reused)),
        ("memo_hits", Json::U64(counter("memo.hits"))),
        (
            "throughput_req_per_sec",
            Json::Str(format!("{:.1}", total as f64 / wall)),
        ),
        ("p50_micros", Json::U64(percentile(&latencies, 50.0))),
        ("p95_micros", Json::U64(percentile(&latencies, 95.0))),
        ("p99_micros", Json::U64(percentile(&latencies, 99.0))),
        (
            "queue_depth_peak",
            Json::U64(counter("serve.queue_depth_peak")),
        ),
    ])
}

/// One complete 1-thread resilient sweep; returns cells/sec (the BENCH_9
/// definition: default runner, checkpoint write per cell, fsync batched).
fn sweep_rate(spec: &MachineSpec, grid: &Grid) -> f64 {
    let path = scratch("offline.json");
    let _ = std::fs::remove_file(&path);
    let start = Instant::now();
    let probe = |m: &mut TransferEngine, ws: u64, s: u64| SweepOp::LocalLoad.measure(m, ws, s);
    let outcome = ResilientSweep::new(&path)
        .run_parallel("serve-load offline reference", grid, 1, spec, probe)
        .expect("the offline sweep must succeed");
    let secs = start.elapsed().as_secs_f64();
    assert!(outcome.is_complete(), "the offline sweep must complete");
    let _ = std::fs::remove_file(&path);
    grid.cells() as f64 / secs
}

fn best_rate(rounds: u32, spec: &MachineSpec, grid: &Grid, prep: impl Fn()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..rounds {
        prep();
        best = best.max(sweep_rate(spec, grid));
    }
    best
}

/// The BENCH_9-comparable offline warm columns, re-measured so `--check`
/// can prove the serving layer left the warm sweep path intact.
fn offline_columns(grid: &Grid) -> Json {
    let warm_fresh = || {
        gasnub_memsim::set_cold_path(false);
        gasnub_machines::memo::clear();
    };
    let warm_memo = || gasnub_memsim::set_cold_path(false);
    let mut machines = std::collections::BTreeMap::new();
    for (label, spec) in [
        ("dec8400", MachineSpec::dec8400()),
        ("t3d", MachineSpec::t3d()),
        ("t3e", MachineSpec::t3e()),
    ] {
        let spec = spec.with_limits(MeasureLimits::fast());
        eprintln!("offline: measuring {label} ({} cells) ...", grid.cells());
        // More rounds than perf_baseline uses: a memoized sweep of this
        // grid takes single-digit milliseconds, so the best-of statistic
        // needs a bigger sample to shake off scheduler noise before the
        // 20%-of-BENCH_9 gate judges it.
        let warm_first = best_rate(6, &spec, grid, warm_fresh);
        // The memo is populated by the warm-first rounds; these rounds are
        // all steady-state hits.
        let memoized = best_rate(10, &spec, grid, warm_memo);
        machines.insert(
            label.to_string(),
            Json::object([
                (
                    "warm_first_cells_per_sec_1t",
                    Json::Str(format!("{warm_first:.1}")),
                ),
                (
                    "warm_memo_cells_per_sec_1t",
                    Json::Str(format!("{memoized:.1}")),
                ),
            ]),
        );
    }
    Json::Object(machines)
}

/// Compares fresh offline columns against a committed BENCH_9 baseline;
/// returns the number of guarded columns below [`CHECK_FLOOR`].
fn check_against(machines: &Json, baseline_path: &str) -> usize {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("serve-check: no baseline at {baseline_path}; skipping (warn-only first run)");
        return 0;
    };
    let Ok(baseline) = Json::parse(&text) else {
        eprintln!("serve-check: baseline {baseline_path} is not valid JSON; skipping");
        return 0;
    };
    let column = |doc: &Json, machine: &str, key: &str| -> Option<f64> {
        doc.get(machine)?.get(key)?.as_str()?.parse().ok()
    };
    let mut regressions = 0;
    for machine in MACHINES {
        for key in GUARDED {
            let was = baseline
                .get("machines")
                .and_then(|m| column(m, machine, key));
            let now = column(machines, machine, key);
            let (Some(was), Some(now)) = (was, now) else {
                eprintln!("serve-check: {machine}.{key} missing; skipping");
                continue;
            };
            let floor = was * CHECK_FLOOR;
            if now < floor {
                eprintln!(
                    "serve-check: REGRESSION {machine}.{key}: {now:.1} < {floor:.1} \
                     (baseline {was:.1}, floor {:.0}%)",
                    CHECK_FLOOR * 100.0
                );
                regressions += 1;
            } else {
                eprintln!("serve-check: ok {machine}.{key}: {now:.1} vs baseline {was:.1}");
            }
        }
    }
    regressions
}

fn main() {
    let mut clients = 4u64;
    let mut requests = 150u64;
    let mut check: Option<String> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a number")
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number")
            }
            "--quick" => {
                clients = 2;
                requests = 25;
            }
            "--check" => check = Some(args.next().expect("--check needs a baseline path")),
            other => out = Some(other.to_string()),
        }
    }

    let grid = Grid::quick();
    let serve = load_phase(clients, requests);
    let mut machines = offline_columns(&grid);

    if let Some(baseline) = &check {
        // Best-of-N absorbs most host noise; a real regression is stable,
        // noise is not — re-measure a failing check up to twice.
        let mut regressions = check_against(&machines, baseline);
        for attempt in 0..2 {
            if regressions == 0 {
                break;
            }
            eprintln!(
                "serve-check: {regressions} regression(s); re-measuring (retry {})",
                attempt + 1
            );
            machines = offline_columns(&grid);
            regressions = check_against(&machines, baseline);
        }
        if regressions > 0 {
            eprintln!("serve-check: {regressions} regression(s) after retries");
            std::process::exit(1);
        }
        eprintln!("serve-check: pass");
    }

    let report = Json::object([
        ("bench", Json::U64(10)),
        (
            "grid",
            Json::object([
                ("cells", Json::U64(grid.cells() as u64)),
                (
                    "strides",
                    Json::Array(grid.strides.iter().map(|&s| Json::U64(s)).collect()),
                ),
                (
                    "working_sets",
                    Json::Array(grid.working_sets.iter().map(|&w| Json::U64(w)).collect()),
                ),
            ]),
        ),
        ("threads", Json::U64(1)),
        ("serve", serve),
        ("machines", machines),
    ]);
    let rendered = format!("{}\n", report.render());
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("output must be writable");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
