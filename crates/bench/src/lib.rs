#![warn(missing_docs)]

//! # gasnub-bench
//!
//! The figure-regeneration harness: one entry per figure of the paper's
//! evaluation (figs 1-17) plus the ablation studies called out in
//! `DESIGN.md`. Each [`Figure`] renders the same rows/series the paper
//! reports, as an aligned text table plus CSV.
//!
//! Run `cargo run -p gasnub-bench --bin figures -- list` for the index, or
//! `… -- all --quick` to regenerate everything on reduced grids.

pub mod ablations;
pub mod extras;
pub mod figures;

pub use figures::{all_figures, figure_by_id, Figure, FigureOutput};
