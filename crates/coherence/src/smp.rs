//! A complete bus-based, cache-coherent SMP (the DEC 8400 shape).
//!
//! [`SnoopingSmp`] owns one [`MemoryEngine`] per processor, the shared
//! split-transaction [`Bus`], the shared home DRAM, and a [`Directory`] of
//! line states. It implements the paper's remote micro-benchmark flow
//! (§5.2): "one processor is producing data by storing it while another
//! processor retrieves the same data elements. To ensure race-free behavior,
//! reading takes place after the two processors reached a synchronization
//! point. We measure the transfer bandwidth of the second processor while it
//! is pulling the data over."

use gasnub_interconnect::bus::{Bus, BusConfig, BusJitterConfig};
use gasnub_memsim::access::Access;
use gasnub_memsim::config::NodeConfig;
use gasnub_memsim::dram::{Dram, DramConfig};
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::stats::RunStats;
use gasnub_memsim::{Addr, ConfigError, WORD_BYTES};
use gasnub_trace::CounterSet;

use crate::directory::Directory;

/// Coherence-protocol cost parameters (CPU cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Fixed protocol latency per coherent miss beyond bus occupancy and the
    /// supplier (miss detection, snoop response collection).
    pub read_overhead_cycles: f64,
    /// Supplier latency when a dirty peer cache intervenes (cache-to-cache).
    pub cache_to_cache_cycles: f64,
    /// Outstanding coherent misses that overlap; divides the remote portion
    /// of a pull. The 8400's 21164 sustains very limited overlap on
    /// coherent misses.
    pub pull_overlap: f64,
}

impl ProtocolConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for negative costs or an overlap below one.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.read_overhead_cycles < 0.0 || self.cache_to_cache_cycles < 0.0 {
            return Err(ConfigError::new(
                "coherence protocol",
                "cycle costs must be non-negative",
            ));
        }
        if self.pull_overlap < 1.0 {
            return Err(ConfigError::new(
                "coherence protocol",
                "pull overlap must be at least 1.0",
            ));
        }
        Ok(())
    }
}

/// Static description of the whole SMP.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpConfig {
    /// Number of processors on the bus.
    pub nodes: usize,
    /// Per-processor node configuration (CPU + caches + the DRAM path used
    /// for *local* accesses, whose costs already include crossing the bus).
    pub node: NodeConfig,
    /// The shared system bus.
    pub bus: BusConfig,
    /// Protocol costs.
    pub protocol: ProtocolConfig,
    /// The home memory banks used to supply coherent misses that no cache
    /// intervenes for.
    pub home_dram: DramConfig,
}

impl SmpConfig {
    /// Validates every component.
    ///
    /// # Errors
    ///
    /// Propagates component validation; rejects a zero node count.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::new("smp", "node count must be at least 1"));
        }
        self.node.validate()?;
        self.bus.validate()?;
        self.protocol.validate()?;
        self.home_dram.validate()
    }
}

/// Runtime state of the snooping SMP.
#[derive(Debug)]
pub struct SnoopingSmp {
    config: SmpConfig,
    engines: Vec<MemoryEngine>,
    bus: Bus,
    home: Dram,
    directory: Directory,
}

impl SnoopingSmp {
    /// Builds the SMP, validating all configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SmpConfig::validate`] errors.
    pub fn new(config: SmpConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let engines = (0..config.nodes)
            .map(|_| MemoryEngine::try_new(config.node.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let bus = Bus::new(config.bus.clone())?;
        let home = Dram::new(config.home_dram.clone())?;
        let line_bytes = config.node.hierarchy.last_level_line_bytes();
        let directory = Directory::new(config.nodes, line_bytes);
        Ok(SnoopingSmp {
            config,
            engines,
            bus,
            home,
            directory,
        })
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SmpConfig {
        &self.config
    }

    /// Number of processors.
    pub fn nodes(&self) -> usize {
        self.engines.len()
    }

    /// Borrow one processor's engine mutably (local benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn engine_mut(&mut self, node: usize) -> &mut MemoryEngine {
        &mut self.engines[node]
    }

    /// Borrow one processor's engine (probing).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn engine(&self, node: usize) -> &MemoryEngine {
        &self.engines[node]
    }

    /// The directory of line states (inspection/tests).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Total coherent bus transactions so far.
    pub fn bus_transactions(&self) -> u64 {
        self.bus.transactions()
    }

    /// Exports the shared-fabric counters into `out`: bus transactions and
    /// stalls plus directory MESI transitions and peer invalidations.
    pub fn export_counters(&self, out: &mut CounterSet) {
        self.bus.export_counters(out);
        self.directory.export_counters(out);
    }

    /// Attaches (or removes) deterministic arbitration-stall jitter on the
    /// shared bus — the degraded-arbiter fault model. The jitter stream is
    /// indexed by transaction count, so a [`SnoopingSmp::flush`] restarts it
    /// and repeated runs stay reproducible.
    ///
    /// # Errors
    ///
    /// Propagates [`BusJitterConfig::validate`] errors.
    pub fn set_bus_jitter(&mut self, jitter: Option<BusJitterConfig>) -> Result<(), ConfigError> {
        self.bus.set_jitter(jitter)
    }

    /// Flushes all caches, the bus, home memory and the directory.
    pub fn flush(&mut self) {
        for e in &mut self.engines {
            e.flush();
        }
        self.bus.reset();
        self.home.reset();
        self.directory.clear();
    }

    /// Runs a purely local trace on `node` (no coherence traffic is modelled
    /// because the paper's local benchmarks run with "other processors
    /// idle" on untouched data).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn run_local(&mut self, node: usize, trace: impl IntoIterator<Item = Access>) -> RunStats {
        self.engines[node].run_trace(trace)
    }

    /// Runs a producer store pass on `node`, recording ownership in the
    /// directory (the "producing data by storing it" half of §5.2).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn producer_store(
        &mut self,
        node: usize,
        trace: impl IntoIterator<Item = Access>,
    ) -> RunStats {
        let line_bytes = self.directory.line_bytes();
        let mut last_line = u64::MAX;
        let trace = trace.into_iter().inspect(|a| {
            debug_assert!(a.kind.is_write(), "producer traces must be store passes");
        });
        // Record directory writes line-granularly while running the trace.
        let mut accesses: Vec<Access> = Vec::new();
        for a in trace {
            let line = a.addr / line_bytes;
            if line != last_line {
                self.directory.record_write(node, a.addr);
                last_line = line;
            }
            accesses.push(a);
        }
        self.engines[node].run_trace(accesses)
    }

    /// Is the line containing `addr` still dirty in `node`'s caches?
    fn node_holds_dirty(&self, node: usize, addr: Addr) -> bool {
        let h = self.engines[node].hierarchy();
        let mut level = 0;
        while let Some(c) = h.cache(level) {
            if c.probe_dirty(addr) {
                return true;
            }
            level += 1;
        }
        false
    }

    /// Runs a consumer pull: `consumer` reads data previously produced by
    /// other processors (after a synchronization point). Every consumer
    /// cache miss becomes a coherent bus transaction supplied by the dirty
    /// owner's cache or by home memory.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn consumer_pull(
        &mut self,
        consumer: usize,
        trace: impl IntoIterator<Item = Access>,
    ) -> RunStats {
        let line_bytes = self.directory.line_bytes();
        let cpu = self.engines[consumer].cpu().clone();
        let mut stats = RunStats::default();
        self.engines[consumer].hierarchy_mut().reset_window_stats();
        let mut now = self.engines[consumer].now();
        let start = now;

        // Pre-computed per access to keep the borrow ranges disjoint.
        let mut cache_supplies = 0u64;
        let mut home_supplies = 0u64;

        let accesses: Vec<Access> = trace.into_iter().collect();
        for access in &accesses {
            let addr = access.addr;

            if access.kind.is_write() {
                // Local store of the copy loop. The consumer is latency
                // bound on its coherent misses, so the store's own memory
                // traffic retires entirely under that slack (fig 12:
                // contiguous remote copies run at the pure pull rate); only
                // the issue slot is charged, but the tag state still updates.
                let issue = cpu.store_issue_cycles + cpu.loop_overhead_cycles;
                let _ = self.engines[consumer].hierarchy_mut().store(addr, now);
                now += issue;
                stats.accesses += 1;
                stats.writes += 1;
                continue;
            }

            let owner_dirty = match self.directory.dirty_owner(addr) {
                Some(o) if o != consumer => self.node_holds_dirty(o, addr),
                _ => false,
            };

            let issue = cpu.load_issue_cycles + cpu.loop_overhead_cycles;
            let bus = &mut self.bus;
            let home = &mut self.home;
            let protocol = &self.config.protocol;
            let mut fetched_remotely = false;
            let mut remote_fill = |t: f64| {
                fetched_remotely = true;
                let bus_cycles = bus.transaction(line_bytes, t);
                let supply = if owner_dirty {
                    protocol.cache_to_cache_cycles
                } else {
                    home.access(addr, t).cycles
                };
                (bus_cycles + supply + protocol.read_overhead_cycles) / protocol.pull_overlap
            };
            let cost =
                self.engines[consumer]
                    .hierarchy_mut()
                    .load_remote(addr, now, &mut remote_fill);
            now += issue + cost.cycles;
            if fetched_remotely {
                if owner_dirty {
                    cache_supplies += 1;
                } else {
                    home_supplies += 1;
                }
                self.directory.record_read(consumer, addr);
            }
            stats.accesses += 1;
            stats.reads += 1;
        }

        stats.cycles = now - start;
        stats.bytes = stats.accesses * WORD_BYTES;
        self.engines[consumer]
            .hierarchy_mut()
            .export_stats(&mut stats);
        // Re-purpose the DRAM counters for supplier provenance.
        stats.dram_accesses = cache_supplies + home_supplies;
        stats.dram_row_hits = 0;
        stats.dram_streamed_fills = cache_supplies;
        // Advance the consumer's private clock past this run.
        self.engines[consumer].hierarchy_mut().reset_window_stats();
        stats
    }

    /// Bandwidth of a pull run in MB/s.
    pub fn bandwidth_mb_s(&self, consumer: usize, stats: &RunStats) -> f64 {
        self.engines[consumer]
            .cpu()
            .bandwidth_mb_s(stats.bytes as f64, stats.cycles)
    }

    /// One coherent store by `node`: pays bus + invalidation costs whenever
    /// another processor holds a valid copy of the line (write miss /
    /// upgrade), then takes exclusive ownership.
    fn coherent_store(&mut self, node: usize, addr: Addr, now: f64) -> f64 {
        let mut cycles = 0.0;
        let others_valid = self.directory.others_have_copy(node, addr);
        if others_valid {
            let owner_dirty = match self.directory.dirty_owner(addr) {
                Some(o) if o != node => self.node_holds_dirty(o, addr),
                _ => false,
            };
            let line_bytes = self.directory.line_bytes();
            cycles += self.bus.transaction(line_bytes, now);
            cycles += self.config.protocol.read_overhead_cycles;
            if owner_dirty {
                cycles += self.config.protocol.cache_to_cache_cycles;
            }
            // Invalidate every other processor's copy.
            for i in 0..self.engines.len() {
                if i != node {
                    self.engines[i].hierarchy_mut().invalidate(addr);
                }
            }
        }
        let local = self.engines[node].hierarchy_mut().store(addr, now + cycles);
        cycles += self.engines[node].cpu().store_issue_cycles + local.cycles;
        self.directory.record_write(node, addr);
        cycles
    }

    /// The false-sharing experiment of §1 ("it is advisable … to adjust the
    /// granularity of access so that false sharing is eliminated"): P0 and
    /// P1 alternately store to two words `words_apart` words apart. When
    /// both words share a cache line, every store invalidates the other
    /// processor's copy and the line ping-pongs across the bus; one line
    /// apart, both processors write locally. Returns the average cycles per
    /// store.
    ///
    /// # Panics
    ///
    /// Panics if the system has fewer than two processors or `iterations`
    /// is zero.
    pub fn alternating_store_cycles(&mut self, iterations: u64, words_apart: u64) -> f64 {
        assert!(
            self.engines.len() >= 2,
            "the experiment needs two processors"
        );
        assert!(iterations > 0, "at least one iteration");
        self.flush();
        let mut now = 0.0;
        for _ in 0..iterations {
            now += self.coherent_store(0, 0, now);
            now += self.coherent_store(1, words_apart * 8, now);
        }
        now / (2 * iterations) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_memsim::config::presets;
    use gasnub_memsim::trace::{StorePass, StridedPass};

    fn smp() -> SnoopingSmp {
        let cfg = SmpConfig {
            nodes: 2,
            node: presets::tiny_test_node(),
            bus: BusConfig {
                bus_clock_mhz: 25.0,
                cpu_clock_mhz: 100.0,
                width_bytes: 32,
                arbitration_bus_cycles: 0.5,
                snoop_bus_cycles: 0.5,
                burst: true,
            },
            protocol: ProtocolConfig {
                read_overhead_cycles: 30.0,
                cache_to_cache_cycles: 20.0,
                pull_overlap: 1.0,
            },
            home_dram: presets::tiny_test_node().hierarchy.dram,
        };
        SnoopingSmp::new(cfg).unwrap()
    }

    #[test]
    fn construction_validates() {
        let mut cfg = smp().config().clone();
        cfg.nodes = 0;
        assert!(SnoopingSmp::new(cfg).is_err());
    }

    #[test]
    fn remote_pull_is_much_slower_than_local_read() {
        let words = 256 * 1024 / 8; // larger than all caches
        let mut sys = smp();
        // Local: P0 reads its own (primed) data.
        let local_pass = StridedPass::new(0, words, 1);
        let _ = sys.run_local(0, local_pass.clone());
        let local = sys.run_local(0, local_pass);
        let local_bw = sys.bandwidth_mb_s(0, &local);

        // Remote: P1 produces, P0 pulls.
        let mut sys = smp();
        sys.producer_store(1, StorePass::new(0, words, 1));
        let remote = sys.consumer_pull(0, StridedPass::new(0, words, 1));
        let remote_bw = sys.bandwidth_mb_s(0, &remote);

        assert!(
            remote_bw < local_bw / 2.0,
            "coherent pull must be far below local read: {remote_bw} vs {local_bw}"
        );
        assert!(sys.bus_transactions() > 0);
    }

    #[test]
    fn small_working_set_is_supplied_cache_to_cache() {
        // 16 KB fits the producer's 64 KB L2, so lines stay Modified there.
        let words = 16 * 1024 / 8;
        let mut sys = smp();
        sys.producer_store(1, StorePass::new(0, words, 1));
        let stats = sys.consumer_pull(0, StridedPass::new(0, words, 1));
        assert!(
            stats.dram_streamed_fills > 0,
            "expected cache-to-cache supplies"
        );
        assert_eq!(
            stats.dram_streamed_fills, stats.dram_accesses,
            "all supplies from the dirty owner"
        );
    }

    #[test]
    fn large_working_set_is_supplied_by_home_memory() {
        // 1 MB evicts the producer's caches almost entirely.
        let words = 1024 * 1024 / 8;
        let mut sys = smp();
        sys.producer_store(1, StorePass::new(0, words, 1));
        let stats = sys.consumer_pull(0, StridedPass::new(0, words, 1));
        let cache_frac = stats.dram_streamed_fills as f64 / stats.dram_accesses as f64;
        assert!(
            cache_frac < 0.2,
            "most supplies must come from home memory, got {cache_frac}"
        );
    }

    #[test]
    fn strided_pull_is_slower_than_contiguous_pull() {
        let words = 512 * 1024 / 8;
        let run = |stride: u64| {
            let mut sys = smp();
            sys.producer_store(1, StorePass::new(0, words, 1));
            let stats = sys.consumer_pull(0, StridedPass::new(0, words, stride));
            sys.bandwidth_mb_s(0, &stats)
        };
        let contig = run(1);
        let strided = run(16);
        assert!(
            contig > 3.0 * strided,
            "line overfetch must crush strided pulls: {contig} vs {strided}"
        );
    }

    #[test]
    fn consumer_rereads_hit_locally() {
        let words = 8 * 1024 / 8; // fits consumer caches
        let mut sys = smp();
        sys.producer_store(1, StorePass::new(0, words, 1));
        let first = sys.consumer_pull(0, StridedPass::new(0, words, 1));
        let second = sys.consumer_pull(0, StridedPass::new(0, words, 1));
        assert!(
            second.cycles < first.cycles / 2.0,
            "pulled data must now be cached locally"
        );
        assert_eq!(second.dram_accesses, 0, "no bus traffic on re-read");
    }

    #[test]
    fn false_sharing_makes_lines_ping_pong() {
        let mut sys = smp();
        // Same 64-byte line: every store invalidates the peer's copy.
        let shared = sys.alternating_store_cycles(200, 1);
        // One line apart: after warmup both processors own their line.
        let private = sys.alternating_store_cycles(200, 64 / 8);
        assert!(
            shared > 5.0 * private,
            "false sharing must ping-pong: {shared} vs {private} cycles/store"
        );
    }

    #[test]
    fn bus_jitter_slows_pulls_deterministically() {
        let words = 64 * 1024 / 8;
        let run = |jitter: Option<BusJitterConfig>| {
            let mut sys = smp();
            sys.set_bus_jitter(jitter).unwrap();
            sys.producer_store(1, StorePass::new(0, words, 1));
            let stats = sys.consumer_pull(0, StridedPass::new(0, words, 1));
            stats.cycles
        };
        let clean = run(None);
        let jitter = BusJitterConfig {
            amplitude_bus_cycles: 8.0,
            seed: 42,
        };
        let jittered = run(Some(jitter.clone()));
        assert!(
            jittered > clean,
            "arbitration jitter must cost cycles: {jittered} vs {clean}"
        );
        assert_eq!(jittered, run(Some(jitter)), "same seed, same cycle count");
    }

    #[test]
    fn flush_restores_cold_state() {
        let words = 8 * 1024 / 8;
        let mut sys = smp();
        sys.producer_store(1, StorePass::new(0, words, 1));
        let _ = sys.consumer_pull(0, StridedPass::new(0, words, 1));
        sys.flush();
        assert_eq!(sys.directory().tracked_lines(), 0);
        assert_eq!(sys.bus_transactions(), 0);
    }
}
