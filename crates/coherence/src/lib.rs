#![warn(missing_docs)]

//! # gasnub-coherence
//!
//! MESI-style snooping cache coherence for the bus-based DEC 8400 model.
//!
//! On the 8400 "the cache coherency protocols decide to pull/push data
//! between processors for certain load and store operations" (§6.2) and
//! "the coherency mechanism detects misses on shared data and pulls the
//! necessary cache lines over from a DRAM memory bank or from the caches of
//! a remote processor board" (§5.2). The machine "does not have support for
//! pushing data into memory or caches of a remote processor", so remote
//! transfers are always consumer pulls.
//!
//! This crate provides:
//!
//! * [`mesi`] — the pure protocol state machine (unit-testable transition
//!   table);
//! * [`directory`] — line-granular bookkeeping of which processor owns a
//!   dirty copy;
//! * [`smp`] — [`smp::SnoopingSmp`], a complete N-processor bus-based
//!   system: per-processor memory engines, a shared [`gasnub_interconnect::Bus`],
//!   shared home DRAM, and producer-store / consumer-pull operations that
//!   implement the paper's remote micro-benchmarks.
//!
//! ## Example
//!
//! ```rust
//! use gasnub_coherence::directory::Directory;
//! use gasnub_coherence::mesi::MesiState;
//!
//! // Producer 1 writes a line; consumer 0 reads it after synchronization.
//! let mut dir = Directory::new(2, 64);
//! dir.record_write(1, 0x1000);
//! assert_eq!(dir.dirty_owner(0x1000), Some(1));
//! let supplied_cache_to_cache = dir.record_read(0, 0x1000);
//! assert!(supplied_cache_to_cache);
//! assert_eq!(dir.state(0, 0x1000), MesiState::Shared);
//! ```

pub mod directory;
pub mod mesi;
pub mod smp;

pub use directory::Directory;
pub use mesi::{BusAction, MesiState, ProcessorOp, SnoopOp, TransitionTally};
pub use smp::{ProtocolConfig, SmpConfig, SnoopingSmp};
