//! The MESI protocol state machine (pure, side-effect free).
//!
//! The DEC 8400 maintains "a cache coherency model close to sequential
//! consistency" (§2) in hardware over its broadcast bus. This module encodes
//! the classic MESI transition table; the [`crate::smp`] layer uses it to
//! decide who supplies a line and what bus traffic a processor operation
//! generates, and the unit tests double as the protocol's specification.

use gasnub_trace::CounterSet;

/// The four MESI states of a cache line in one processor's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Dirty, exclusively owned: memory is stale, this cache must supply.
    Modified,
    /// Clean, exclusively owned: may be written without bus traffic.
    Exclusive,
    /// Clean, possibly replicated in other caches.
    Shared,
    /// Not present (or invalidated).
    Invalid,
}

/// A local processor operation on a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorOp {
    /// The processor reads the line.
    Read,
    /// The processor writes the line.
    Write,
}

/// A snooped bus transaction issued by *another* processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopOp {
    /// Another processor's read miss (BusRd).
    BusRead,
    /// Another processor's write miss / upgrade (BusRdX).
    BusReadExclusive,
}

/// Bus traffic a local operation generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusAction {
    /// No bus transaction needed (hit in a sufficient state).
    None,
    /// Read miss: fetch the line, others may supply or share.
    BusRead,
    /// Write miss or upgrade: fetch/invalidate for exclusive ownership.
    BusReadExclusive,
}

/// Result of snooping a remote transaction: the follower's new state and
/// whether it must flush (supply) its dirty copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopResult {
    /// New state of the snooping cache's copy.
    pub next: MesiState,
    /// The snooping cache held the line Modified and supplies the data
    /// (cache-to-cache intervention) while memory is updated.
    pub supplies_data: bool,
}

impl MesiState {
    /// Returns `true` when a processor operation hits without bus traffic.
    pub fn satisfies(self, op: ProcessorOp) -> bool {
        match (self, op) {
            (MesiState::Invalid, _) => false,
            (_, ProcessorOp::Read) => true,
            (MesiState::Modified | MesiState::Exclusive, ProcessorOp::Write) => true,
            (MesiState::Shared, ProcessorOp::Write) => false,
        }
    }

    /// Transition for a local processor operation.
    ///
    /// `others_have_copy` tells a read miss whether it loads Shared or
    /// Exclusive. Returns the new state and the bus action generated.
    pub fn on_processor_op(
        self,
        op: ProcessorOp,
        others_have_copy: bool,
    ) -> (MesiState, BusAction) {
        match (self, op) {
            (MesiState::Modified, _) => (MesiState::Modified, BusAction::None),
            (MesiState::Exclusive, ProcessorOp::Read) => (MesiState::Exclusive, BusAction::None),
            (MesiState::Exclusive, ProcessorOp::Write) => (MesiState::Modified, BusAction::None),
            (MesiState::Shared, ProcessorOp::Read) => (MesiState::Shared, BusAction::None),
            (MesiState::Shared, ProcessorOp::Write) => {
                (MesiState::Modified, BusAction::BusReadExclusive)
            }
            (MesiState::Invalid, ProcessorOp::Read) => {
                let next = if others_have_copy {
                    MesiState::Shared
                } else {
                    MesiState::Exclusive
                };
                (next, BusAction::BusRead)
            }
            (MesiState::Invalid, ProcessorOp::Write) => {
                (MesiState::Modified, BusAction::BusReadExclusive)
            }
        }
    }

    /// Transition for a snooped remote transaction.
    pub fn on_snoop(self, op: SnoopOp) -> SnoopResult {
        match (self, op) {
            (MesiState::Modified, SnoopOp::BusRead) => SnoopResult {
                next: MesiState::Shared,
                supplies_data: true,
            },
            (MesiState::Modified, SnoopOp::BusReadExclusive) => SnoopResult {
                next: MesiState::Invalid,
                supplies_data: true,
            },
            (MesiState::Exclusive, SnoopOp::BusRead) => SnoopResult {
                next: MesiState::Shared,
                supplies_data: false,
            },
            (MesiState::Exclusive, SnoopOp::BusReadExclusive) => SnoopResult {
                next: MesiState::Invalid,
                supplies_data: false,
            },
            (MesiState::Shared, SnoopOp::BusRead) => SnoopResult {
                next: MesiState::Shared,
                supplies_data: false,
            },
            (MesiState::Shared, SnoopOp::BusReadExclusive) => SnoopResult {
                next: MesiState::Invalid,
                supplies_data: false,
            },
            (MesiState::Invalid, _) => SnoopResult {
                next: MesiState::Invalid,
                supplies_data: false,
            },
        }
    }
}

impl MesiState {
    fn index(self) -> usize {
        match self {
            MesiState::Modified => 0,
            MesiState::Exclusive => 1,
            MesiState::Shared => 2,
            MesiState::Invalid => 3,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            MesiState::Modified => "m",
            MesiState::Exclusive => "e",
            MesiState::Shared => "s",
            MesiState::Invalid => "i",
        }
    }
}

const ALL_STATES: [MesiState; 4] = [
    MesiState::Modified,
    MesiState::Exclusive,
    MesiState::Shared,
    MesiState::Invalid,
];

/// Counts of observed MESI state *changes* (self-transitions are not
/// interesting and are skipped). This is the coherence layer's contribution
/// to the observability counters: it answers "how many lines were demoted
/// Shared, how many upgrades invalidated peers" for a pull run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionTally {
    counts: [[u64; 4]; 4],
}

impl TransitionTally {
    /// An empty tally.
    pub fn new() -> Self {
        TransitionTally::default()
    }

    /// Records one transition; `from == to` is ignored.
    pub fn record(&mut self, from: MesiState, to: MesiState) {
        if from != to {
            self.counts[from.index()][to.index()] += 1;
        }
    }

    /// Count of `from -> to` transitions recorded.
    pub fn count(&self, from: MesiState, to: MesiState) -> u64 {
        self.counts[from.index()][to.index()]
    }

    /// Total transitions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Forgets all recorded transitions.
    pub fn clear(&mut self) {
        self.counts = [[0; 4]; 4];
    }

    /// Exports the non-zero transition counts into `out`, keyed
    /// `mesi_<from>_to_<to>` with single-letter states (e.g. `mesi_i_to_e`).
    pub fn export_counters(&self, out: &mut CounterSet) {
        for from in ALL_STATES {
            for to in ALL_STATES {
                let n = self.count(from, to);
                if n > 0 {
                    out.add(&format!("mesi_{}_to_{}", from.letter(), to.letter()), n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MesiState::*;

    #[test]
    fn tally_counts_changes_only() {
        let mut t = TransitionTally::new();
        t.record(Invalid, Exclusive);
        t.record(Invalid, Exclusive);
        t.record(Shared, Shared); // self-transition: ignored
        t.record(Modified, Shared);
        assert_eq!(t.count(Invalid, Exclusive), 2);
        assert_eq!(t.count(Shared, Shared), 0);
        assert_eq!(t.total(), 3);
        let mut out = CounterSet::new();
        t.export_counters(&mut out);
        assert_eq!(out.get("mesi_i_to_e"), 2);
        assert_eq!(out.get("mesi_m_to_s"), 1);
        assert!(!out.contains("mesi_s_to_i"), "zero counts are omitted");
        t.clear();
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn hit_predicate() {
        assert!(Modified.satisfies(ProcessorOp::Write));
        assert!(Exclusive.satisfies(ProcessorOp::Write));
        assert!(!Shared.satisfies(ProcessorOp::Write));
        assert!(Shared.satisfies(ProcessorOp::Read));
        assert!(!Invalid.satisfies(ProcessorOp::Read));
    }

    #[test]
    fn read_miss_loads_shared_or_exclusive() {
        assert_eq!(
            Invalid.on_processor_op(ProcessorOp::Read, true),
            (Shared, BusAction::BusRead)
        );
        assert_eq!(
            Invalid.on_processor_op(ProcessorOp::Read, false),
            (Exclusive, BusAction::BusRead)
        );
    }

    #[test]
    fn silent_upgrade_from_exclusive() {
        assert_eq!(
            Exclusive.on_processor_op(ProcessorOp::Write, false),
            (Modified, BusAction::None)
        );
    }

    #[test]
    fn shared_write_invalidates_peers() {
        let (next, action) = Shared.on_processor_op(ProcessorOp::Write, true);
        assert_eq!(next, Modified);
        assert_eq!(action, BusAction::BusReadExclusive);
    }

    #[test]
    fn modified_owner_supplies_on_remote_read() {
        let r = Modified.on_snoop(SnoopOp::BusRead);
        assert!(r.supplies_data, "dirty owner must intervene");
        assert_eq!(r.next, Shared);
    }

    #[test]
    fn modified_owner_invalidates_on_remote_write() {
        let r = Modified.on_snoop(SnoopOp::BusReadExclusive);
        assert!(r.supplies_data);
        assert_eq!(r.next, Invalid);
    }

    #[test]
    fn clean_copies_never_supply() {
        for s in [Exclusive, Shared, Invalid] {
            assert!(!s.on_snoop(SnoopOp::BusRead).supplies_data);
            assert!(!s.on_snoop(SnoopOp::BusReadExclusive).supplies_data);
        }
    }

    #[test]
    fn snoop_invalidation_table() {
        for s in [Modified, Exclusive, Shared] {
            assert_eq!(s.on_snoop(SnoopOp::BusReadExclusive).next, Invalid);
        }
        assert_eq!(Exclusive.on_snoop(SnoopOp::BusRead).next, Shared);
        assert_eq!(Shared.on_snoop(SnoopOp::BusRead).next, Shared);
    }

    /// Exhaustive sanity: every (state, op) pair transitions to a state that
    /// can satisfy the operation.
    #[test]
    fn transitions_always_satisfy_the_op() {
        for s in [Modified, Exclusive, Shared, Invalid] {
            for op in [ProcessorOp::Read, ProcessorOp::Write] {
                for others in [false, true] {
                    let (next, _) = s.on_processor_op(op, others);
                    assert!(
                        next.satisfies(op),
                        "{s:?} {op:?} others={others} -> {next:?}"
                    );
                }
            }
        }
    }
}
