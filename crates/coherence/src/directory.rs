//! Line-granular ownership bookkeeping for the snooping system.
//!
//! A broadcast bus needs no directory in hardware — every cache snoops — but
//! the simulator tracks, per line, the MESI state each processor's copy is
//! in, so that a consumer pull can decide *who supplies the line* (dirty
//! owner's cache vs. home memory) without scanning every tag array.

use std::collections::HashMap;

use gasnub_memsim::Addr;
use gasnub_trace::CounterSet;

use crate::mesi::{MesiState, ProcessorOp, SnoopOp, TransitionTally};

/// Per-line sharing state across `n` processors.
#[derive(Debug, Clone)]
pub struct Directory {
    nodes: usize,
    line_bytes: u64,
    /// line index -> per-node MESI states (absent = all Invalid).
    lines: HashMap<u64, Vec<MesiState>>,
    tally: TransitionTally,
    invalidations: u64,
}

impl Directory {
    /// Creates a directory for `nodes` processors with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or `line_bytes` is not a power of two.
    pub fn new(nodes: usize, line_bytes: u64) -> Self {
        assert!(nodes > 0, "directory needs at least one node");
        assert!(
            line_bytes.is_power_of_two() && line_bytes > 0,
            "line size must be a power of two"
        );
        Directory {
            nodes,
            line_bytes,
            lines: HashMap::new(),
            tally: TransitionTally::new(),
            invalidations: 0,
        }
    }

    /// The line size this directory tracks.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn line_of(&self, addr: Addr) -> u64 {
        addr / self.line_bytes
    }

    /// Current state of `node`'s copy of the line containing `addr`.
    pub fn state(&self, node: usize, addr: Addr) -> MesiState {
        let line = self.line_of(addr);
        self.lines
            .get(&line)
            .map(|v| v[node])
            .unwrap_or(MesiState::Invalid)
    }

    /// The node holding the line Modified, if any.
    pub fn dirty_owner(&self, addr: Addr) -> Option<usize> {
        let line = self.line_of(addr);
        self.lines
            .get(&line)?
            .iter()
            .position(|&s| s == MesiState::Modified)
    }

    /// Whether any node other than `node` has a valid copy.
    pub fn others_have_copy(&self, node: usize, addr: Addr) -> bool {
        let line = self.line_of(addr);
        match self.lines.get(&line) {
            Some(v) => v
                .iter()
                .enumerate()
                .any(|(i, &s)| i != node && s != MesiState::Invalid),
            None => false,
        }
    }

    /// Records that `node` completed a read of the line, snooping all peers.
    /// Returns `true` when a dirty peer supplied the data.
    pub fn record_read(&mut self, node: usize, addr: Addr) -> bool {
        let others = self.others_have_copy(node, addr);
        let line = self.line_of(addr);
        let nodes = self.nodes;
        let states = self
            .lines
            .entry(line)
            .or_insert_with(|| vec![MesiState::Invalid; nodes]);
        let mut supplied = false;
        for (i, s) in states.iter_mut().enumerate() {
            if i == node {
                continue;
            }
            let r = s.on_snoop(SnoopOp::BusRead);
            supplied |= r.supplies_data;
            self.tally.record(*s, r.next);
            *s = r.next;
        }
        let (next, _) = states[node].on_processor_op(ProcessorOp::Read, others);
        self.tally.record(states[node], next);
        states[node] = next;
        supplied
    }

    /// Records that `node` completed a write of the line, invalidating all
    /// peers. Returns `true` when a dirty peer had to flush first.
    pub fn record_write(&mut self, node: usize, addr: Addr) -> bool {
        let line = self.line_of(addr);
        let nodes = self.nodes;
        let states = self
            .lines
            .entry(line)
            .or_insert_with(|| vec![MesiState::Invalid; nodes]);
        let mut supplied = false;
        for (i, s) in states.iter_mut().enumerate() {
            if i == node {
                continue;
            }
            let r = s.on_snoop(SnoopOp::BusReadExclusive);
            supplied |= r.supplies_data;
            if *s != MesiState::Invalid {
                self.invalidations += 1;
            }
            self.tally.record(*s, r.next);
            *s = r.next;
        }
        self.tally.record(states[node], MesiState::Modified);
        states[node] = MesiState::Modified;
        supplied
    }

    /// Records that `node` evicted (wrote back) its copy of the line.
    pub fn record_eviction(&mut self, node: usize, addr: Addr) {
        let line = self.line_of(addr);
        if let Some(v) = self.lines.get_mut(&line) {
            self.tally.record(v[node], MesiState::Invalid);
            v[node] = MesiState::Invalid;
        }
    }

    /// Number of lines with any non-Invalid copy.
    pub fn tracked_lines(&self) -> usize {
        self.lines
            .values()
            .filter(|v| v.iter().any(|&s| s != MesiState::Invalid))
            .count()
    }

    /// Tally of MESI state changes observed so far.
    pub fn tally(&self) -> &TransitionTally {
        &self.tally
    }

    /// Peer copies invalidated by coherent writes so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Exports directory statistics into `out`: the non-zero MESI transition
    /// counts plus the peer-invalidation total.
    pub fn export_counters(&self, out: &mut CounterSet) {
        self.tally.export_counters(out);
        out.add("directory_invalidations", self.invalidations);
    }

    /// Forgets all sharing state and statistics.
    pub fn clear(&mut self) {
        self.lines.clear();
        self.tally.clear();
        self.invalidations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_lines_are_invalid_everywhere() {
        let d = Directory::new(4, 64);
        assert_eq!(d.state(0, 0), MesiState::Invalid);
        assert_eq!(d.dirty_owner(0), None);
        assert!(!d.others_have_copy(0, 0));
    }

    #[test]
    fn cold_read_loads_exclusive() {
        let mut d = Directory::new(2, 64);
        assert!(!d.record_read(0, 128));
        assert_eq!(d.state(0, 128), MesiState::Exclusive);
    }

    #[test]
    fn second_reader_demotes_to_shared() {
        let mut d = Directory::new(2, 64);
        d.record_read(0, 0);
        assert!(!d.record_read(1, 0));
        assert_eq!(d.state(0, 0), MesiState::Shared);
        assert_eq!(d.state(1, 0), MesiState::Shared);
    }

    #[test]
    fn producer_consumer_pull_supplies_from_dirty_owner() {
        let mut d = Directory::new(2, 64);
        assert!(!d.record_write(1, 0));
        assert_eq!(d.dirty_owner(0), Some(1));
        // Consumer read: the dirty owner supplies and both end Shared.
        assert!(d.record_read(0, 0));
        assert_eq!(d.state(1, 0), MesiState::Shared);
        assert_eq!(d.state(0, 0), MesiState::Shared);
        assert_eq!(d.dirty_owner(0), None);
    }

    #[test]
    fn write_invalidates_all_peers() {
        let mut d = Directory::new(3, 64);
        d.record_read(0, 0);
        d.record_read(1, 0);
        d.record_write(2, 0);
        assert_eq!(d.state(0, 0), MesiState::Invalid);
        assert_eq!(d.state(1, 0), MesiState::Invalid);
        assert_eq!(d.state(2, 0), MesiState::Modified);
    }

    #[test]
    fn eviction_clears_ownership() {
        let mut d = Directory::new(2, 64);
        d.record_write(1, 0);
        d.record_eviction(1, 0);
        assert_eq!(d.dirty_owner(0), None);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn addresses_share_line_state() {
        let mut d = Directory::new(2, 64);
        d.record_write(0, 0);
        // Address 56 is in the same 64-byte line.
        assert_eq!(d.dirty_owner(56), Some(0));
        assert_eq!(d.dirty_owner(64), None);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut d = Directory::new(2, 64);
        d.record_write(0, 0);
        d.clear();
        assert_eq!(d.state(0, 0), MesiState::Invalid);
        assert_eq!(d.tally().total(), 0);
        assert_eq!(d.invalidations(), 0);
    }

    #[test]
    fn counters_track_transitions_and_invalidations() {
        let mut d = Directory::new(2, 64);
        d.record_read(0, 0); // I -> E
        assert_eq!(d.tally().count(MesiState::Invalid, MesiState::Exclusive), 1);
        d.record_write(1, 0); // peer E -> I (one invalidation), own I -> M
        assert_eq!(d.invalidations(), 1);
        assert_eq!(d.tally().count(MesiState::Exclusive, MesiState::Invalid), 1);
        assert_eq!(d.tally().count(MesiState::Invalid, MesiState::Modified), 1);
        let mut out = CounterSet::new();
        d.export_counters(&mut out);
        assert_eq!(out.get("directory_invalidations"), 1);
        assert_eq!(out.get("mesi_i_to_e"), 1);
    }
}
