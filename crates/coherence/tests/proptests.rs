//! Property-based tests for the coherence protocol: the classic MESI safety
//! invariants must hold under arbitrary interleavings of reads and writes.

use gasnub_coherence::directory::Directory;
use gasnub_coherence::mesi::MesiState;
use gasnub_memsim::rng::{run_cases, Rng};

/// One random protocol event.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read { node: usize, line: u64 },
    Write { node: usize, line: u64 },
    Evict { node: usize, line: u64 },
}

fn arb_op(rng: &mut Rng, nodes: u64, lines: u64) -> Op {
    let node = rng.gen_range(0, nodes) as usize;
    let line = rng.gen_range(0, lines);
    match rng.gen_range(0, 3) {
        0 => Op::Read { node, line },
        1 => Op::Write { node, line },
        _ => Op::Evict { node, line },
    }
}

fn apply(dir: &mut Directory, op: Op, line_bytes: u64) {
    match op {
        Op::Read { node, line } => {
            dir.record_read(node, line * line_bytes);
        }
        Op::Write { node, line } => {
            dir.record_write(node, line * line_bytes);
        }
        Op::Evict { node, line } => {
            dir.record_eviction(node, line * line_bytes);
        }
    }
}

/// SWMR (single writer, multiple readers): after any event sequence,
/// no line has a Modified copy coexisting with any other valid copy.
#[test]
fn single_writer_invariant() {
    run_cases(0x5312, 128, |rng| {
        let line_bytes = 64;
        let mut dir = Directory::new(4, line_bytes);
        for _ in 0..rng.gen_range(1, 200) {
            let op = arb_op(rng, 4, 16);
            apply(&mut dir, op, line_bytes);
            for line in 0..16u64 {
                let addr = line * line_bytes;
                let states: Vec<MesiState> = (0..4).map(|n| dir.state(n, addr)).collect();
                let modified = states.iter().filter(|&&s| s == MesiState::Modified).count();
                let valid = states.iter().filter(|&&s| s != MesiState::Invalid).count();
                assert!(modified <= 1, "two writers on line {line}: {states:?}");
                if modified == 1 {
                    assert_eq!(
                        valid, 1,
                        "Modified must be exclusive on line {line}: {states:?}"
                    );
                }
                // Exclusive is exclusive too.
                let exclusive = states
                    .iter()
                    .filter(|&&s| s == MesiState::Exclusive)
                    .count();
                if exclusive == 1 {
                    assert_eq!(
                        valid, 1,
                        "Exclusive must be alone on line {line}: {states:?}"
                    );
                }
            }
        }
    });
}

/// A write always leaves the writer as the (only) dirty owner.
#[test]
fn writer_becomes_dirty_owner() {
    run_cases(0x3317E2, 128, |rng| {
        let line_bytes = 64;
        let mut dir = Directory::new(4, line_bytes);
        for _ in 0..rng.gen_range(0, 100) {
            let op = arb_op(rng, 4, 8);
            apply(&mut dir, op, line_bytes);
        }
        let node = rng.gen_range(0, 4) as usize;
        let line = rng.gen_range(0, 8);
        dir.record_write(node, line * line_bytes);
        assert_eq!(dir.dirty_owner(line * line_bytes), Some(node));
    });
}

/// A read after a remote write is supplied by the dirty owner, and the
/// ownership is gone afterwards.
#[test]
fn read_after_write_is_supplied_and_downgrades() {
    run_cases(0x3EAD, 128, |rng| {
        let writer = rng.gen_range(0, 4) as usize;
        let reader = rng.gen_range(0, 4) as usize;
        if writer == reader {
            return;
        }
        let line = rng.gen_range(0, 8);
        let line_bytes = 64;
        let mut dir = Directory::new(4, line_bytes);
        let addr = line * line_bytes;
        dir.record_write(writer, addr);
        let supplied = dir.record_read(reader, addr);
        assert!(supplied, "the dirty owner must intervene");
        assert_eq!(dir.dirty_owner(addr), None);
        assert_eq!(dir.state(writer, addr), MesiState::Shared);
        assert_eq!(dir.state(reader, addr), MesiState::Shared);
    });
}

/// Lines never interfere: operations on one line leave every other
/// line's state untouched.
#[test]
fn line_isolation() {
    run_cases(0x11EA, 128, |rng| {
        let a = rng.gen_range(0, 8);
        let b = rng.gen_range(0, 8);
        let node = rng.gen_range(0, 4) as usize;
        if a == b {
            return;
        }
        let line_bytes = 64;
        let mut dir = Directory::new(4, line_bytes);
        dir.record_write(0, b * line_bytes);
        let before: Vec<MesiState> = (0..4).map(|n| dir.state(n, b * line_bytes)).collect();
        dir.record_write(node, a * line_bytes);
        dir.record_read((node + 1) % 4, a * line_bytes);
        let after: Vec<MesiState> = (0..4).map(|n| dir.state(n, b * line_bytes)).collect();
        assert_eq!(before, after);
    });
}
