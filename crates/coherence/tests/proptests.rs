//! Property-based tests for the coherence protocol: the classic MESI safety
//! invariants must hold under arbitrary interleavings of reads and writes.

use gasnub_coherence::directory::Directory;
use gasnub_coherence::mesi::MesiState;
use proptest::prelude::*;

/// One random protocol event.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read { node: usize, line: u64 },
    Write { node: usize, line: u64 },
    Evict { node: usize, line: u64 },
}

fn arb_op(nodes: usize, lines: u64) -> impl Strategy<Value = Op> {
    (0..nodes, 0..lines, 0u8..3).prop_map(move |(node, line, kind)| match kind {
        0 => Op::Read { node, line },
        1 => Op::Write { node, line },
        _ => Op::Evict { node, line },
    })
}

fn apply(dir: &mut Directory, op: Op, line_bytes: u64) {
    match op {
        Op::Read { node, line } => {
            dir.record_read(node, line * line_bytes);
        }
        Op::Write { node, line } => {
            dir.record_write(node, line * line_bytes);
        }
        Op::Evict { node, line } => {
            dir.record_eviction(node, line * line_bytes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SWMR (single writer, multiple readers): after any event sequence,
    /// no line has a Modified copy coexisting with any other valid copy.
    #[test]
    fn single_writer_invariant(
        ops in prop::collection::vec(arb_op(4, 16), 1..200),
    ) {
        let line_bytes = 64;
        let mut dir = Directory::new(4, line_bytes);
        for &op in &ops {
            apply(&mut dir, op, line_bytes);
            for line in 0..16u64 {
                let addr = line * line_bytes;
                let states: Vec<MesiState> = (0..4).map(|n| dir.state(n, addr)).collect();
                let modified = states.iter().filter(|&&s| s == MesiState::Modified).count();
                let valid = states.iter().filter(|&&s| s != MesiState::Invalid).count();
                prop_assert!(modified <= 1, "two writers on line {line}: {states:?}");
                if modified == 1 {
                    prop_assert_eq!(valid, 1, "Modified must be exclusive on line {}: {:?}",
                        line, states);
                }
                // Exclusive is exclusive too.
                let exclusive = states.iter().filter(|&&s| s == MesiState::Exclusive).count();
                if exclusive == 1 {
                    prop_assert_eq!(valid, 1, "Exclusive must be alone on line {}: {:?}",
                        line, states);
                }
            }
        }
    }

    /// A write always leaves the writer as the (only) dirty owner.
    #[test]
    fn writer_becomes_dirty_owner(
        prefix in prop::collection::vec(arb_op(4, 8), 0..100),
        node in 0usize..4,
        line in 0u64..8,
    ) {
        let line_bytes = 64;
        let mut dir = Directory::new(4, line_bytes);
        for &op in &prefix {
            apply(&mut dir, op, line_bytes);
        }
        dir.record_write(node, line * line_bytes);
        prop_assert_eq!(dir.dirty_owner(line * line_bytes), Some(node));
    }

    /// A read after a remote write is supplied by the dirty owner, and the
    /// ownership is gone afterwards.
    #[test]
    fn read_after_write_is_supplied_and_downgrades(
        writer in 0usize..4,
        reader in 0usize..4,
        line in 0u64..8,
    ) {
        prop_assume!(writer != reader);
        let line_bytes = 64;
        let mut dir = Directory::new(4, line_bytes);
        let addr = line * line_bytes;
        dir.record_write(writer, addr);
        let supplied = dir.record_read(reader, addr);
        prop_assert!(supplied, "the dirty owner must intervene");
        prop_assert_eq!(dir.dirty_owner(addr), None);
        prop_assert_eq!(dir.state(writer, addr), MesiState::Shared);
        prop_assert_eq!(dir.state(reader, addr), MesiState::Shared);
    }

    /// Lines never interfere: operations on one line leave every other
    /// line's state untouched.
    #[test]
    fn line_isolation(a in 0u64..8, b in 0u64..8, node in 0usize..4) {
        prop_assume!(a != b);
        let line_bytes = 64;
        let mut dir = Directory::new(4, line_bytes);
        dir.record_write(0, b * line_bytes);
        let before: Vec<MesiState> = (0..4).map(|n| dir.state(n, b * line_bytes)).collect();
        dir.record_write(node, a * line_bytes);
        dir.record_read((node + 1) % 4, a * line_bytes);
        let after: Vec<MesiState> = (0..4).map(|n| dir.state(n, b * line_bytes)).collect();
        prop_assert_eq!(before, after);
    }
}
