#![warn(missing_docs)]

//! # gasnub-trace
//!
//! A hand-rolled, dependency-free structured event + counter subsystem for
//! the GASNUB simulation stack (matching the `core::pool` style: no external
//! crates, deterministic by construction).
//!
//! The simulation crates keep cheap internal `u64` counters in their hot
//! loops (cache hits, bus transactions, NI packets). This crate provides the
//! *observability* layer on top:
//!
//! * [`CounterSet`] — a named, sorted bag of `u64` counters that components
//!   export into after a probe. Sorted iteration makes any rendering of a
//!   counter set canonical: the same measurements always produce the same
//!   bytes, which is what makes counter reports goldenable and
//!   byte-identical across worker counts.
//! * [`Event`] — one structured trace event: a label plus ordered
//!   `(name, value)` fields.
//! * [`Recorder`] — the sink abstraction the machine layer threads through:
//!   [`NullRecorder`] is the zero-cost default (a disabled recorder makes
//!   the harvest path a single branch), [`RingRecorder`] buffers the most
//!   recent events in a bounded ring for inspection.
//!
//! Everything here is plain data: recorders are `Send`, counter sets are
//! `Clone + Eq`, and nothing reads clocks or global state.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// A named bag of monotonically meaningful `u64` counters.
///
/// Keys are held sorted (BTreeMap), so [`CounterSet::iter`] and any
/// serialization built on it are canonical. Missing counters read as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Adds `delta` to counter `name` (saturating), creating it at zero.
    pub fn add(&mut self, name: &str, delta: u64) {
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets counter `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// The value of counter `name`; zero when absent.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether counter `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.counters.contains_key(name)
    }

    /// Merges another set into this one, adding overlapping counters.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
    }

    /// Iterates `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the set holds no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// One structured trace event: a label plus ordered fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dotted event label, e.g. `"probe.deposit"` or `"interconnect.ni"`.
    pub label: String,
    /// Ordered `(name, value)` fields (insertion order is preserved, so an
    /// event renders the way its emitter built it).
    pub fields: Vec<(String, u64)>,
}

impl Event {
    /// Creates an event with no fields.
    pub fn new(label: impl Into<String>) -> Self {
        Event {
            label: label.into(),
            fields: Vec::new(),
        }
    }

    /// Appends one field (builder style).
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: u64) -> Self {
        self.fields.push((name.into(), value));
        self
    }

    /// Appends every counter of `set` as a field, in sorted name order.
    #[must_use]
    pub fn with_counters(mut self, set: &CounterSet) -> Self {
        for (name, value) in set.iter() {
            self.fields.push((name.to_string(), value));
        }
        self
    }

    /// The value of field `name`, if present (first match).
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Canonical counter names for sweep-execution robustness events.
///
/// The resilient sweep runner (`gasnub-core`) accumulates these into the
/// [`CounterSet`] it returns per run, and `--counters` reports them. They
/// live here — next to the counter type — so the runner, the CLI and the
/// tests agree on one spelling.
pub mod robustness {
    /// Extra probe attempts spent re-running panicking cells.
    pub const RETRIES: &str = "sweep.retries";
    /// Cells that exhausted their retry budget and were quarantined
    /// (rendered as an explicit `NaN` hole, skipped on resume).
    pub const QUARANTINES: &str = "sweep.quarantines";
    /// Cells stopped by their per-cell wall-clock budget.
    pub const TIMEOUTS: &str = "sweep.timeouts";
    /// Corrupt checkpoints recovered by `--force-restart` (the file is
    /// preserved as `<path>.corrupt`).
    pub const FORCE_RESTARTS: &str = "sweep.force_restarts";
    /// The subset of force-restarts whose corruption was a torn tail.
    pub const TORN_TAIL_RECOVERIES: &str = "sweep.torn_tail_recoveries";
    /// Checkpoint writes that failed once and succeeded on the retry.
    pub const CHECKPOINT_WRITE_RETRIES: &str = "sweep.checkpoint_write_retries";
}

/// Canonical counter names for the characterization server (`gasnub-serve`).
///
/// The serving layer accumulates these with cheap per-request atomics —
/// *not* by installing a [`Recorder`] on the probing engines, which would
/// bypass the per-process probe memo and force every served probe onto the
/// cold path. `/metrics` and the shutdown report render them through a
/// [`CounterSet`], so they sort canonically next to the
/// [`robustness`] counters the backing sweeps produce.
pub mod serving {
    /// HTTP requests accepted (all endpoints, before routing).
    pub const REQUESTS: &str = "serve.requests";
    /// Responses in the 2xx class.
    pub const RESPONSES_2XX: &str = "serve.responses_2xx";
    /// Responses in the 4xx class (structured client errors).
    pub const RESPONSES_4XX: &str = "serve.responses_4xx";
    /// Responses in the 5xx class.
    pub const RESPONSES_5XX: &str = "serve.responses_5xx";
    /// `POST /v1/probe` requests answered.
    pub const PROBES: &str = "serve.probes";
    /// `POST /v1/sweep` requests answered.
    pub const SWEEPS: &str = "serve.sweeps";
    /// Sweep surfaces actually computed by this process (cache misses).
    pub const SWEEPS_COMPUTED: &str = "serve.sweeps_computed";
    /// Sweep requests answered from the in-memory payload cache.
    pub const SWEEP_CACHE_HITS_MEMORY: &str = "serve.sweep_cache_hits_memory";
    /// Sweep requests answered by resuming a durable checkpoint on disk
    /// (the warm-restart path: no cell was re-measured).
    pub const SWEEP_CACHE_HITS_DISK: &str = "serve.sweep_cache_hits_disk";
    /// Sweep requests that piggybacked on an identical in-flight
    /// computation instead of starting their own.
    pub const SWEEPS_COALESCED: &str = "serve.sweeps_coalesced";
    /// TCP connections accepted.
    pub const CONNECTIONS: &str = "serve.connections";
    /// Highest number of requests ever in flight at once.
    pub const QUEUE_DEPTH_PEAK: &str = "serve.queue_depth_peak";
    /// Surfaces currently held in the in-memory payload cache.
    pub const CACHED_SURFACES: &str = "serve.cached_surfaces";
}

/// A sink for structured events.
///
/// The machine layer holds a `Box<dyn Recorder>` and consults
/// [`Recorder::enabled`] before doing any harvest work, so a disabled
/// recorder costs one branch per probe and nothing per access.
pub trait Recorder: std::fmt::Debug + Send {
    /// Whether this recorder wants events (guards the harvest path).
    fn enabled(&self) -> bool;

    /// Records one event. Disabled recorders drop it.
    fn record(&mut self, event: Event);

    /// Removes and returns all buffered events, oldest first.
    fn drain(&mut self) -> Vec<Event>;
}

/// The zero-cost default recorder: always disabled, buffers nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}

    fn drain(&mut self) -> Vec<Event> {
        Vec::new()
    }
}

/// A bounded ring buffer of the most recent events.
///
/// When full, recording evicts the oldest event and counts it as dropped,
/// so long-running probes stay O(capacity) in memory.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a ring holding at most `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events, oldest first (without draining).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Recorder for RingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn drain(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_default_to_zero_and_accumulate() {
        let mut c = CounterSet::new();
        assert_eq!(c.get("bus_transactions"), 0);
        assert!(!c.contains("bus_transactions"));
        c.add("bus_transactions", 3);
        c.add("bus_transactions", 2);
        assert_eq!(c.get("bus_transactions"), 5);
        c.set("bus_transactions", 1);
        assert_eq!(c.get("bus_transactions"), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn counter_add_saturates() {
        let mut c = CounterSet::new();
        c.set("x", u64::MAX - 1);
        c.add("x", 5);
        assert_eq!(c.get("x"), u64::MAX);
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let mut c = CounterSet::new();
        c.add("z_last", 1);
        c.add("a_first", 2);
        c.add("m_mid", 3);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a_first", "m_mid", "z_last"]);
    }

    #[test]
    fn merge_adds_overlapping_counters() {
        let mut a = CounterSet::new();
        a.add("hits", 10);
        let mut b = CounterSet::new();
        b.add("hits", 5);
        b.add("misses", 1);
        a.merge(&b);
        assert_eq!(a.get("hits"), 15);
        assert_eq!(a.get("misses"), 1);
    }

    #[test]
    fn event_builder_and_lookup() {
        let mut c = CounterSet::new();
        c.add("misses", 7);
        let e = Event::new("probe.load")
            .with("ws_bytes", 1024)
            .with_counters(&c);
        assert_eq!(e.field("ws_bytes"), Some(1024));
        assert_eq!(e.field("misses"), Some(7));
        assert_eq!(e.field("absent"), None);
    }

    #[test]
    fn null_recorder_is_disabled_and_empty() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(Event::new("x"));
        assert!(r.drain().is_empty());
    }

    #[test]
    fn ring_recorder_evicts_oldest() {
        let mut r = RingRecorder::new(2);
        assert!(r.enabled());
        r.record(Event::new("a"));
        r.record(Event::new("b"));
        r.record(Event::new("c"));
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.len(), 2);
        let labels: Vec<String> = r.drain().into_iter().map(|e| e.label).collect();
        assert_eq!(labels, vec!["b".to_string(), "c".to_string()]);
        assert!(r.is_empty());
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let mut r = RingRecorder::new(0);
        r.record(Event::new("only"));
        r.record(Event::new("newer"));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events().next().unwrap().label, "newer");
    }

    #[test]
    fn recorders_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NullRecorder>();
        assert_send::<RingRecorder>();
        assert_send::<Box<dyn Recorder>>();
    }
}
