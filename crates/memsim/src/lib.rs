#![warn(missing_docs)]

//! # gasnub-memsim
//!
//! A deterministic, trace-driven, cycle-accounting **memory hierarchy
//! simulator**. This crate is the lowest-level substrate of the GASNUB
//! reproduction of Stricker & Gross, *"Global Address Space, Non-Uniform
//! Bandwidth"* (HPCA-3, 1997).
//!
//! The paper characterizes memory system *bandwidth* as a function of access
//! pattern (stride) and working set. This simulator reproduces the hardware
//! mechanisms that give those surfaces their shape:
//!
//! * [`cache::Cache`] — tag-array cache simulation (capacity, line size,
//!   associativity, write/allocate policy) → working-set plateaus and
//!   per-line overfetch for strided access;
//! * [`dram::Dram`] — banked DRAM with open-row (page-mode) state →
//!   contiguous/strided gap and even-stride bank-conflict ripples;
//! * [`stream::StreamDetector`] — sequential stream detection / read-ahead →
//!   the Cray machines' contiguous-DRAM advantage;
//! * [`write_buffer::WriteBuffer`] — coalescing write-back queue → the
//!   T3D's strided-store advantage;
//! * [`engine::MemoryEngine`] — ties a CPU issue model and a
//!   [`hierarchy::MemoryHierarchy`] together and runs access traces,
//!   producing cycle counts and bandwidth figures.
//!
//! Everything is deterministic: the same trace and configuration always
//! produce the same cycle count. No wall-clock timing is involved; simulated
//! bandwidth is computed as `bytes * clock_mhz / cycles`.
//!
//! ## Example
//!
//! ```rust
//! use gasnub_memsim::config::presets;
//! use gasnub_memsim::engine::MemoryEngine;
//! use gasnub_memsim::trace::StridedPass;
//!
//! // A small, generic two-level machine.
//! let mut engine = MemoryEngine::new(presets::tiny_test_node());
//! // Stream 64 KB through it contiguously.
//! let pass = StridedPass::new(0, 64 * 1024 / 8, 1);
//! let stats = engine.run_loads(pass.clone());
//! assert!(stats.cycles > 0.0);
//! let mb_s = engine.bandwidth_mb_s(&stats);
//! assert!(mb_s > 0.0);
//! ```

pub mod access;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod dram;
pub mod engine;
pub mod error;
pub mod hierarchy;
pub mod replay;
pub mod rng;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod write_buffer;

pub use access::{Access, AccessKind, Addr, WORD_BYTES};
pub use config::NodeConfig;
pub use engine::{cold_path, set_cold_path, MemoryEngine};
pub use error::{ConfigError, SimError};
pub use stats::{LevelStats, RunStats};
