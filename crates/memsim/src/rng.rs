//! Deterministic pseudo-random number generation.
//!
//! The repository must produce bit-identical results for a given seed on
//! every platform, without external dependencies, so this module provides a
//! small splitmix64/xoshiro-style generator used by the fault-injection
//! plans, the gather benchmarks, and the in-repo property-test harness.
//! It is **not** cryptographic.

/// A deterministic 64-bit PRNG (splitmix64 stepping).
///
/// The same seed always yields the same stream, on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. All seeds (including 0) are valid.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014): a full-period generator with
        // excellent avalanche behaviour from any seed.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Derives an independent generator for a named sub-stream, so that
    /// drawing more values for one purpose never shifts another purpose's
    /// stream (the property that keeps fault plans stable as features grow).
    pub fn fork(&self, stream: u64) -> Rng {
        let mut child = Rng::new(self.state ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        // Burn one output so forks of adjacent streams decorrelate.
        let _ = child.next_u64();
        child
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

/// Runs `cases` deterministic pseudo-random test cases, passing each a
/// seeded [`Rng`]. The in-repo replacement for an external property-testing
/// framework: on failure the panic message of the failing case includes its
/// case index (re-run with `Rng::new(seed ^ index)` to reproduce).
pub fn run_cases(seed: u64, cases: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::new(seed ^ case);
        f(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = Rng::new(99);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut other = parent.fork(2);
        assert_ne!(f1.next_u64(), other.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle is never identity in practice"
        );
    }

    #[test]
    fn run_cases_covers_all_cases() {
        let mut n = 0;
        run_cases(0, 16, |_| n += 1);
        assert_eq!(n, 16);
    }
}
