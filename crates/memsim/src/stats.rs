//! Run statistics produced by the trace engine.

use gasnub_trace::CounterSet;

/// Per-cache-level counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that hit in this level.
    pub hits: u64,
    /// Accesses that missed in this level (and went further down).
    pub misses: u64,
    /// Line fills into this level that were classified as streamed.
    pub streamed_fills: u64,
    /// Line fills into this level charged the full (untrained) cost.
    pub unstreamed_fills: u64,
    /// Dirty victim lines written back out of this level.
    pub write_backs: u64,
}

impl LevelStats {
    /// Hit rate in `[0, 1]`; 0 when the level saw no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A power-of-two latency histogram of per-access costs.
///
/// Bucket `k` counts accesses whose cycle cost `c` satisfies
/// `2^(k-1) < c <= 2^k` (bucket 0 counts `c <= 1`). Useful for spotting a
/// bimodal hit/miss split that an average would hide.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
}

impl LatencyHistogram {
    /// Records one access of `cycles` cost.
    pub fn record(&mut self, cycles: f64) {
        let bucket = if cycles <= 1.0 {
            0usize
        } else {
            (cycles.log2().ceil() as usize).min(63)
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Counts per bucket, lowest latency first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The upper cycle bound of the bucket containing the `q`-quantile
    /// access (`q` in `[0, 1]`), or `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some((1u64 << k) as f64);
            }
        }
        Some((1u64 << (self.buckets.len() - 1)) as f64)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// Aggregate result of running a trace through a [`crate::engine::MemoryEngine`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total accesses processed.
    pub accesses: u64,
    /// Read accesses processed.
    pub reads: u64,
    /// Write accesses processed.
    pub writes: u64,
    /// Total simulated cycles consumed.
    pub cycles: f64,
    /// Bytes the trace touched (8 per access).
    pub bytes: u64,
    /// One entry per configured cache level, L1 first.
    pub levels: Vec<LevelStats>,
    /// Accesses served by DRAM.
    pub dram_accesses: u64,
    /// DRAM accesses that hit an open row.
    pub dram_row_hits: u64,
    /// DRAM accesses that stalled on a busy bank.
    pub dram_bank_conflicts: u64,
    /// DRAM fills that were streamed (served by the prefetch pipeline).
    pub dram_streamed_fills: u64,
    /// Processor stall cycles caused by a saturated write buffer.
    pub write_buffer_stall_cycles: f64,
    /// Per-access latency distribution (includes issue cost).
    pub latency: LatencyHistogram,
}

impl RunStats {
    /// Cycles per access; 0 when the run was empty.
    pub fn cycles_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cycles / self.accesses as f64
        }
    }

    /// Merges another run's counters into this one (used by multi-phase
    /// benchmarks that time several traces as one measurement).
    pub fn merge(&mut self, other: &RunStats) {
        self.accesses += other.accesses;
        self.reads += other.reads;
        self.writes += other.writes;
        self.cycles += other.cycles;
        self.bytes += other.bytes;
        if self.levels.len() < other.levels.len() {
            self.levels
                .resize(other.levels.len(), LevelStats::default());
        }
        for (mine, theirs) in self.levels.iter_mut().zip(other.levels.iter()) {
            mine.hits += theirs.hits;
            mine.misses += theirs.misses;
            mine.streamed_fills += theirs.streamed_fills;
            mine.unstreamed_fills += theirs.unstreamed_fills;
            mine.write_backs += theirs.write_backs;
        }
        self.dram_accesses += other.dram_accesses;
        self.dram_row_hits += other.dram_row_hits;
        self.dram_bank_conflicts += other.dram_bank_conflicts;
        self.dram_streamed_fills += other.dram_streamed_fills;
        self.write_buffer_stall_cycles += other.write_buffer_stall_cycles;
        self.latency.merge(&other.latency);
    }

    /// Exports the run's counters into `out` for the observability layer.
    ///
    /// Cycle quantities are rounded to whole cycles so the export stays in
    /// the integer counter domain; level counters are keyed `l1_*`, `l2_*`,
    /// ... top level first, matching the configured hierarchy order.
    pub fn export_counters(&self, out: &mut CounterSet) {
        out.add("accesses", self.accesses);
        out.add("reads", self.reads);
        out.add("writes", self.writes);
        for (i, level) in self.levels.iter().enumerate() {
            let prefix = format!("l{}", i + 1);
            out.add(&format!("{prefix}_hits"), level.hits);
            out.add(&format!("{prefix}_misses"), level.misses);
            out.add(&format!("{prefix}_streamed_fills"), level.streamed_fills);
            out.add(
                &format!("{prefix}_unstreamed_fills"),
                level.unstreamed_fills,
            );
            out.add(&format!("{prefix}_write_backs"), level.write_backs);
        }
        out.add("dram_accesses", self.dram_accesses);
        out.add("dram_row_hits", self.dram_row_hits);
        out.add("dram_bank_conflicts", self.dram_bank_conflicts);
        out.add("dram_streamed_fills", self.dram_streamed_fills);
        out.add(
            "write_buffer_stall_cycles",
            self.write_buffer_stall_cycles.round() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(LevelStats::default().hit_rate(), 0.0);
        let s = LevelStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cycles_per_access_handles_empty() {
        assert_eq!(RunStats::default().cycles_per_access(), 0.0);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = LatencyHistogram::default();
        h.record(0.5); // bucket 0
        h.record(1.0); // bucket 0
        h.record(2.0); // bucket 1
        h.record(3.0); // bucket 2 (2 < 3 <= 4)
        h.record(100.0); // bucket 7 (64 < 100 <= 128)
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[7], 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(100.0);
        }
        assert_eq!(h.quantile_upper_bound(0.5), Some(1.0));
        assert_eq!(h.quantile_upper_bound(0.99), Some(128.0));
        assert_eq!(LatencyHistogram::default().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = LatencyHistogram::default();
        a.record(1.0);
        let mut b = LatencyHistogram::default();
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn export_counters_names_levels_top_first() {
        let stats = RunStats {
            accesses: 10,
            reads: 7,
            writes: 3,
            levels: vec![
                LevelStats {
                    hits: 5,
                    misses: 5,
                    ..Default::default()
                },
                LevelStats {
                    hits: 4,
                    misses: 1,
                    write_backs: 2,
                    ..Default::default()
                },
            ],
            dram_accesses: 1,
            write_buffer_stall_cycles: 2.6,
            ..Default::default()
        };
        let mut out = CounterSet::new();
        stats.export_counters(&mut out);
        assert_eq!(out.get("accesses"), 10);
        assert_eq!(out.get("l1_hits"), 5);
        assert_eq!(out.get("l2_write_backs"), 2);
        assert_eq!(out.get("dram_accesses"), 1);
        assert_eq!(out.get("write_buffer_stall_cycles"), 3);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = RunStats {
            accesses: 10,
            reads: 10,
            cycles: 100.0,
            bytes: 80,
            levels: vec![LevelStats {
                hits: 5,
                misses: 5,
                ..Default::default()
            }],
            ..Default::default()
        };
        let b = RunStats {
            accesses: 6,
            writes: 6,
            cycles: 30.0,
            bytes: 48,
            levels: vec![
                LevelStats {
                    hits: 1,
                    misses: 5,
                    ..Default::default()
                },
                LevelStats {
                    hits: 2,
                    misses: 3,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 16);
        assert_eq!(a.cycles, 130.0);
        assert_eq!(a.levels.len(), 2);
        assert_eq!(a.levels[0].hits, 6);
        assert_eq!(a.levels[1].misses, 3);
    }
}
