//! Banked DRAM with open-row (page mode) state.
//!
//! The paper attributes several effects to DRAM internals:
//!
//! * "DRAM accesses within the same DRAM page are accelerated" (T3D, §3.2) —
//!   modelled by the open-row hit/miss distinction;
//! * interleaved memory modules on the DEC 8400 (§3.1) — modelled by bank
//!   interleaving;
//! * "the ripples in Figure 8 indicate that the memory system at the
//!   destination node has difficulties storing data at full network speed if
//!   the same bank is hit in consecutive receives" (§5.6) — modelled by
//!   per-bank busy windows that stall same-bank back-to-back accesses.

use crate::access::Addr;
use crate::error::ConfigError;

/// Static description of a DRAM subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of independent banks. Must be a power of two.
    pub banks: u64,
    /// Bytes of consecutive address space mapped to one bank before moving to
    /// the next (the interleave granularity). Must be a power of two.
    pub interleave_bytes: u64,
    /// Row (page) size in bytes per bank. Must be a power of two and at
    /// least the interleave granularity.
    pub row_bytes: u64,
    /// Cycles to transfer one line-sized burst when the row is already open.
    pub row_hit_cycles: f64,
    /// Extra cycles (precharge + activate) when the access goes to a
    /// different row of the bank than the currently open one.
    pub row_miss_extra_cycles: f64,
    /// Cycles a bank stays busy after an access begins; a subsequent access
    /// to the *same* bank within this window stalls for the remainder.
    pub bank_busy_cycles: f64,
}

impl DramConfig {
    /// Validates the structural invariants of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if bank count, interleave or row size are not
    /// powers of two, if the row is smaller than the interleave granularity,
    /// or if any of the cycle costs is negative.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = "dram";
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err(ConfigError::new(
                c,
                "bank count must be a non-zero power of two",
            ));
        }
        if self.interleave_bytes == 0 || !self.interleave_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                c,
                "interleave granularity must be a non-zero power of two",
            ));
        }
        if self.row_bytes == 0 || !self.row_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                c,
                "row size must be a non-zero power of two",
            ));
        }
        if self.row_bytes < self.interleave_bytes {
            return Err(ConfigError::new(
                c,
                "row size must be at least the interleave granularity",
            ));
        }
        if self.row_hit_cycles < 0.0
            || self.row_miss_extra_cycles < 0.0
            || self.bank_busy_cycles < 0.0
        {
            return Err(ConfigError::new(c, "cycle costs must be non-negative"));
        }
        Ok(())
    }

    /// The bank a byte address maps to.
    pub fn bank_of(&self, addr: Addr) -> u64 {
        (addr / self.interleave_bytes) % self.banks
    }

    /// The row (within its bank) a byte address maps to.
    pub fn row_of(&self, addr: Addr) -> u64 {
        // Consecutive interleave-sized chunks of one bank form its rows.
        (addr / (self.interleave_bytes * self.banks)) * self.interleave_bytes / self.row_bytes
    }
}

/// What one DRAM access experienced, for statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramOutcome {
    /// Total cycles charged for this access (including any bank stall).
    pub cycles: f64,
    /// Whether the open-row was hit.
    pub row_hit: bool,
    /// Cycles spent waiting for the bank to free up (0 when no conflict).
    pub bank_stall_cycles: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Simulated time at which the bank becomes free again.
    busy_until: f64,
}

/// A banked, open-row DRAM model.
///
/// The model is driven by a monotonically advancing *now* timestamp supplied
/// by the caller (the hierarchy engine), so that bank-conflict stalls are
/// relative to real progress through the trace.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<BankState>,
    /// `log2(interleave_bytes)`; interleave is a validated power of two.
    interleave_shift: u32,
    /// `banks - 1`; the bank count is a validated power of two.
    bank_mask: u64,
    /// `log2(banks) + log2(row_bytes)`. Because `row_bytes >=
    /// interleave_bytes` (validated) and all three are powers of two,
    /// `addr >> row_shift` equals
    /// `(addr / (interleave * banks)) * interleave / row_bytes` exactly.
    row_shift: u32,
    row_hits: u64,
    row_misses: u64,
    bank_conflicts: u64,
}

impl Dram {
    /// Builds a DRAM model from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`DramConfig::validate`] errors.
    pub fn new(config: DramConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let banks = vec![BankState::default(); config.banks as usize];
        Ok(Dram {
            interleave_shift: config.interleave_bytes.trailing_zeros(),
            bank_mask: config.banks - 1,
            row_shift: config.banks.trailing_zeros() + config.row_bytes.trailing_zeros(),
            config,
            banks,
            row_hits: 0,
            row_misses: 0,
            bank_conflicts: 0,
        })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Row-buffer hits observed.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer misses observed.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Number of accesses that stalled on a busy bank.
    pub fn bank_conflicts(&self) -> u64 {
        self.bank_conflicts
    }

    /// Clears statistics and open-row/busy state.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = BankState::default();
        }
        self.row_hits = 0;
        self.row_misses = 0;
        self.bank_conflicts = 0;
    }

    /// Performs one burst access at simulated time `now`, returning the cost.
    #[inline]
    pub fn access(&mut self, addr: Addr, now: f64) -> DramOutcome {
        // Shift/mask forms of [`DramConfig::bank_of`] / [`DramConfig::row_of`]
        // (exact: the geometry is validated powers of two).
        let bank_idx = ((addr >> self.interleave_shift) & self.bank_mask) as usize;
        let row = addr >> self.row_shift;
        let bank = &mut self.banks[bank_idx];

        let stall = (bank.busy_until - now).max(0.0);
        if stall > 0.0 {
            self.bank_conflicts += 1;
        }
        let start = now + stall;

        let row_hit = bank.open_row == Some(row);
        let service = if row_hit {
            self.row_hits += 1;
            self.config.row_hit_cycles
        } else {
            self.row_misses += 1;
            self.config.row_hit_cycles + self.config.row_miss_extra_cycles
        };
        bank.open_row = Some(row);
        bank.busy_until = start + self.config.bank_busy_cycles.max(service);

        DramOutcome {
            cycles: stall + service,
            row_hit,
            bank_stall_cycles: stall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig {
            banks: 4,
            interleave_bytes: 64,
            row_bytes: 4096,
            row_hit_cycles: 10.0,
            row_miss_extra_cycles: 30.0,
            bank_busy_cycles: 20.0,
        }
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut c = cfg();
        c.banks = 3;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.interleave_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.row_bytes = 32; // smaller than interleave
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.row_hit_cycles = -1.0;
        assert!(c.validate().is_err());
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn bank_mapping_interleaves() {
        let c = cfg();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(64), 1);
        assert_eq!(c.bank_of(128), 2);
        assert_eq!(c.bank_of(192), 3);
        assert_eq!(c.bank_of(256), 0);
    }

    #[test]
    fn first_access_misses_row_then_hits() {
        let mut d = Dram::new(cfg()).unwrap();
        let first = d.access(0, 0.0);
        assert!(!first.row_hit);
        assert_eq!(first.cycles, 40.0);
        // Same bank, same row, after the busy window.
        let second = d.access(256, 100.0);
        assert!(second.row_hit);
        assert_eq!(second.cycles, 10.0);
        assert_eq!(d.row_hits(), 1);
        assert_eq!(d.row_misses(), 1);
    }

    #[test]
    fn same_bank_back_to_back_stalls() {
        let mut d = Dram::new(cfg()).unwrap();
        d.access(0, 0.0); // bank 0 busy until max(20, 40) = 40
        let out = d.access(256, 5.0); // bank 0 again, 35 cycles too early
        assert!(out.bank_stall_cycles > 0.0);
        assert_eq!(d.bank_conflicts(), 1);
        // A different bank does not stall.
        let out2 = d.access(64, 5.0);
        assert_eq!(out2.bank_stall_cycles, 0.0);
    }

    #[test]
    fn different_row_same_bank_reopens() {
        let mut d = Dram::new(cfg()).unwrap();
        d.access(0, 0.0);
        // Bank 0 rows change every row_bytes*banks of address space per this mapping:
        // pick an address far away in bank 0.
        let far = 64 * 4 * 1024; // 256 KiB later, still bank 0
        assert_eq!(d.config().bank_of(far), 0);
        let out = d.access(far, 1000.0);
        assert!(!out.row_hit);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = Dram::new(cfg()).unwrap();
        d.access(0, 0.0);
        d.access(256, 0.0);
        d.reset();
        assert_eq!(d.row_hits() + d.row_misses(), 0);
        assert_eq!(d.bank_conflicts(), 0);
        let out = d.access(0, 0.0);
        assert!(!out.row_hit, "open row must be forgotten after reset");
    }
}
