//! Tag-array cache simulation.
//!
//! Each [`Cache`] simulates real set/way tag state so that working-set
//! plateaus, conflict behaviour and line-granularity overfetch emerge from
//! mechanism rather than from a formula. Data values are not stored — only
//! tags, valid and dirty bits — because the paper's characterization depends
//! only on hit/miss behaviour and transfer sizes.

use crate::access::{AccessKind, Addr};
use crate::error::ConfigError;

/// Write policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Stores update the line (if present) and are always forwarded to the
    /// next level (the Alpha 21064/21164 on-chip L1 caches).
    WriteThrough,
    /// Stores dirty the line; data moves to the next level only on eviction
    /// (the 8400's L2/L3 and the T3E's L2).
    WriteBack,
}

/// Allocation policy on a store miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatePolicy {
    /// Lines are allocated on read misses only ("read-allocate"); a store
    /// miss bypasses the cache. This is the policy of the write-through
    /// Alpha L1 caches.
    ReadAllocate,
    /// Lines are allocated on both read and store misses; a store miss first
    /// fetches the line (read-modify-write). Typical for write-back caches.
    ReadWriteAllocate,
}

/// Static description of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Human-readable name used in diagnostics ("L1", "L2", "L3").
    pub name: String,
    /// Total capacity in bytes. Must be a power of two.
    pub capacity_bytes: u64,
    /// Line size in bytes. Must be a power of two and divide the capacity.
    pub line_bytes: u64,
    /// Number of ways. `1` is direct mapped. Must divide
    /// `capacity_bytes / line_bytes`.
    pub associativity: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Allocation-on-store-miss policy.
    pub allocate_policy: AllocatePolicy,
}

impl CacheConfig {
    /// Validates the structural invariants of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when capacity or line size are not powers of
    /// two, when the line does not divide the capacity, or when the
    /// associativity does not divide the number of lines.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let component = format!("cache {}", self.name);
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                component,
                "line size must be a non-zero power of two",
            ));
        }
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(self.line_bytes) {
            return Err(ConfigError::new(
                component,
                "capacity must be a non-zero multiple of the line size",
            ));
        }
        let lines = self.capacity_bytes / self.line_bytes;
        if self.associativity == 0
            || self.associativity > lines
            || !lines.is_multiple_of(self.associativity)
        {
            return Err(ConfigError::new(
                component,
                "associativity must be in 1..=lines and divide the line count",
            ));
        }
        // Sets index the address with a modulo, so the *set count* must be a
        // power of two (the capacity itself need not be: the 21164's 96 KB
        // 3-way L2 has 512 sets).
        let sets = lines / self.associativity;
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(
                component,
                "the set count (lines / associativity) must be a power of two",
            ));
        }
        Ok(())
    }

    /// Number of sets implied by capacity, line size and associativity.
    pub fn num_sets(&self) -> u64 {
        self.capacity_bytes / self.line_bytes / self.associativity
    }
}

/// The outcome of presenting one access to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The line was present.
    Hit,
    /// The line was absent.
    Miss {
        /// A dirty line had to be evicted to make room (write-back cost).
        victim_dirty: bool,
        /// Whether the line was brought in at all (store misses on
        /// read-allocate caches are not).
        allocated: bool,
    },
}

impl LookupOutcome {
    /// Returns `true` if the access hit in this level.
    pub fn is_hit(self) -> bool {
        matches!(self, LookupOutcome::Hit)
    }
}

/// One way of one set: tag plus valid/dirty state and an LRU stamp.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Monotonic "last used" stamp for LRU replacement.
    lru: u64,
}

/// A simulated cache level (tags only).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    ways: Vec<Way>, // sets * associativity, row-major by set
    /// `log2(line_bytes)`; the line size is a validated power of two, so
    /// `addr >> line_shift` is exactly `addr / line_bytes`.
    line_shift: u32,
    /// `num_sets - 1`; the set count is a validated power of two, so
    /// `line & set_mask` is exactly `line % num_sets`.
    set_mask: u64,
    /// `log2(num_sets)`; `line >> set_shift` is exactly `line / num_sets`.
    set_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
    write_backs: u64,
}

impl Cache {
    /// Builds a cache from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheConfig::validate`] errors.
    pub fn new(config: CacheConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let slots = (config.num_sets() * config.associativity) as usize;
        let num_sets = config.num_sets();
        Ok(Cache {
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            set_shift: num_sets.trailing_zeros(),
            config,
            ways: vec![Way::default(); slots],
            tick: 0,
            hits: 0,
            misses: 0,
            write_backs: 0,
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Line size in bytes (convenience accessor).
    pub fn line_bytes(&self) -> u64 {
        self.config.line_bytes
    }

    /// Total hits observed since construction or the last [`Cache::reset_stats`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed since construction or the last [`Cache::reset_stats`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of dirty evictions performed.
    pub fn write_backs(&self) -> u64 {
        self.write_backs
    }

    /// Clears hit/miss/write-back counters (tag state is preserved).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.write_backs = 0;
    }

    /// Invalidates all lines and clears statistics.
    pub fn flush(&mut self) {
        for w in &mut self.ways {
            *w = Way::default();
        }
        self.reset_stats();
    }

    /// Invalidates the line containing `addr` if present, returning whether
    /// the invalidated line was dirty. Used by coherence (remote stores /
    /// synchronization-point invalidation on the T3D).
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let (set, tag) = self.locate(addr);
        let base = set * self.config.associativity as usize;
        for i in 0..self.config.associativity as usize {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == tag {
                let dirty = w.dirty;
                *w = Way::default();
                return Some(dirty);
            }
        }
        None
    }

    /// Returns `true` if the line containing `addr` is currently present.
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.locate(addr);
        let base = set * self.config.associativity as usize;
        (0..self.config.associativity as usize).any(|i| {
            let w = &self.ways[base + i];
            w.valid && w.tag == tag
        })
    }

    /// Returns `true` if the line containing `addr` is present and dirty.
    pub fn probe_dirty(&self, addr: Addr) -> bool {
        let (set, tag) = self.locate(addr);
        let base = set * self.config.associativity as usize;
        (0..self.config.associativity as usize).any(|i| {
            let w = &self.ways[base + i];
            w.valid && w.tag == tag && w.dirty
        })
    }

    /// Line index of `addr` in this level's geometry (`addr / line_bytes`).
    #[inline]
    pub fn line_of(&self, addr: Addr) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn locate(&self, addr: Addr) -> (usize, u64) {
        // Line size and set count are validated powers of two, so shifts and
        // masks compute exactly the same set/tag as the division form.
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        (set, tag)
    }

    /// Presents one access to the cache, updating tag state and statistics.
    ///
    /// On a miss the LRU way of the set is replaced (when the policy
    /// allocates). The caller is responsible for charging fill and
    /// write-back costs based on the returned [`LookupOutcome`].
    #[inline]
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> LookupOutcome {
        self.tick += 1;
        let (set, tag) = self.locate(addr);
        let assoc = self.config.associativity as usize;
        let base = set * assoc;

        // Hit path.
        for i in 0..assoc {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == tag {
                w.lru = self.tick;
                if kind.is_write() && self.config.write_policy == WritePolicy::WriteBack {
                    w.dirty = true;
                }
                self.hits += 1;
                return LookupOutcome::Hit;
            }
        }

        // Miss path.
        self.misses += 1;
        let allocate = match (kind, self.config.allocate_policy) {
            (AccessKind::Read, _) => true,
            (AccessKind::Write, AllocatePolicy::ReadWriteAllocate) => true,
            (AccessKind::Write, AllocatePolicy::ReadAllocate) => false,
        };
        if !allocate {
            return LookupOutcome::Miss {
                victim_dirty: false,
                allocated: false,
            };
        }

        // Choose victim: first invalid way, else LRU.
        let mut victim = base;
        let mut best_lru = u64::MAX;
        for i in 0..assoc {
            let w = &self.ways[base + i];
            if !w.valid {
                victim = base + i;
                break;
            }
            if w.lru < best_lru {
                best_lru = w.lru;
                victim = base + i;
            }
        }
        let victim_dirty = self.ways[victim].valid && self.ways[victim].dirty;
        if victim_dirty {
            self.write_backs += 1;
        }
        self.ways[victim] = Way {
            valid: true,
            dirty: kind.is_write() && self.config.write_policy == WritePolicy::WriteBack,
            tag,
            lru: self.tick,
        };
        LookupOutcome::Miss {
            victim_dirty,
            allocated: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(
        capacity: u64,
        line: u64,
        assoc: u64,
        wp: WritePolicy,
        ap: AllocatePolicy,
    ) -> CacheConfig {
        CacheConfig {
            name: "test".to_string(),
            capacity_bytes: capacity,
            line_bytes: line,
            associativity: assoc,
            write_policy: wp,
            allocate_policy: ap,
        }
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(cfg(
            0,
            32,
            1,
            WritePolicy::WriteThrough,
            AllocatePolicy::ReadAllocate
        )
        .validate()
        .is_err());
        assert!(cfg(
            1024,
            0,
            1,
            WritePolicy::WriteThrough,
            AllocatePolicy::ReadAllocate
        )
        .validate()
        .is_err());
        assert!(cfg(
            1024,
            48,
            1,
            WritePolicy::WriteThrough,
            AllocatePolicy::ReadAllocate
        )
        .validate()
        .is_err());
        assert!(cfg(
            1024,
            2048,
            1,
            WritePolicy::WriteThrough,
            AllocatePolicy::ReadAllocate
        )
        .validate()
        .is_err());
        assert!(cfg(
            1024,
            32,
            0,
            WritePolicy::WriteThrough,
            AllocatePolicy::ReadAllocate
        )
        .validate()
        .is_err());
        assert!(cfg(
            1024,
            32,
            64,
            WritePolicy::WriteThrough,
            AllocatePolicy::ReadAllocate
        )
        .validate()
        .is_err());
        assert!(cfg(
            1024,
            32,
            2,
            WritePolicy::WriteThrough,
            AllocatePolicy::ReadAllocate
        )
        .validate()
        .is_ok());
        // 96 KB 3-way with 64 B lines has 512 sets: valid (the 21164 L2).
        assert!(cfg(
            96 * 1024,
            64,
            3,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate
        )
        .validate()
        .is_ok());
        // 96 KB direct-mapped would need 1536 sets: invalid.
        assert!(cfg(
            96 * 1024,
            64,
            1,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate
        )
        .validate()
        .is_err());
    }

    #[test]
    fn direct_mapped_hit_and_miss() {
        let mut c = Cache::new(cfg(
            256,
            32,
            1,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate,
        ))
        .unwrap();
        assert!(!c.access(0, AccessKind::Read).is_hit());
        assert!(c.access(8, AccessKind::Read).is_hit()); // same line
        assert!(c.access(16, AccessKind::Read).is_hit());
        // 256 B / 32 B = 8 sets; address 256 maps to set 0 and evicts line 0.
        assert!(!c.access(256, AccessKind::Read).is_hit());
        assert!(!c.access(0, AccessKind::Read).is_hit());
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_replacement_in_two_way_set() {
        // 2 ways, 2 sets, 32 B lines => capacity 128 B.
        let mut c = Cache::new(cfg(
            128,
            32,
            2,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate,
        ))
        .unwrap();
        // Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
        c.access(0, AccessKind::Read); // miss, fill way 0
        c.access(128, AccessKind::Read); // line 4 -> set 0, miss, fill way 1
        c.access(0, AccessKind::Read); // hit, refresh LRU of line 0
        c.access(256, AccessKind::Read); // line 8 -> set 0, evicts line 4 (LRU)
        assert!(c.probe(0), "line 0 must survive (recently used)");
        assert!(!c.probe(128), "line 4 must have been evicted");
        assert!(c.probe(256));
    }

    #[test]
    fn write_back_dirty_eviction_counted() {
        let mut c = Cache::new(cfg(
            64,
            32,
            1,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate,
        ))
        .unwrap();
        c.access(0, AccessKind::Write); // allocate dirty (write-allocate)
        assert!(c.probe_dirty(0));
        let out = c.access(64, AccessKind::Read); // same set, evicts dirty line
        match out {
            LookupOutcome::Miss {
                victim_dirty,
                allocated,
            } => {
                assert!(victim_dirty);
                assert!(allocated);
            }
            LookupOutcome::Hit => panic!("expected a miss"),
        }
        assert_eq!(c.write_backs(), 1);
    }

    #[test]
    fn write_through_store_miss_does_not_allocate() {
        let mut c = Cache::new(cfg(
            64,
            32,
            1,
            WritePolicy::WriteThrough,
            AllocatePolicy::ReadAllocate,
        ))
        .unwrap();
        let out = c.access(0, AccessKind::Write);
        assert_eq!(
            out,
            LookupOutcome::Miss {
                victim_dirty: false,
                allocated: false
            }
        );
        assert!(!c.probe(0));
        // A read allocates; a subsequent store hits and stays clean.
        c.access(0, AccessKind::Read);
        assert!(c.access(0, AccessKind::Write).is_hit());
        assert!(!c.probe_dirty(0), "write-through lines never become dirty");
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = Cache::new(cfg(
            64,
            32,
            1,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate,
        ))
        .unwrap();
        c.access(0, AccessKind::Write);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        c.access(0, AccessKind::Read);
        assert_eq!(c.invalidate(0), Some(false));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = Cache::new(cfg(
            64,
            32,
            2,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate,
        ))
        .unwrap();
        c.access(0, AccessKind::Read);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn working_set_fits_iff_capacity() {
        // 1 KB, 32 B lines, 4-way. Touch exactly 1 KB twice: second pass all hits.
        let mut c = Cache::new(cfg(
            1024,
            32,
            4,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate,
        ))
        .unwrap();
        for pass in 0..2 {
            for w in 0..(1024 / 8) {
                c.access(w * 8, AccessKind::Read);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        assert_eq!(
            c.misses(),
            0,
            "primed working set equal to capacity must fully hit"
        );
        // Now 2 KB: second pass must miss every line again (LRU over a looped pattern).
        let mut c2 = Cache::new(cfg(
            1024,
            32,
            4,
            WritePolicy::WriteBack,
            AllocatePolicy::ReadWriteAllocate,
        ))
        .unwrap();
        for pass in 0..2 {
            for w in 0..(2048 / 8) {
                c2.access(w * 8, AccessKind::Read);
            }
            if pass == 0 {
                c2.reset_stats();
            }
        }
        assert_eq!(c2.hits() % 4, 0);
        assert!(
            c2.misses() >= 2048 / 32,
            "2x-capacity loop must keep missing"
        );
    }
}
