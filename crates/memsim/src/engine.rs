//! The trace engine: runs access streams through a node and accounts cycles.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::access::{Access, AccessKind, WORD_BYTES};
use crate::config::NodeConfig;
use crate::cpu::CpuConfig;
use crate::error::ConfigError;
use crate::hierarchy::MemoryHierarchy;
use crate::stats::RunStats;

/// Process-wide switch forcing the *cold* (fully-instrumented) execution
/// path: priming passes run through [`MemoryEngine::run_trace`] with window
/// statistics and latency-histogram recording instead of the stats-free
/// [`MemoryEngine::prime_trace`]. The two paths evolve identical state and
/// clocks, so results are bit-identical either way; the switch exists as an
/// escape hatch (`--cold`) and for A/B verification in tests and benches.
static COLD_PATH: AtomicBool = AtomicBool::new(false);

/// Enables or disables the process-wide cold execution path.
pub fn set_cold_path(on: bool) {
    COLD_PATH.store(on, Ordering::Relaxed);
}

/// Whether the process-wide cold execution path is enabled.
pub fn cold_path() -> bool {
    COLD_PATH.load(Ordering::Relaxed)
}

/// A complete simulated node: CPU issue model + memory hierarchy, with a
/// monotonically advancing simulated clock.
///
/// The engine is deliberately single-threaded and deterministic: identical
/// traces over identical configurations always produce identical cycle
/// counts (a property the test suite asserts).
#[derive(Debug, Clone)]
pub struct MemoryEngine {
    cpu: CpuConfig,
    hierarchy: MemoryHierarchy,
    now: f64,
}

impl MemoryEngine {
    /// Builds an engine for `node`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`MemoryEngine::try_new`]
    /// to handle configuration errors gracefully.
    pub fn new(node: NodeConfig) -> Self {
        match Self::try_new(node) {
            Ok(e) => e,
            Err(err) => panic!("invalid node configuration: {err}"),
        }
    }

    /// Builds an engine for `node`, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any component configuration is invalid.
    pub fn try_new(node: NodeConfig) -> Result<Self, ConfigError> {
        node.validate()?;
        let hierarchy = MemoryHierarchy::new(node.hierarchy, node.cpu.miss_overlap)?;
        Ok(MemoryEngine {
            cpu: node.cpu,
            hierarchy,
            now: 0.0,
        })
    }

    /// The CPU configuration (for clock/bandwidth conversions).
    pub fn cpu(&self) -> &CpuConfig {
        &self.cpu
    }

    /// The memory hierarchy (for probing in tests and coherence layers).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Mutable access to the hierarchy (coherence layers invalidate lines).
    pub fn hierarchy_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.hierarchy
    }

    /// Current simulated time in cycles since construction or [`Self::flush`].
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Clears all cache/DRAM/stream/write-buffer state and rewinds the clock.
    pub fn flush(&mut self) {
        self.hierarchy.flush();
        self.now = 0.0;
    }

    /// Runs every access of `trace`, returning the window statistics.
    ///
    /// Statistics cover exactly this call; the hierarchy's tag/row state
    /// carries over between calls (so a priming pass followed by a measured
    /// pass expresses the paper's "primed cache" methodology).
    pub fn run_trace<I>(&mut self, trace: I) -> RunStats
    where
        I: IntoIterator<Item = Access>,
    {
        self.hierarchy.reset_window_stats();
        let mut stats = RunStats::default();
        let start = self.now;
        for access in trace {
            let issue = match access.kind {
                AccessKind::Read => self.cpu.load_issue_cycles,
                AccessKind::Write => self.cpu.store_issue_cycles,
            } + self.cpu.loop_overhead_cycles;
            let cost = match access.kind {
                AccessKind::Read => self.hierarchy.load(access.addr, self.now),
                AccessKind::Write => self.hierarchy.store(access.addr, self.now),
            };
            stats.latency.record(issue + cost.cycles);
            self.now += issue + cost.cycles;
            stats.accesses += 1;
            match access.kind {
                AccessKind::Read => stats.reads += 1,
                AccessKind::Write => stats.writes += 1,
            }
        }
        // Outstanding buffered writes are part of the transfer's cost.
        let drain = self.hierarchy.drain_writes(self.now);
        self.now += drain;
        stats.cycles = self.now - start;
        stats.bytes = stats.accesses * WORD_BYTES;
        self.hierarchy.export_stats(&mut stats);
        stats
    }

    /// Runs every access of `trace` for its *state effects only*: tags, LRU
    /// stamps, stream detectors, DRAM row/bank state, write-buffer occupancy
    /// and the simulated clock advance exactly as in
    /// [`MemoryEngine::run_trace`], but no [`RunStats`] (and in particular no
    /// latency histogram, whose per-access `log2` dominates the priming
    /// pass's cost) is assembled. Window counters the measured pass would
    /// discard anyway are skipped.
    pub fn prime_trace<I>(&mut self, trace: I)
    where
        I: IntoIterator<Item = Access>,
    {
        self.hierarchy.reset_window_stats();
        for access in trace {
            let issue = match access.kind {
                AccessKind::Read => self.cpu.load_issue_cycles,
                AccessKind::Write => self.cpu.store_issue_cycles,
            } + self.cpu.loop_overhead_cycles;
            let cost = match access.kind {
                AccessKind::Read => self.hierarchy.prime_load(access.addr, self.now),
                AccessKind::Write => self.hierarchy.prime_store(access.addr, self.now),
            };
            self.now += issue + cost.cycles;
        }
        let drain = self.hierarchy.drain_writes(self.now);
        self.now += drain;
    }

    /// Convenience wrapper for load-only traces.
    pub fn run_loads<I>(&mut self, trace: I) -> RunStats
    where
        I: IntoIterator<Item = Access>,
    {
        self.run_trace(trace)
    }

    /// Primes the hierarchy with one full pass of `prime`, then measures a
    /// second pass `measure` — the paper's methodology: "our
    /// micro-benchmarks access all locations of the working set exactly
    /// once, but start with a primed cache for exactly that working set."
    pub fn prime_and_measure<P, M>(&mut self, prime: P, measure: M) -> RunStats
    where
        P: IntoIterator<Item = Access>,
        M: IntoIterator<Item = Access>,
    {
        if cold_path() {
            let _ = self.run_trace(prime);
        } else {
            self.prime_trace(prime);
        }
        self.run_trace(measure)
    }

    /// Bandwidth of a run in MB/s, counting the bytes the run touched.
    pub fn bandwidth_mb_s(&self, stats: &RunStats) -> f64 {
        self.cpu.bandwidth_mb_s(stats.bytes as f64, stats.cycles)
    }

    /// Bandwidth in MB/s counting only `bytes` as payload (copy benchmarks
    /// count the copied words once even though they issue a load *and* a
    /// store per word).
    pub fn payload_bandwidth_mb_s(&self, bytes: u64, stats: &RunStats) -> f64 {
        self.cpu.bandwidth_mb_s(bytes as f64, stats.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;
    use crate::trace::{CopyPass, StridedPass};

    #[test]
    fn determinism() {
        let run = || {
            let mut e = MemoryEngine::new(presets::tiny_test_node());
            let pass = StridedPass::new(0, 4096, 3);
            e.prime_and_measure(pass.clone(), pass).cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn primed_small_working_set_hits_l1() {
        let mut e = MemoryEngine::new(presets::tiny_test_node());
        let words = 4 * 1024 / 8; // 4 KB < 8 KB L1
        let pass = StridedPass::new(0, words, 1);
        let stats = e.prime_and_measure(pass.clone(), pass);
        assert_eq!(stats.levels[0].misses, 0, "primed 4 KB must fully hit L1");
        let bw = e.bandwidth_mb_s(&stats);
        // 1 cycle per 8-byte load at 100 MHz = 800 MB/s.
        assert!((bw - 800.0).abs() < 1.0, "got {bw}");
    }

    #[test]
    fn large_working_set_misses_to_dram() {
        let mut e = MemoryEngine::new(presets::tiny_test_node());
        let words = 1024 * 1024 / 8; // 1 MB >> 64 KB L2
        let pass = StridedPass::new(0, words, 1);
        let stats = e.prime_and_measure(pass.clone(), pass);
        assert!(stats.dram_accesses > 0);
        let bw = e.bandwidth_mb_s(&stats);
        assert!(
            bw < 800.0,
            "DRAM-bound run must be slower than L1, got {bw}"
        );
    }

    #[test]
    fn contiguous_beats_strided_from_dram() {
        let words = 1024 * 1024 / 8;
        let mut e1 = MemoryEngine::new(presets::tiny_test_node());
        let contig = StridedPass::new(0, words, 1);
        let bw_contig = {
            let s = e1.prime_and_measure(contig.clone(), contig);
            e1.bandwidth_mb_s(&s)
        };
        let mut e2 = MemoryEngine::new(presets::tiny_test_node());
        let strided = StridedPass::new(0, words, 16);
        let bw_strided = {
            let s = e2.prime_and_measure(strided.clone(), strided);
            e2.bandwidth_mb_s(&s)
        };
        assert!(
            bw_contig > 2.0 * bw_strided,
            "stream support must favor contiguous access: {bw_contig} vs {bw_strided}"
        );
    }

    #[test]
    fn working_set_plateau_ordering() {
        // Bandwidth must be monotonically non-increasing across the plateaus:
        // L1-resident > L2-resident > DRAM-resident.
        let bw_at = |bytes: u64| {
            let mut e = MemoryEngine::new(presets::tiny_test_node());
            let pass = StridedPass::new(0, bytes / 8, 1);
            let s = e.prime_and_measure(pass.clone(), pass);
            e.bandwidth_mb_s(&s)
        };
        let l1 = bw_at(4 * 1024);
        let l2 = bw_at(32 * 1024);
        let dram = bw_at(1024 * 1024);
        assert!(l1 > l2, "L1 {l1} must beat L2 {l2}");
        assert!(l2 > dram, "L2 {l2} must beat DRAM {dram}");
    }

    #[test]
    fn copy_counts_payload_once() {
        let mut e = MemoryEngine::new(presets::tiny_test_node());
        let words = 64 * 1024 / 8;
        let pass = CopyPass::new(0, 16 << 20, words, 1, 1);
        let stats = e.run_trace(pass);
        assert_eq!(stats.reads, words);
        assert_eq!(stats.writes, words);
        let payload = e.payload_bandwidth_mb_s(words * 8, &stats);
        let raw = e.bandwidth_mb_s(&stats);
        assert!((raw / payload - 2.0).abs() < 1e-9);
    }

    #[test]
    fn write_buffer_coalescing_speeds_contiguous_stores() {
        use crate::trace::StorePass;
        let words = 64 * 1024 / 8;
        let mut e = MemoryEngine::new(presets::tiny_streamed_node());
        let contig = e.run_trace(StorePass::new(0, words, 1));
        let mut e2 = MemoryEngine::new(presets::tiny_streamed_node());
        let strided = e2.run_trace(StorePass::new(0, words, 8));
        assert!(
            contig.cycles < strided.cycles,
            "coalesced contiguous stores must be cheaper: {} vs {}",
            contig.cycles,
            strided.cycles
        );
    }

    #[test]
    fn try_new_rejects_invalid_configs() {
        let mut node = presets::tiny_test_node();
        node.cpu.miss_overlap = 0.0;
        assert!(MemoryEngine::try_new(node).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid node configuration")]
    fn new_panics_on_invalid_configs() {
        let mut node = presets::tiny_test_node();
        node.cpu.clock_mhz = 0.0;
        let _ = MemoryEngine::new(node);
    }
}
