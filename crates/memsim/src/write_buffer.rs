//! Coalescing write buffer (the T3D's "write-back queue").
//!
//! From the paper (§3.2): "The write path contains an on-chip write-back
//! queue that buffers the high rate processor writes and coalesces them into
//! 32 bytes entities if they are contiguous." Remote stores "are directly
//! captured from the write back queues".
//!
//! The model: stores enter the buffer; a store that falls into the currently
//! open aligned window merges for free, otherwise a new entry is opened. In
//! steady state the processor is limited by the drain rate of entries, so the
//! amortized cost of a store is `drain cost / stores-per-entry` — which is
//! what gives the T3D its strided-store advantage (contiguous stores share a
//! 32-byte entry, strided stores each pay for a full entry drain).

use crate::access::Addr;
use crate::error::ConfigError;

/// Static description of a write buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteBufferConfig {
    /// Number of entries the queue holds. The queue only throttles once it is
    /// full, so small counts make stalls visible earlier.
    pub entries: usize,
    /// Aligned window (bytes) a single entry covers; stores within the window
    /// coalesce. The T3D uses 32-byte entities.
    pub entry_bytes: u64,
    /// Cycles to drain one entry to the next level (memory or network).
    pub drain_cycles_per_entry: f64,
    /// Whether coalescing is enabled. Disabling it is the "WBQ coalescing
    /// off" ablation: every store opens (and drains) its own entry.
    pub coalesce: bool,
}

impl WriteBufferConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if there are no entries, the window is not a
    /// non-zero power of two, or the drain cost is negative.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = "write buffer";
        if self.entries == 0 {
            return Err(ConfigError::new(c, "must have at least one entry"));
        }
        if self.entry_bytes == 0 || !self.entry_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                c,
                "entry window must be a non-zero power of two",
            ));
        }
        if self.drain_cycles_per_entry < 0.0 {
            return Err(ConfigError::new(c, "drain cost must be non-negative"));
        }
        Ok(())
    }
}

/// Outcome of pushing one store into the buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushOutcome {
    /// Cycles the processor stalled because the queue was full.
    pub stall_cycles: f64,
    /// Whether the store coalesced into the open entry.
    pub coalesced: bool,
}

/// Runtime state of a coalescing write buffer.
///
/// Like [`crate::dram::Dram`], the buffer is driven by a caller-supplied
/// monotonic *now* timestamp: entries drain continuously at the configured
/// rate while the processor makes progress.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    config: WriteBufferConfig,
    /// `log2(entry_bytes)`; the window is a validated power of two, so
    /// `addr >> entry_shift` is exactly `addr / entry_bytes`.
    entry_shift: u32,
    /// Window index of the entry currently open for coalescing.
    open_window: Option<u64>,
    /// Number of entries logically occupied (including the open one).
    occupancy: usize,
    /// Simulated time at which the oldest entry finishes draining.
    drain_front: f64,
    entries_drained: u64,
    stores: u64,
    coalesced_stores: u64,
    stall_total: f64,
}

impl WriteBuffer {
    /// Builds a write buffer from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`WriteBufferConfig::validate`] errors.
    pub fn new(config: WriteBufferConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(WriteBuffer {
            entry_shift: config.entry_bytes.trailing_zeros(),
            config,
            open_window: None,
            occupancy: 0,
            drain_front: 0.0,
            entries_drained: 0,
            stores: 0,
            coalesced_stores: 0,
            stall_total: 0.0,
        })
    }

    /// The configuration this buffer was built from.
    pub fn config(&self) -> &WriteBufferConfig {
        &self.config
    }

    /// Total stores pushed.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Stores that merged into an open entry.
    pub fn coalesced_stores(&self) -> u64 {
        self.coalesced_stores
    }

    /// Entries fully drained to the next level.
    pub fn entries_drained(&self) -> u64 {
        self.entries_drained
    }

    /// Total processor stall cycles caused by a full queue.
    pub fn total_stall_cycles(&self) -> f64 {
        self.stall_total
    }

    /// Clears all state and statistics.
    pub fn reset(&mut self) {
        self.open_window = None;
        self.occupancy = 0;
        self.drain_front = 0.0;
        self.entries_drained = 0;
        self.stores = 0;
        self.coalesced_stores = 0;
        self.stall_total = 0.0;
    }

    fn catch_up_drain(&mut self, now: f64) {
        // Entries complete one after another, drain_cycles apart.
        while self.occupancy > 0 && self.drain_front <= now {
            self.occupancy -= 1;
            self.entries_drained += 1;
            self.drain_front += self.config.drain_cycles_per_entry;
            if self.occupancy == 0 {
                self.open_window = None;
            }
        }
        if self.occupancy == 0 {
            // Idle queue: next entry starts draining when pushed.
            self.drain_front = now;
        }
    }

    /// Pushes one store at simulated time `now`.
    ///
    /// Returns the stall (if the queue was full, the processor waits for the
    /// oldest entry to finish draining) and whether the store coalesced.
    pub fn push(&mut self, addr: Addr, now: f64) -> PushOutcome {
        self.stores += 1;
        self.catch_up_drain(now);

        let window = addr >> self.entry_shift;
        if self.config.coalesce && self.open_window == Some(window) {
            self.coalesced_stores += 1;
            return PushOutcome {
                stall_cycles: 0.0,
                coalesced: true,
            };
        }

        // Need a new entry: stall if full.
        let mut stall = 0.0;
        if self.occupancy >= self.config.entries {
            stall = (self.drain_front - now).max(0.0);
            self.stall_total += stall;
            // The oldest entry completes at drain_front.
            self.occupancy -= 1;
            self.entries_drained += 1;
            self.drain_front += self.config.drain_cycles_per_entry;
        }
        if self.occupancy == 0 {
            self.drain_front = (now + stall) + self.config.drain_cycles_per_entry;
        }
        self.occupancy += 1;
        self.open_window = Some(window);
        PushOutcome {
            stall_cycles: stall,
            coalesced: false,
        }
    }

    /// Drains all remaining entries, returning the cycles needed beyond `now`.
    pub fn flush(&mut self, now: f64) -> f64 {
        self.catch_up_drain(now);
        if self.occupancy == 0 {
            return 0.0;
        }
        let remaining = self.occupancy as f64;
        let done = (self.drain_front - now).max(0.0)
            + (remaining - 1.0).max(0.0) * self.config.drain_cycles_per_entry;
        self.entries_drained += self.occupancy as u64;
        self.occupancy = 0;
        self.open_window = None;
        self.drain_front = now + done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(entries: usize, coalesce: bool) -> WriteBufferConfig {
        WriteBufferConfig {
            entries,
            entry_bytes: 32,
            drain_cycles_per_entry: 10.0,
            coalesce,
        }
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(cfg(0, true).validate().is_err());
        let mut c = cfg(4, true);
        c.entry_bytes = 24;
        assert!(c.validate().is_err());
        let mut c = cfg(4, true);
        c.drain_cycles_per_entry = -1.0;
        assert!(c.validate().is_err());
        assert!(cfg(4, true).validate().is_ok());
    }

    #[test]
    fn contiguous_stores_coalesce_four_to_one() {
        let mut wb = WriteBuffer::new(cfg(8, true)).unwrap();
        let mut now = 0.0;
        for w in 0..16u64 {
            let out = wb.push(w * 8, now);
            now += 1.0;
            assert_eq!(out.stall_cycles, 0.0);
        }
        // 16 stores / (32 B / 8 B) = 4 entries opened.
        assert_eq!(wb.coalesced_stores(), 12);
        assert_eq!(wb.stores(), 16);
    }

    #[test]
    fn strided_stores_never_coalesce() {
        let mut wb = WriteBuffer::new(cfg(64, true)).unwrap();
        let mut now = 0.0;
        for w in 0..16u64 {
            let out = wb.push(w * 64, now); // stride 8 words = 64 B > window
            now += 1.0;
            assert!(!out.coalesced);
        }
        assert_eq!(wb.coalesced_stores(), 0);
    }

    #[test]
    fn coalescing_off_ablation_disables_merging() {
        let mut wb = WriteBuffer::new(cfg(64, false)).unwrap();
        let mut now = 0.0;
        for w in 0..8u64 {
            assert!(!wb.push(w * 8, now).coalesced);
            now += 1.0;
        }
    }

    #[test]
    fn full_queue_stalls_at_drain_rate() {
        // 2 entries, 10 cycles each; push 4 strided stores back-to-back.
        let mut wb = WriteBuffer::new(cfg(2, true)).unwrap();
        let mut now = 0.0;
        let mut total_stall = 0.0;
        for w in 0..8u64 {
            let out = wb.push(w * 64, now);
            total_stall += out.stall_cycles;
            now += 1.0 + out.stall_cycles;
        }
        assert!(
            total_stall > 0.0,
            "a saturated queue must throttle the processor"
        );
        // Steady state cost per store approaches the drain cost.
        assert!(wb.total_stall_cycles() > 0.0);
    }

    #[test]
    fn idle_time_drains_the_queue() {
        let mut wb = WriteBuffer::new(cfg(2, true)).unwrap();
        wb.push(0, 0.0);
        wb.push(64, 1.0);
        // Wait long enough for both entries to drain; the next push is free.
        let out = wb.push(128, 1000.0);
        assert_eq!(out.stall_cycles, 0.0);
        assert!(wb.entries_drained() >= 2);
    }

    #[test]
    fn flush_charges_remaining_drain() {
        let mut wb = WriteBuffer::new(cfg(8, true)).unwrap();
        wb.push(0, 0.0);
        wb.push(64, 0.0);
        wb.push(128, 0.0);
        let cost = wb.flush(0.0);
        assert!(
            cost >= 20.0,
            "three entries at 10 cycles each need >= 20 cycles beyond now, got {cost}"
        );
        assert_eq!(wb.flush(1_000.0), 0.0);
    }
}
