//! Sequential stream detection (read-ahead logic / stream buffers).
//!
//! Both Cray machines owe their contiguous-DRAM bandwidth to hardware that
//! recognizes sequential access and pre-fetches ahead of the processor:
//! "The external circuitry supports contiguous reads with a read-ahead logic"
//! (T3D, §3.2); "the memory system includes support for memory streams"
//! (T3E, §3.3). The DEC 8400 likewise "includes modest stream support for
//! large contiguous transfers" (§3.1).
//!
//! The model: a small table of stream slots, each remembering the last line
//! index it saw. A miss whose line index is exactly `last + 1` for some slot
//! advances that slot and counts as *streamed* once the slot has seen enough
//! consecutive lines to train. Streamed fills are charged the pipelined
//! transfer cost instead of the full access latency.

use crate::error::ConfigError;

/// Static description of a stream detector at one hierarchy boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Number of independent streams tracked simultaneously. The T3E has six
    /// stream buffers; the T3D read-ahead logic follows one stream.
    pub slots: usize,
    /// Consecutive-line count required before fills are considered streamed.
    /// Training misses are charged the full (non-streamed) cost.
    pub train_length: u32,
}

impl StreamConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if there are no slots or the train length is
    /// zero (a zero train length would classify every access as streamed).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.slots == 0 {
            return Err(ConfigError::new(
                "stream detector",
                "must have at least one slot",
            ));
        }
        if self.train_length == 0 {
            return Err(ConfigError::new(
                "stream detector",
                "train length must be at least 1",
            ));
        }
        Ok(())
    }
}

impl Default for StreamConfig {
    /// One slot, trains after two consecutive lines — the minimal useful
    /// read-ahead unit (T3D-like).
    fn default() -> Self {
        StreamConfig {
            slots: 1,
            train_length: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    last_line: u64,
    run: u32,
    /// LRU stamp for slot replacement.
    lru: u64,
    valid: bool,
}

/// Runtime state of a stream detector.
#[derive(Debug, Clone)]
pub struct StreamDetector {
    config: StreamConfig,
    slots: Vec<Slot>,
    tick: u64,
    streamed: u64,
    unstreamed: u64,
}

impl StreamDetector {
    /// Builds a detector from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamConfig::validate`] errors.
    pub fn new(config: StreamConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let slots = vec![
            Slot {
                last_line: 0,
                run: 0,
                lru: 0,
                valid: false
            };
            config.slots
        ];
        Ok(StreamDetector {
            config,
            slots,
            tick: 0,
            streamed: 0,
            unstreamed: 0,
        })
    }

    /// The configuration this detector was built from.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Number of fills classified as streamed so far.
    pub fn streamed(&self) -> u64 {
        self.streamed
    }

    /// Number of fills classified as not streamed so far.
    pub fn unstreamed(&self) -> u64 {
        self.unstreamed
    }

    /// Forgets all stream state and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            s.valid = false;
            s.run = 0;
        }
        self.tick = 0;
        self.streamed = 0;
        self.unstreamed = 0;
    }

    /// Observes a line-granular fill request and classifies it.
    ///
    /// Returns `true` when the fill is part of a trained sequential stream
    /// (and should be charged the pipelined cost).
    pub fn observe(&mut self, line_index: u64) -> bool {
        self.tick += 1;

        // Continuation of an existing stream?
        for s in self.slots.iter_mut() {
            if s.valid && line_index == s.last_line + 1 {
                s.last_line = line_index;
                s.run = s.run.saturating_add(1);
                s.lru = self.tick;
                if s.run >= self.config.train_length {
                    self.streamed += 1;
                    return true;
                }
                self.unstreamed += 1;
                return false;
            }
            if s.valid && line_index == s.last_line {
                // Repeated fill of the same line (e.g. multiple upper-level
                // lines per lower-level line); keep the stream alive.
                s.lru = self.tick;
                if s.run >= self.config.train_length {
                    self.streamed += 1;
                    return true;
                }
                self.unstreamed += 1;
                return false;
            }
        }

        // Allocate a slot (LRU) for a potential new stream.
        let mut victim = 0;
        let mut best = u64::MAX;
        for (i, s) in self.slots.iter().enumerate() {
            if !s.valid {
                victim = i;
                break;
            }
            if s.lru < best {
                best = s.lru;
                victim = i;
            }
        }
        self.slots[victim] = Slot {
            last_line: line_index,
            run: 1,
            lru: self.tick,
            valid: true,
        };
        self.unstreamed += 1;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(StreamConfig {
            slots: 0,
            train_length: 2
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            slots: 1,
            train_length: 0
        }
        .validate()
        .is_err());
        assert!(StreamConfig::default().validate().is_ok());
    }

    #[test]
    fn sequential_lines_train_then_stream() {
        // First observation starts the stream (run = 1, not streamed); the
        // second consecutive line reaches the train length and is streamed.
        let mut d = StreamDetector::new(StreamConfig {
            slots: 1,
            train_length: 2,
        })
        .unwrap();
        assert!(!d.observe(10));
        assert!(
            d.observe(11),
            "second consecutive line reaches train length 2"
        );
        assert!(d.observe(12));
        assert_eq!(d.streamed(), 2);
    }

    #[test]
    fn non_sequential_lines_never_stream() {
        let mut d = StreamDetector::new(StreamConfig {
            slots: 1,
            train_length: 2,
        })
        .unwrap();
        for i in 0..20 {
            assert!(
                !d.observe(i * 7),
                "stride-7 lines must not be classified as streamed"
            );
        }
        assert_eq!(d.streamed(), 0);
        assert_eq!(d.unstreamed(), 20);
    }

    #[test]
    fn multiple_slots_track_interleaved_streams() {
        let mut d = StreamDetector::new(StreamConfig {
            slots: 2,
            train_length: 2,
        })
        .unwrap();
        // Interleave two sequential streams; both should train.
        d.observe(100);
        d.observe(500);
        assert!(d.observe(101));
        assert!(d.observe(501));
        assert!(d.observe(102));
        assert!(d.observe(502));
    }

    #[test]
    fn one_slot_thrashes_on_interleaved_streams() {
        let mut d = StreamDetector::new(StreamConfig {
            slots: 1,
            train_length: 2,
        })
        .unwrap();
        d.observe(100);
        d.observe(500); // evicts stream at 100
        assert!(!d.observe(101), "single slot cannot hold two streams");
    }

    #[test]
    fn repeated_line_keeps_stream_alive() {
        let mut d = StreamDetector::new(StreamConfig {
            slots: 1,
            train_length: 2,
        })
        .unwrap();
        d.observe(7);
        assert!(d.observe(8));
        assert!(d.observe(8), "re-request of current line stays streamed");
        assert!(d.observe(9));
    }

    #[test]
    fn reset_forgets_training() {
        let mut d = StreamDetector::new(StreamConfig::default()).unwrap();
        d.observe(1);
        d.observe(2);
        d.reset();
        assert!(!d.observe(3));
        assert_eq!(d.streamed(), 0);
    }
}
