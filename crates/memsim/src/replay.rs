//! Replay of externally captured address traces.
//!
//! The paper's closing argument — realistic memory models "require
//! measurements of micro benchmarks" (§9) — applies to applications too: a
//! captured address trace replayed through a machine model yields the
//! application's achievable bandwidth on that memory system. This module
//! parses a minimal text trace format and replays it through a
//! [`MemoryEngine`].
//!
//! ## Trace format
//!
//! One access per line: `R <addr>` or `W <addr>`, address in decimal or
//! `0x`-prefixed hex. Blank lines and lines starting with `#` are ignored.
//!
//! ```text
//! # a tiny producer/consumer trace
//! W 0x1000
//! W 0x1008
//! R 4096
//! ```

use crate::access::{Access, Addr};
use crate::engine::MemoryEngine;
use crate::error::ConfigError;
use crate::stats::RunStats;

/// Parses the text trace format into accesses.
///
/// # Errors
///
/// Returns [`ConfigError`] with the offending line number for malformed
/// lines.
pub fn parse_trace(text: &str) -> Result<Vec<Access>, ConfigError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or_default();
        let addr_text = parts.next().ok_or_else(|| {
            ConfigError::new("trace", format!("line {}: missing address", lineno + 1))
        })?;
        if parts.next().is_some() {
            return Err(ConfigError::new(
                "trace",
                format!("line {}: trailing tokens", lineno + 1),
            ));
        }
        let addr = parse_addr(addr_text).ok_or_else(|| {
            ConfigError::new(
                "trace",
                format!("line {}: bad address {addr_text:?}", lineno + 1),
            )
        })?;
        let access = match kind {
            "R" | "r" => Access::read(addr),
            "W" | "w" => Access::write(addr),
            other => {
                return Err(ConfigError::new(
                    "trace",
                    format!("line {}: unknown access kind {other:?}", lineno + 1),
                ))
            }
        };
        out.push(access);
    }
    Ok(out)
}

fn parse_addr(text: &str) -> Option<Addr> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Addr::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Renders accesses back into the text format (round-trips with
/// [`parse_trace`]).
pub fn format_trace(accesses: &[Access]) -> String {
    let mut out = String::new();
    for a in accesses {
        let k = if a.kind.is_read() { 'R' } else { 'W' };
        out.push_str(&format!("{k} {:#x}\n", a.addr));
    }
    out
}

/// Replays a parsed trace through `engine`, returning the run statistics
/// and the achieved bandwidth in MB/s.
pub fn replay(engine: &mut MemoryEngine, accesses: &[Access]) -> (RunStats, f64) {
    let stats = engine.run_trace(accesses.iter().copied());
    let mb_s = engine.bandwidth_mb_s(&stats);
    (stats, mb_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use crate::config::presets;

    #[test]
    fn parses_decimal_hex_comments_and_blanks() {
        let text = "# header\n\nR 4096\nW 0x2000\nr 8\nw 0X10\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], Access::read(4096));
        assert_eq!(t[1], Access::write(0x2000));
        assert_eq!(t[2], Access::read(8));
        assert_eq!(t[3], Access::write(16));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        assert!(parse_trace("R").unwrap_err().problem().contains("line 1"));
        assert!(parse_trace("R 1 2")
            .unwrap_err()
            .problem()
            .contains("line 1"));
        assert!(parse_trace("X 1").unwrap_err().problem().contains("line 1"));
        assert!(parse_trace("\n\nR zzz")
            .unwrap_err()
            .problem()
            .contains("line 3"));
    }

    #[test]
    fn format_round_trips() {
        let t = vec![Access::read(64), Access::write(0x1000)];
        let parsed = parse_trace(&format_trace(&t)).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn replay_reports_bandwidth() {
        let mut engine = MemoryEngine::new(presets::tiny_test_node());
        let trace: Vec<Access> = (0..1024u64).map(|w| Access::read(w * 8)).collect();
        let (stats, mb_s) = replay(&mut engine, &trace);
        assert_eq!(stats.accesses, 1024);
        assert_eq!(stats.reads, 1024);
        assert!(mb_s > 0.0);
    }

    #[test]
    fn replay_distinguishes_access_kinds() {
        let mut engine = MemoryEngine::new(presets::tiny_test_node());
        let trace = parse_trace("R 0\nW 8\nR 16\n").unwrap();
        let (stats, _) = replay(&mut engine, &trace);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(trace[1].kind, AccessKind::Write);
    }
}
