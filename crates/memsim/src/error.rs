//! Configuration validation errors.

use std::error::Error;
use std::fmt;

/// An invalid simulator configuration.
///
/// Returned by the `validate` methods of the various `*Config` types. The
/// simulator constructors validate eagerly so that a bad machine description
/// fails at build time, not with a nonsense cycle count later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    component: String,
    problem: String,
}

impl ConfigError {
    /// Creates a new error for `component` describing `problem`.
    pub fn new(component: impl Into<String>, problem: impl Into<String>) -> Self {
        ConfigError {
            component: component.into(),
            problem: problem.into(),
        }
    }

    /// The component (e.g. `"cache L1"`) whose configuration is invalid.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Human-readable description of what is wrong.
    pub fn problem(&self) -> &str {
        &self.problem
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration for {}: {}",
            self.component, self.problem
        )
    }
}

impl Error for ConfigError {}

/// A runtime simulation error.
///
/// Where [`ConfigError`] reports an invalid machine *description*, this
/// reports a request the simulator cannot satisfy at run time: an address or
/// node outside the modelled range, a transfer that no live route can carry,
/// or malformed persisted state (e.g. a corrupt sweep checkpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The machine description itself is invalid.
    Config(ConfigError),
    /// An index, address or node lies outside the modelled range.
    OutOfRange {
        /// The component that rejected the request (e.g. `"torus"`).
        component: String,
        /// What was out of range.
        detail: String,
    },
    /// No route exists between two endpoints (e.g. faults partitioned the
    /// network).
    Unroutable {
        /// Human-readable description of the failed routing request.
        detail: String,
    },
    /// The request is structurally valid but not supported by this model.
    Unsupported {
        /// What was requested and why it is unsupported.
        detail: String,
    },
    /// Persisted state (checkpoint, results file) could not be parsed.
    Malformed {
        /// What failed to parse and why.
        detail: String,
    },
    /// An I/O operation on persisted state failed.
    Io {
        /// The operation and the underlying error text.
        detail: String,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::OutOfRange`].
    pub fn out_of_range(component: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::OutOfRange {
            component: component.into(),
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::Unroutable`].
    pub fn unroutable(detail: impl Into<String>) -> Self {
        SimError::Unroutable {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::Unsupported`].
    pub fn unsupported(detail: impl Into<String>) -> Self {
        SimError::Unsupported {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::Malformed`].
    pub fn malformed(detail: impl Into<String>) -> Self {
        SimError::Malformed {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::Io`].
    pub fn io(detail: impl Into<String>) -> Self {
        SimError::Io {
            detail: detail.into(),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::OutOfRange { component, detail } => {
                write!(f, "{component}: out of range: {detail}")
            }
            SimError::Unroutable { detail } => write!(f, "unroutable: {detail}"),
            SimError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            SimError::Malformed { detail } => write!(f, "malformed data: {detail}"),
            SimError::Io { detail } => write!(f, "i/o error: {detail}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_component_and_problem() {
        let e = ConfigError::new("cache L1", "line size must be a power of two");
        let s = e.to_string();
        assert!(s.contains("cache L1"));
        assert!(s.contains("power of two"));
        assert_eq!(e.component(), "cache L1");
        assert_eq!(e.problem(), "line size must be a power of two");
    }

    #[test]
    fn sim_error_wraps_config_error() {
        let cfg = ConfigError::new("torus", "all dimensions must be non-zero");
        let sim: SimError = cfg.clone().into();
        assert_eq!(sim, SimError::Config(cfg));
        assert!(sim.to_string().contains("torus"));
        assert!(Error::source(&sim).is_some());
    }

    #[test]
    fn sim_error_variants_display_their_detail() {
        assert!(SimError::out_of_range("torus", "node 99")
            .to_string()
            .contains("node 99"));
        assert!(SimError::unroutable("0 -> 5")
            .to_string()
            .contains("0 -> 5"));
        assert!(SimError::unsupported("negative stride")
            .to_string()
            .contains("stride"));
        assert!(SimError::malformed("bad checkpoint")
            .to_string()
            .contains("checkpoint"));
    }
}
