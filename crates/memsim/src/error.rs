//! Configuration validation errors.

use std::error::Error;
use std::fmt;

/// An invalid simulator configuration.
///
/// Returned by the `validate` methods of the various `*Config` types. The
/// simulator constructors validate eagerly so that a bad machine description
/// fails at build time, not with a nonsense cycle count later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    component: String,
    problem: String,
}

impl ConfigError {
    /// Creates a new error for `component` describing `problem`.
    pub fn new(component: impl Into<String>, problem: impl Into<String>) -> Self {
        ConfigError { component: component.into(), problem: problem.into() }
    }

    /// The component (e.g. `"cache L1"`) whose configuration is invalid.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Human-readable description of what is wrong.
    pub fn problem(&self) -> &str {
        &self.problem
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration for {}: {}", self.component, self.problem)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_component_and_problem() {
        let e = ConfigError::new("cache L1", "line size must be a power of two");
        let s = e.to_string();
        assert!(s.contains("cache L1"));
        assert!(s.contains("power of two"));
        assert_eq!(e.component(), "cache L1");
        assert_eq!(e.problem(), "line size must be a power of two");
    }
}
