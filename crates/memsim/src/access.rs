//! Basic address and access types shared by every component.

/// A physical byte address in the simulated node's memory.
///
/// The simulator models physical = virtual (the paper's micro-benchmarks are
/// constructed to avoid TLB effects, see DESIGN.md §6).
pub type Addr = u64;

/// Size of the 64-bit double words all of the paper's benchmarks operate on.
pub const WORD_BYTES: u64 = 8;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (read) of a 64-bit word.
    Read,
    /// A store (write) of a 64-bit word.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A single 64-bit memory access, the unit all traces are made of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address of the access (word aligned in all generated traces).
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Creates a read access at `addr`.
    pub fn read(addr: Addr) -> Self {
        Access {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access at `addr`.
    pub fn write(addr: Addr) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
        }
    }

    /// The cache-line index of this access for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn line_index(&self, line_bytes: u64) -> u64 {
        assert!(line_bytes > 0, "line size must be non-zero");
        self.addr / line_bytes
    }
}

/// Returns the line index of a byte address for a given line size.
///
/// # Panics
///
/// Panics if `line_bytes` is zero.
pub fn line_index(addr: Addr, line_bytes: u64) -> u64 {
    assert!(line_bytes > 0, "line size must be non-zero");
    addr / line_bytes
}

/// Aligns an address down to the start of its line.
pub fn line_base(addr: Addr, line_bytes: u64) -> Addr {
    line_index(addr, line_bytes) * line_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors() {
        let r = Access::read(64);
        assert_eq!(r.addr, 64);
        assert!(r.kind.is_read());
        assert!(!r.kind.is_write());
        let w = Access::write(8);
        assert!(w.kind.is_write());
    }

    #[test]
    fn line_math() {
        assert_eq!(line_index(0, 32), 0);
        assert_eq!(line_index(31, 32), 0);
        assert_eq!(line_index(32, 32), 1);
        assert_eq!(line_base(33, 32), 32);
        assert_eq!(Access::read(100).line_index(32), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_line_size_panics() {
        line_index(0, 0);
    }
}
