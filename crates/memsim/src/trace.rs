//! Access-pattern generators.
//!
//! The paper's micro-benchmarks "access all locations of the working set
//! exactly once" (§5) in strided order: for stride *s*, the loop makes *s*
//! interleaved passes over the array so that every word is touched once
//! (classic wrap-around strided access). These generators reproduce those
//! loops as address streams.

use crate::access::{Access, Addr, WORD_BYTES};

/// Enumerates the word offsets of a wrap-around strided pass.
///
/// Yields each of `words` indices exactly once, in the order
/// `0, s, 2s, …, 1, s+1, …` — the order a strided benchmark loop visits an
/// array while still covering it completely.
#[derive(Debug, Clone)]
pub struct StridedOrder {
    words: u64,
    stride: u64,
    offset: u64,
    index: u64,
    emitted: u64,
}

impl StridedOrder {
    /// Creates the order for `words` elements at `stride` (in words).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(words: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        StridedOrder {
            words,
            stride,
            offset: 0,
            index: 0,
            emitted: 0,
        }
    }
}

impl Iterator for StridedOrder {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.emitted >= self.words {
            return None;
        }
        // Advance to the next valid index, wrapping to the next offset lane.
        while self.index >= self.words {
            self.offset += 1;
            if self.offset >= self.stride {
                return None;
            }
            self.index = self.offset;
        }
        let out = self.index;
        self.index += self.stride;
        self.emitted += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.words - self.emitted) as usize;
        (left, Some(left))
    }
}

/// A load-only strided pass over a working set (the Load-Sum benchmark's
/// address stream).
#[derive(Debug, Clone)]
pub struct StridedPass {
    base: Addr,
    order: StridedOrder,
}

impl StridedPass {
    /// A pass over `words` 64-bit words starting at byte address `base`,
    /// visited at `stride` words.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(base: Addr, words: u64, stride: u64) -> Self {
        StridedPass {
            base,
            order: StridedOrder::new(words, stride),
        }
    }
}

impl Iterator for StridedPass {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        self.order
            .next()
            .map(|w| Access::read(self.base + w * WORD_BYTES))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.order.size_hint()
    }
}

/// A store-only strided pass (the Store-Constant benchmark's stream).
#[derive(Debug, Clone)]
pub struct StorePass {
    base: Addr,
    order: StridedOrder,
}

impl StorePass {
    /// A store pass over `words` words starting at `base` at `stride` words.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(base: Addr, words: u64, stride: u64) -> Self {
        StorePass {
            base,
            order: StridedOrder::new(words, stride),
        }
    }
}

impl Iterator for StorePass {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        self.order
            .next()
            .map(|w| Access::write(self.base + w * WORD_BYTES))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.order.size_hint()
    }
}

/// A copy pass: loads from a source region, stores to a destination region.
///
/// One side is strided, the other contiguous — "loading it with a fixed
/// stride and storing it contiguously, or … loading it contiguously and
/// storing it with a fixed stride. Such copy transfers are common in
/// transpose operations" (§4.2). Iteration order follows the strided side.
#[derive(Debug, Clone)]
pub struct CopyPass {
    src_base: Addr,
    dst_base: Addr,
    load_stride: u64,
    store_stride: u64,
    strided_order: StridedOrder,
    seq: u64,
    pending_store: Option<Addr>,
}

impl CopyPass {
    /// A copy of `words` words from `src_base` to `dst_base`.
    ///
    /// Exactly one of `load_stride` / `store_stride` is normally greater
    /// than one; if both are 1 the copy is contiguous-to-contiguous, and if
    /// both are greater than one both sides follow the same strided order.
    ///
    /// # Panics
    ///
    /// Panics if either stride is zero.
    pub fn new(
        src_base: Addr,
        dst_base: Addr,
        words: u64,
        load_stride: u64,
        store_stride: u64,
    ) -> Self {
        assert!(
            load_stride > 0 && store_stride > 0,
            "strides must be non-zero"
        );
        let strided = load_stride.max(store_stride);
        CopyPass {
            src_base,
            dst_base,
            load_stride,
            store_stride,
            strided_order: StridedOrder::new(words, strided),
            seq: 0,
            pending_store: None,
        }
    }
}

impl Iterator for CopyPass {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if let Some(addr) = self.pending_store.take() {
            return Some(Access::write(addr));
        }
        let strided_idx = self.strided_order.next()?;
        let seq_idx = self.seq;
        self.seq += 1;
        // The side with the larger stride follows the strided order; the
        // other side walks sequentially.
        let (load_idx, store_idx) = if self.load_stride >= self.store_stride {
            (
                strided_idx,
                if self.store_stride == 1 {
                    seq_idx
                } else {
                    strided_idx
                },
            )
        } else {
            (
                if self.load_stride == 1 {
                    seq_idx
                } else {
                    strided_idx
                },
                strided_idx,
            )
        };
        self.pending_store = Some(self.dst_base + store_idx * WORD_BYTES);
        Some(Access::read(self.src_base + load_idx * WORD_BYTES))
    }
}

/// A tiny deterministic xorshift64 PRNG for index shuffling (no external
/// dependency, bit-stable across platforms).
#[derive(Debug, Clone)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Deterministic pseudo-random word indices over `[0, words)` for the
/// indexed (gather) pattern.
///
/// When `words <= max` the result is a full Fisher-Yates permutation (each
/// word visited exactly once, like the strided benchmarks); otherwise `max`
/// indices are sampled uniformly (collisions are negligible for
/// `max << words` and the working set is far beyond any cache anyway).
pub fn shuffled_indices(words: u64, max: usize, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed);
    if words as usize <= max {
        let mut v: Vec<u64> = (0..words).collect();
        for i in (1..v.len()).rev() {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        v
    } else {
        (0..max).map(|_| rng.next() % words).collect()
    }
}

/// An indexed (gather) pass following an arbitrary permutation of word
/// offsets — the "indexed accesses" (sparse matrix) pattern of §4.
#[derive(Debug, Clone)]
pub struct IndexedPass {
    base: Addr,
    indices: Vec<u64>,
    pos: usize,
}

impl IndexedPass {
    /// A read pass that visits `base + indices[k] * 8` in order.
    pub fn new(base: Addr, indices: Vec<u64>) -> Self {
        IndexedPass {
            base,
            indices,
            pos: 0,
        }
    }
}

impl Iterator for IndexedPass {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let idx = *self.indices.get(self.pos)?;
        self.pos += 1;
        Some(Access::read(self.base + idx * WORD_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn strided_order_is_a_permutation() {
        for &stride in &[1u64, 2, 3, 5, 8, 13, 64, 100] {
            for &words in &[1u64, 7, 64, 100] {
                let seen: Vec<u64> = StridedOrder::new(words, stride).collect();
                assert_eq!(seen.len() as u64, words, "stride {stride} words {words}");
                let set: HashSet<u64> = seen.iter().copied().collect();
                assert_eq!(set.len() as u64, words, "duplicates at stride {stride}");
                assert!(set.iter().all(|&w| w < words));
            }
        }
    }

    #[test]
    fn stride_one_is_sequential() {
        let seen: Vec<u64> = StridedOrder::new(8, 1).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn stride_three_interleaves_lanes() {
        let seen: Vec<u64> = StridedOrder::new(8, 3).collect();
        assert_eq!(seen, vec![0, 3, 6, 1, 4, 7, 2, 5]);
    }

    #[test]
    fn stride_larger_than_words_still_covers() {
        let seen: Vec<u64> = StridedOrder::new(4, 100).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn strided_pass_addresses_are_word_scaled() {
        let accs: Vec<Access> = StridedPass::new(1024, 4, 2).collect();
        assert_eq!(accs[0].addr, 1024);
        assert_eq!(accs[1].addr, 1024 + 16);
        assert!(accs.iter().all(|a| a.kind.is_read()));
    }

    #[test]
    fn store_pass_yields_writes() {
        let accs: Vec<Access> = StorePass::new(0, 4, 1).collect();
        assert!(accs.iter().all(|a| a.kind.is_write()));
        assert_eq!(accs.len(), 4);
    }

    #[test]
    fn copy_pass_alternates_read_write_and_covers_both_regions() {
        let accs: Vec<Access> = CopyPass::new(0, 1 << 20, 8, 4, 1).collect();
        assert_eq!(accs.len(), 16);
        for pair in accs.chunks(2) {
            assert!(pair[0].kind.is_read());
            assert!(pair[1].kind.is_write());
            assert!(pair[0].addr < 1 << 20);
            assert!(pair[1].addr >= 1 << 20);
        }
        // Stores are contiguous (store_stride == 1).
        let stores: Vec<Addr> = accs
            .iter()
            .filter(|a| a.kind.is_write())
            .map(|a| a.addr)
            .collect();
        let expect: Vec<Addr> = (0..8).map(|k| (1 << 20) + k * 8).collect();
        assert_eq!(stores, expect);
        // Loads follow the strided order.
        let loads: Vec<Addr> = accs
            .iter()
            .filter(|a| a.kind.is_read())
            .map(|a| a.addr)
            .collect();
        assert_eq!(loads[0], 0);
        assert_eq!(loads[1], 32);
    }

    #[test]
    fn copy_pass_strided_stores() {
        let accs: Vec<Access> = CopyPass::new(0, 4096, 8, 1, 4).collect();
        let loads: Vec<Addr> = accs
            .iter()
            .filter(|a| a.kind.is_read())
            .map(|a| a.addr)
            .collect();
        assert_eq!(loads, (0..8).map(|k| k * 8).collect::<Vec<_>>());
        let stores: Vec<Addr> = accs
            .iter()
            .filter(|a| a.kind.is_write())
            .map(|a| a.addr)
            .collect();
        assert_eq!(stores[0], 4096);
        assert_eq!(stores[1], 4096 + 32);
    }

    #[test]
    fn indexed_pass_follows_permutation() {
        let accs: Vec<Access> = IndexedPass::new(0, vec![5, 0, 3]).collect();
        assert_eq!(
            accs.iter().map(|a| a.addr).collect::<Vec<_>>(),
            vec![40, 0, 24]
        );
    }

    #[test]
    fn shuffled_indices_is_a_permutation_when_small() {
        let v = shuffled_indices(1000, 4096, 42);
        assert_eq!(v.len(), 1000);
        let set: HashSet<u64> = v.iter().copied().collect();
        assert_eq!(set.len(), 1000, "every word exactly once");
        assert!(v.iter().all(|&w| w < 1000));
        // And it is actually shuffled, not identity.
        assert_ne!(v, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_indices_samples_when_large() {
        let v = shuffled_indices(1 << 30, 1024, 7);
        assert_eq!(v.len(), 1024);
        assert!(v.iter().all(|&w| w < 1 << 30));
    }

    #[test]
    fn shuffled_indices_is_deterministic() {
        assert_eq!(
            shuffled_indices(500, 4096, 9),
            shuffled_indices(500, 4096, 9)
        );
        assert_ne!(
            shuffled_indices(500, 4096, 9),
            shuffled_indices(500, 4096, 10)
        );
    }
}
