//! Whole-node configuration and generic presets.
//!
//! Machine-accurate presets for the DEC 8400, Cray T3D and Cray T3E live in
//! the `gasnub-machines` crate; this module only provides neutral test
//! configurations so the simulator substrate can be exercised standalone.

use crate::cpu::CpuConfig;
use crate::error::ConfigError;
use crate::hierarchy::HierarchyConfig;

/// Static description of one processing node: CPU front end + memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Diagnostic name ("DEC 8400 node", "T3D PE", …).
    pub name: String,
    /// Processor issue model.
    pub cpu: CpuConfig,
    /// Cache/DRAM hierarchy.
    pub hierarchy: HierarchyConfig,
}

impl NodeConfig {
    /// Validates both halves of the configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuConfig::validate`] and [`HierarchyConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cpu.validate()?;
        self.hierarchy.validate()
    }
}

/// Neutral configurations for tests, examples and documentation.
pub mod presets {
    use super::*;
    use crate::cache::{AllocatePolicy, CacheConfig, WritePolicy};
    use crate::dram::DramConfig;
    use crate::hierarchy::LevelConfig;
    use crate::stream::StreamConfig;

    /// A small, fast two-level node used throughout the test suites.
    ///
    /// 8 KB direct-mapped write-through L1 (32 B lines), 64 KB 4-way
    /// write-back L2 (64 B lines), 4-bank DRAM with stream support.
    pub fn tiny_test_node() -> NodeConfig {
        NodeConfig {
            name: "tiny test node".to_string(),
            cpu: CpuConfig {
                clock_mhz: 100.0,
                load_issue_cycles: 1.0,
                store_issue_cycles: 1.0,
                loop_overhead_cycles: 0.0,
                miss_overlap: 1.0,
            },
            hierarchy: HierarchyConfig {
                levels: vec![
                    LevelConfig {
                        cache: CacheConfig {
                            name: "L1".to_string(),
                            capacity_bytes: 8 * 1024,
                            line_bytes: 32,
                            associativity: 1,
                            write_policy: WritePolicy::WriteThrough,
                            allocate_policy: AllocatePolicy::ReadAllocate,
                        },
                        fill_cycles: 4.0,
                        streamed_fill_cycles: 2.0,
                        stream: None,
                        write_back_cycles: 2.0,
                    },
                    LevelConfig {
                        cache: CacheConfig {
                            name: "L2".to_string(),
                            capacity_bytes: 64 * 1024,
                            line_bytes: 64,
                            associativity: 4,
                            write_policy: WritePolicy::WriteBack,
                            allocate_policy: AllocatePolicy::ReadWriteAllocate,
                        },
                        fill_cycles: 10.0,
                        streamed_fill_cycles: 5.0,
                        stream: Some(StreamConfig::default()),
                        write_back_cycles: 6.0,
                    },
                ],
                dram: DramConfig {
                    banks: 4,
                    interleave_bytes: 64,
                    row_bytes: 4096,
                    row_hit_cycles: 16.0,
                    row_miss_extra_cycles: 24.0,
                    bank_busy_cycles: 8.0,
                },
                dram_stream: Some(StreamConfig {
                    slots: 2,
                    train_length: 2,
                }),
                dram_streamed_line_cycles: 8.0,
                dram_store_word_cycles: 6.0,
                write_buffer: None,
                dram_contention: 1.0,
                dram_stream_contention: 1.0,
            },
        }
    }

    /// A single-level write-through node with a coalescing write buffer —
    /// structurally a miniature Cray T3D PE.
    pub fn tiny_streamed_node() -> NodeConfig {
        use crate::write_buffer::WriteBufferConfig;
        let mut node = tiny_test_node();
        node.name = "tiny streamed node".to_string();
        node.hierarchy.levels.truncate(1);
        node.hierarchy.write_buffer = Some(WriteBufferConfig {
            entries: 8,
            entry_bytes: 32,
            drain_cycles_per_entry: 12.0,
            coalesce: true,
        });
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        presets::tiny_test_node().validate().unwrap();
        presets::tiny_streamed_node().validate().unwrap();
    }

    #[test]
    fn validate_propagates_component_errors() {
        let mut node = presets::tiny_test_node();
        node.cpu.clock_mhz = -1.0;
        assert!(node.validate().is_err());
        let mut node = presets::tiny_test_node();
        node.hierarchy.dram.banks = 3;
        assert!(node.validate().is_err());
    }
}
