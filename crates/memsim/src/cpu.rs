//! Processor front-end issue model.
//!
//! The paper measures *compiled* benchmarks: "With a lot of careful C-code
//! tuning and much hand-holding, we measured about half of the peak bandwidth
//! for loads out of L1 cache with compiler generated benchmarks" (§4.2). The
//! issue model therefore expresses what a well-scheduled compiled loop
//! achieves, not the theoretical pipe width: a per-access issue cost plus a
//! per-element residual loop overhead (the benchmarks are unrolled, so the
//! overhead is fractional), and a bounded-overlap factor for outstanding
//! misses.

use crate::error::ConfigError;

/// Static description of the processor front end of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Processor clock in MHz; converts cycles to time (and so to MB/s).
    pub clock_mhz: f64,
    /// Cycles to issue one load in a well-scheduled unrolled loop, including
    /// the consuming add of the Load-Sum benchmark.
    pub load_issue_cycles: f64,
    /// Cycles to issue one store in a well-scheduled unrolled loop.
    pub store_issue_cycles: f64,
    /// Residual per-element loop overhead after unrolling.
    pub loop_overhead_cycles: f64,
    /// How many outstanding cache misses overlap: the effective latency of an
    /// untrained (non-streamed) DRAM access is divided by this factor.
    /// `1.0` means fully serialized misses.
    pub miss_overlap: f64,
}

impl CpuConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the clock is not positive, any issue cost
    /// is negative, or the overlap factor is below one.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = "cpu";
        if self.clock_mhz.is_nan() || self.clock_mhz <= 0.0 {
            return Err(ConfigError::new(c, "clock must be positive"));
        }
        if self.load_issue_cycles < 0.0
            || self.store_issue_cycles < 0.0
            || self.loop_overhead_cycles < 0.0
        {
            return Err(ConfigError::new(
                c,
                "issue and overhead cycles must be non-negative",
            ));
        }
        if self.miss_overlap < 1.0 {
            return Err(ConfigError::new(
                c,
                "miss overlap factor must be at least 1.0",
            ));
        }
        Ok(())
    }

    /// Converts a cycle count into microseconds on this clock.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / self.clock_mhz
    }

    /// Converts `bytes` moved in `cycles` into MB/s on this clock.
    ///
    /// Returns 0.0 when no cycles elapsed.
    pub fn bandwidth_mb_s(&self, bytes: f64, cycles: f64) -> f64 {
        if cycles <= 0.0 {
            return 0.0;
        }
        bytes * self.clock_mhz / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CpuConfig {
        CpuConfig {
            clock_mhz: 300.0,
            load_issue_cycles: 2.0,
            store_issue_cycles: 1.0,
            loop_overhead_cycles: 0.25,
            miss_overlap: 2.0,
        }
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut c = cfg();
        c.clock_mhz = 0.0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.load_issue_cycles = -1.0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.miss_overlap = 0.5;
        assert!(c.validate().is_err());
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn bandwidth_formula() {
        let c = cfg();
        // 8 bytes per 2 cycles at 300 MHz = 1200 MB/s.
        let bw = c.bandwidth_mb_s(8.0, 2.0);
        assert!((bw - 1200.0).abs() < 1e-9);
        assert_eq!(c.bandwidth_mb_s(8.0, 0.0), 0.0);
    }

    #[test]
    fn time_conversion() {
        let c = cfg();
        assert!((c.cycles_to_us(300.0) - 1.0).abs() < 1e-12);
    }
}
