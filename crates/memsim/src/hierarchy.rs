//! The multi-level memory hierarchy walk.
//!
//! A [`MemoryHierarchy`] owns the per-level caches, the stream detectors at
//! each fill boundary, the DRAM model, and (optionally) a coalescing write
//! buffer. It exposes one operation: charge the cycle cost of a single
//! 64-bit access, updating all component state.
//!
//! ## Cost structure
//!
//! For a **load**, the tags of each level are walked top-down until a hit.
//! Every missed level charges a *fill*: the cost of delivering one of its
//! lines from the level below, where the boundary's stream detector picks
//! between the untrained cost (`fill_cycles`) and the trained, pipelined
//! cost (`streamed_fill_cycles`). A miss in the last cache level goes to
//! DRAM: trained streams are charged the prefetch-pipeline rate, untrained
//! accesses pay the banked open-row model divided by the CPU's miss-overlap
//! factor. Dirty victims charge their write-back cost.
//!
//! For a **store**, write-through levels forward the store downward (the
//! Alpha L1s); a write-back level absorbs it, charging a read-modify-write
//! fill on a store miss. A store that falls through every cache level lands
//! in the write buffer when one is configured (T3D), otherwise directly in
//! DRAM.

use crate::access::{AccessKind, Addr};
use crate::cache::{Cache, CacheConfig, LookupOutcome, WritePolicy};
use crate::dram::{Dram, DramConfig};
use crate::error::ConfigError;
use crate::stats::{LevelStats, RunStats};
use crate::stream::{StreamConfig, StreamDetector};
use crate::write_buffer::{WriteBuffer, WriteBufferConfig};

/// Static description of one cache level plus its fill boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelConfig {
    /// Tag-array geometry and policies of this level.
    pub cache: CacheConfig,
    /// Cycles to deliver one line of this cache from the level below when the
    /// fill is not part of a trained stream.
    pub fill_cycles: f64,
    /// Cycles per line when the boundary's stream detector has trained on the
    /// access pattern (pipelined/read-ahead transfer).
    pub streamed_fill_cycles: f64,
    /// Stream detector at this fill boundary; `None` disables read-ahead.
    pub stream: Option<StreamConfig>,
    /// Cycles to write back one dirty victim line.
    pub write_back_cycles: f64,
}

impl LevelConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Propagates cache and stream validation and rejects negative costs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.cache.validate()?;
        if let Some(s) = &self.stream {
            s.validate()?;
        }
        if self.fill_cycles < 0.0 || self.streamed_fill_cycles < 0.0 || self.write_back_cycles < 0.0
        {
            return Err(ConfigError::new(
                format!("cache {}", self.cache.name),
                "cycle costs must be non-negative",
            ));
        }
        Ok(())
    }
}

/// Static description of a whole node memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Cache levels, L1 first. May be empty (a cacheless node).
    pub levels: Vec<LevelConfig>,
    /// DRAM geometry and timing.
    pub dram: DramConfig,
    /// Stream detector watching last-level fill requests to DRAM.
    pub dram_stream: Option<StreamConfig>,
    /// Cycles to deliver one last-level line from DRAM when the stream
    /// detector has trained (the read-ahead / stream-buffer pipeline rate).
    pub dram_streamed_line_cycles: f64,
    /// Cycles DRAM needs to absorb one stored word that bypasses all caches
    /// (write-through chains without a write buffer).
    pub dram_store_word_cycles: f64,
    /// Coalescing write buffer in front of DRAM, if the machine has one.
    pub write_buffer: Option<WriteBufferConfig>,
    /// Multiplier (>= 1.0) applied to *untrained* (random) DRAM access costs
    /// to model competing processors on a shared memory system (DEC 8400
    /// §5.1 reports -25% for strided accesses under full four-processor
    /// load). 1.0 = idle machine.
    pub dram_contention: f64,
    /// Multiplier (>= 1.0) applied to *streamed* DRAM fills under load
    /// (§5.1 reports only -8% for contiguous accesses). 1.0 = idle machine.
    pub dram_stream_contention: f64,
}

impl HierarchyConfig {
    /// Validates every component configuration.
    ///
    /// # Errors
    ///
    /// Propagates component errors; rejects negative costs and a contention
    /// factor below one.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for l in &self.levels {
            l.validate()?;
        }
        self.dram.validate()?;
        if let Some(s) = &self.dram_stream {
            s.validate()?;
        }
        if let Some(w) = &self.write_buffer {
            w.validate()?;
        }
        if self.dram_streamed_line_cycles < 0.0 || self.dram_store_word_cycles < 0.0 {
            return Err(ConfigError::new(
                "hierarchy",
                "cycle costs must be non-negative",
            ));
        }
        if self.dram_contention < 1.0 || self.dram_stream_contention < 1.0 {
            return Err(ConfigError::new(
                "hierarchy",
                "DRAM contention factors must be at least 1.0",
            ));
        }
        Ok(())
    }

    /// Line size of the last cache level (the DRAM transfer granularity), or
    /// one word for a cacheless hierarchy.
    pub fn last_level_line_bytes(&self) -> u64 {
        self.levels
            .last()
            .map(|l| l.cache.line_bytes)
            .unwrap_or(crate::access::WORD_BYTES)
    }

    /// Total cache capacity in bytes across all levels.
    pub fn total_cache_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.cache.capacity_bytes).sum()
    }
}

/// Where an access was finally served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Cache level (0 = L1).
    Level(usize),
    /// Main memory.
    Dram,
    /// Absorbed by the write buffer (stores only).
    WriteBuffer,
}

/// The cycle cost of a single access, with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCost {
    /// Cycles charged (excluding CPU issue cost, which the engine adds).
    pub cycles: f64,
    /// Which component satisfied the access.
    pub served_by: ServedBy,
}

/// Runtime state of a node memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    caches: Vec<Cache>,
    streams: Vec<Option<StreamDetector>>,
    dram_stream: Option<StreamDetector>,
    dram: Dram,
    write_buffer: Option<WriteBuffer>,
    miss_overlap: f64,
    /// `log2` of the last cache level's line size (the DRAM transfer
    /// granularity) — a validated power of two, so `addr >> last_line_shift`
    /// is exactly `addr / last_level_line_bytes()`.
    last_line_shift: u32,
    /// Scratch per-level stats for the current measurement window.
    level_stats: Vec<LevelStats>,
    dram_accesses: u64,
    dram_row_hits: u64,
    dram_bank_conflicts: u64,
    dram_streamed_fills: u64,
    wb_stalls: f64,
    /// Outstanding write-buffer drain work (cycles) that the next DRAM fill
    /// must wait behind: reads and write drains share one DRAM pipe. Capped
    /// at the queue's total capacity — older entries have already drained.
    write_debt: f64,
    /// Origin of the most recent DRAM fill, for mixed-traffic detection.
    last_fill_origin: Option<FillOrigin>,
    /// Counts down from [`MIXED_TRAFFIC_WINDOW`] after load- and
    /// store-originated fills interleave. While positive, untrained fills
    /// lose their miss overlap: the processor's few outstanding-miss slots
    /// are split between the two streams.
    mixed_countdown: u32,
}

/// How many fills mixed-traffic mode persists after the last alternation.
const MIXED_TRAFFIC_WINDOW: u32 = 16;

/// Whether a DRAM fill serves a load walk or a store's read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillOrigin {
    Load,
    Store,
}

impl MemoryHierarchy {
    /// Builds a hierarchy, validating the configuration.
    ///
    /// `miss_overlap` comes from the CPU configuration (outstanding-miss
    /// capability) and divides untrained DRAM latency.
    ///
    /// # Errors
    ///
    /// Propagates [`HierarchyConfig::validate`] errors.
    pub fn new(config: HierarchyConfig, miss_overlap: f64) -> Result<Self, ConfigError> {
        config.validate()?;
        if miss_overlap < 1.0 {
            return Err(ConfigError::new(
                "hierarchy",
                "miss overlap factor must be at least 1.0",
            ));
        }
        let caches = config
            .levels
            .iter()
            .map(|l| Cache::new(l.cache.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let streams = config
            .levels
            .iter()
            .map(|l| l.stream.clone().map(StreamDetector::new).transpose())
            .collect::<Result<Vec<_>, _>>()?;
        let dram_stream = config
            .dram_stream
            .clone()
            .map(StreamDetector::new)
            .transpose()?;
        let dram = Dram::new(config.dram.clone())?;
        let write_buffer = config
            .write_buffer
            .clone()
            .map(WriteBuffer::new)
            .transpose()?;
        let n = config.levels.len();
        Ok(MemoryHierarchy {
            last_line_shift: config.last_level_line_bytes().trailing_zeros(),
            config,
            caches,
            streams,
            dram_stream,
            dram,
            write_buffer,
            miss_overlap,
            level_stats: vec![LevelStats::default(); n],
            dram_accesses: 0,
            dram_row_hits: 0,
            dram_bank_conflicts: 0,
            dram_streamed_fills: 0,
            wb_stalls: 0.0,
            write_debt: 0.0,
            last_fill_origin: None,
            mixed_countdown: 0,
        })
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Read access to a level's cache (for probing in tests / coherence).
    pub fn cache(&self, level: usize) -> Option<&Cache> {
        self.caches.get(level)
    }

    /// Invalidates the line containing `addr` in every level (coherence /
    /// synchronization-point invalidation). Returns `true` if any level held
    /// the line dirty.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let mut any_dirty = false;
        for c in &mut self.caches {
            if let Some(dirty) = c.invalidate(addr) {
                any_dirty |= dirty;
            }
        }
        any_dirty
    }

    /// Flushes all cache, stream, DRAM and write-buffer state.
    pub fn flush(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
        for s in self.streams.iter_mut().flatten() {
            s.reset();
        }
        if let Some(s) = &mut self.dram_stream {
            s.reset();
        }
        self.dram.reset();
        if let Some(w) = &mut self.write_buffer {
            w.reset();
        }
        self.write_debt = 0.0;
        // Mixed-traffic tracking is state too: leaving it set would make a
        // flushed hierarchy differ from a just-constructed one (the
        // invariant warm engine reuse relies on).
        self.last_fill_origin = None;
        self.mixed_countdown = 0;
        self.reset_window_stats();
    }

    /// Clears the per-window statistics without touching tag/row state.
    /// Used between the priming pass and the measured pass.
    pub fn reset_window_stats(&mut self) {
        for s in &mut self.level_stats {
            *s = LevelStats::default();
        }
        self.dram_accesses = 0;
        self.dram_row_hits = 0;
        self.dram_bank_conflicts = 0;
        self.dram_streamed_fills = 0;
        self.wb_stalls = 0.0;
    }

    /// Copies the current window statistics into `stats`.
    pub fn export_stats(&self, stats: &mut RunStats) {
        stats.levels = self.level_stats.clone();
        stats.dram_accesses = self.dram_accesses;
        stats.dram_row_hits = self.dram_row_hits;
        stats.dram_bank_conflicts = self.dram_bank_conflicts;
        stats.dram_streamed_fills = self.dram_streamed_fills;
        stats.write_buffer_stall_cycles = self.wb_stalls;
    }

    /// Cost of fetching one last-level line from DRAM at simulated time
    /// `now`, applying stream detection, overlap and contention.
    ///
    /// With `STATS == false` the window statistics (`dram_accesses`,
    /// `dram_row_hits`, ...) are left untouched; every state mutation and
    /// every floating-point operation is identical. The priming pass uses
    /// this: its window counters are discarded by the measured pass's
    /// [`MemoryHierarchy::reset_window_stats`] anyway.
    #[inline]
    fn dram_fill_cost_inner<const STATS: bool>(
        &mut self,
        addr: Addr,
        now: f64,
        origin: FillOrigin,
    ) -> f64 {
        if STATS {
            self.dram_accesses += 1;
        }
        // Pay for any write-buffer drains queued ahead of this read: DRAM
        // serves one stream at a time (this is what keeps the T3D's copy
        // bandwidth at ~100 MB/s although reads alone sustain ~195 MB/s).
        let debt = std::mem::take(&mut self.write_debt);
        // Mixed load/store fill traffic splits the outstanding-miss slots
        // between the two streams, killing the untrained-access overlap
        // (figs 9-11: both strided copy variants collapse to ~18 MB/s on
        // the write-back-cache machines although strided loads alone run
        // at 28 MB/s).
        if self.last_fill_origin.is_some() && self.last_fill_origin != Some(origin) {
            self.mixed_countdown = MIXED_TRAFFIC_WINDOW;
        } else {
            self.mixed_countdown = self.mixed_countdown.saturating_sub(1);
        }
        self.last_fill_origin = Some(origin);
        let overlap = if self.mixed_countdown > 0 {
            1.0
        } else {
            self.miss_overlap
        };
        let line = addr >> self.last_line_shift;
        let streamed = self
            .dram_stream
            .as_mut()
            .map(|s| s.observe(line))
            .unwrap_or(false);
        debt + if streamed {
            if STATS {
                self.dram_streamed_fills += 1;
            }
            // The prefetch pipeline still occupies the bank, so row/bank
            // state advances, but the processor sees the pipelined rate.
            let _ = self.dram.access(addr, now);
            self.dram_streamed_line_cycles() * self.config.dram_stream_contention
        } else {
            let out = self.dram.access(addr, now);
            if STATS {
                if out.row_hit {
                    self.dram_row_hits += 1;
                }
                if out.bank_stall_cycles > 0.0 {
                    self.dram_bank_conflicts += 1;
                }
            }
            out.cycles / overlap * self.config.dram_contention
        }
    }

    fn dram_streamed_line_cycles(&self) -> f64 {
        self.config.dram_streamed_line_cycles
    }

    /// The load walk, monomorphized over whether window statistics are
    /// recorded. `STATS == false` performs exactly the same state mutations
    /// and floating-point operations, skipping only the `level_stats` /
    /// `dram_*` window counters (which the measured pass resets anyway).
    #[inline]
    fn load_inner<const STATS: bool>(&mut self, addr: Addr, now: f64) -> AccessCost {
        let mut cycles = 0.0;
        let n = self.caches.len();
        let mut supplier: Option<usize> = None; // level that hit
        let mut missed_through = 0usize;

        for i in 0..n {
            let outcome = self.caches[i].access(addr, AccessKind::Read);
            match outcome {
                LookupOutcome::Hit => {
                    if STATS {
                        self.level_stats[i].hits += 1;
                    }
                    supplier = Some(i);
                    break;
                }
                LookupOutcome::Miss { victim_dirty, .. } => {
                    if STATS {
                        self.level_stats[i].misses += 1;
                    }
                    if victim_dirty {
                        if STATS {
                            self.level_stats[i].write_backs += 1;
                        }
                        cycles += self.config.levels[i].write_back_cycles;
                    }
                    missed_through = i + 1;
                }
            }
        }

        // Charge fills for every level that missed. The fill of level i is
        // delivered by level i+1 (or DRAM for the last level).
        for i in (0..missed_through).rev() {
            let level_cfg = &self.config.levels[i];
            let line = self.caches[i].line_of(addr);
            let fills_from_dram = i + 1 == n && supplier.is_none();
            if fills_from_dram {
                cycles += self.dram_fill_cost_inner::<STATS>(addr, now + cycles, FillOrigin::Load);
            } else {
                let streamed = match &mut self.streams[i] {
                    Some(det) => det.observe(line),
                    None => false,
                };
                if streamed {
                    if STATS {
                        self.level_stats[i].streamed_fills += 1;
                    }
                    cycles += level_cfg.streamed_fill_cycles;
                } else {
                    if STATS {
                        self.level_stats[i].unstreamed_fills += 1;
                    }
                    cycles += level_cfg.fill_cycles;
                }
            }
        }

        let served_by = match supplier {
            Some(i) => ServedBy::Level(i),
            None => {
                if n == 0 {
                    // Cacheless node: the load itself is a DRAM word access.
                    cycles += self.dram_fill_cost_inner::<STATS>(addr, now, FillOrigin::Load);
                }
                ServedBy::Dram
            }
        };
        AccessCost { cycles, served_by }
    }

    /// Charges one load at simulated time `now`.
    pub fn load(&mut self, addr: Addr, now: f64) -> AccessCost {
        self.load_inner::<true>(addr, now)
    }

    /// [`MemoryHierarchy::load`] without window-statistics recording: the
    /// priming pass's fast path. State evolution (tags, LRU stamps, stream
    /// detectors, DRAM rows, write buffer) and the returned cost are
    /// bit-identical to `load`.
    pub fn prime_load(&mut self, addr: Addr, now: f64) -> AccessCost {
        self.load_inner::<false>(addr, now)
    }

    /// Charges one load whose last-level fill is supplied *remotely* (over a
    /// bus or network) instead of by local DRAM.
    ///
    /// The walk and intermediate fill accounting are identical to
    /// [`MemoryHierarchy::load`], but when the line would have to come from
    /// DRAM the cost is obtained from `remote_fill` (called with the
    /// simulated time at which the fill starts). This is how the coherence
    /// layer models the DEC 8400's pull: a consumer miss becomes a coherent
    /// bus transaction supplied by the owner's cache or home memory.
    pub fn load_remote(
        &mut self,
        addr: Addr,
        now: f64,
        remote_fill: &mut dyn FnMut(f64) -> f64,
    ) -> AccessCost {
        let mut cycles = 0.0;
        let n = self.caches.len();
        let mut supplier: Option<usize> = None;
        let mut missed_through = 0usize;

        for i in 0..n {
            let outcome = self.caches[i].access(addr, AccessKind::Read);
            match outcome {
                LookupOutcome::Hit => {
                    self.level_stats[i].hits += 1;
                    supplier = Some(i);
                    break;
                }
                LookupOutcome::Miss { victim_dirty, .. } => {
                    self.level_stats[i].misses += 1;
                    if victim_dirty {
                        self.level_stats[i].write_backs += 1;
                        cycles += self.config.levels[i].write_back_cycles;
                    }
                    missed_through = i + 1;
                }
            }
        }

        for i in (0..missed_through).rev() {
            let level_cfg = &self.config.levels[i];
            let line = self.caches[i].line_of(addr);
            let fills_remotely = i + 1 == n && supplier.is_none();
            if fills_remotely {
                cycles += remote_fill(now + cycles);
            } else {
                let streamed = match &mut self.streams[i] {
                    Some(det) => det.observe(line),
                    None => false,
                };
                if streamed {
                    self.level_stats[i].streamed_fills += 1;
                    cycles += level_cfg.streamed_fill_cycles;
                } else {
                    self.level_stats[i].unstreamed_fills += 1;
                    cycles += level_cfg.fill_cycles;
                }
            }
        }

        let served_by = match supplier {
            Some(i) => ServedBy::Level(i),
            None => {
                if n == 0 {
                    cycles += remote_fill(now);
                }
                ServedBy::Dram
            }
        };
        AccessCost { cycles, served_by }
    }

    /// The store walk, monomorphized like [`MemoryHierarchy::load_inner`].
    #[inline]
    fn store_inner<const STATS: bool>(&mut self, addr: Addr, now: f64) -> AccessCost {
        let mut cycles = 0.0;
        let n = self.caches.len();

        for i in 0..n {
            let policy = self.config.levels[i].cache.write_policy;
            let outcome = self.caches[i].access(addr, AccessKind::Write);
            match (policy, outcome) {
                (WritePolicy::WriteBack, LookupOutcome::Hit) => {
                    // Absorbed: line dirtied in place.
                    if STATS {
                        self.level_stats[i].hits += 1;
                    }
                    return AccessCost {
                        cycles,
                        served_by: ServedBy::Level(i),
                    };
                }
                (
                    WritePolicy::WriteBack,
                    LookupOutcome::Miss {
                        victim_dirty,
                        allocated,
                    },
                ) => {
                    if STATS {
                        self.level_stats[i].misses += 1;
                    }
                    if victim_dirty {
                        if STATS {
                            self.level_stats[i].write_backs += 1;
                        }
                        cycles += self.config.levels[i].write_back_cycles;
                    }
                    if allocated {
                        // Read-modify-write: fetch the line from below, then
                        // the store is absorbed here.
                        cycles += self.fill_chain_inner::<STATS>(i, addr, now + cycles);
                        return AccessCost {
                            cycles,
                            served_by: ServedBy::Level(i),
                        };
                    }
                    // Non-allocating store miss continues downward.
                }
                (WritePolicy::WriteThrough, LookupOutcome::Hit) => {
                    // Updated in place but still forwarded downward.
                    if STATS {
                        self.level_stats[i].hits += 1;
                    }
                }
                (WritePolicy::WriteThrough, LookupOutcome::Miss { .. }) => {
                    if STATS {
                        self.level_stats[i].misses += 1;
                    }
                }
            }
        }

        // The store fell through every cache level.
        if let Some(wb) = &mut self.write_buffer {
            let out = wb.push(addr, now + cycles);
            if STATS {
                self.wb_stalls += out.stall_cycles;
            }
            cycles += out.stall_cycles;
            if !out.coalesced {
                // A new entry means one more drain the DRAM pipe owes; the
                // debt is bounded by the queue depth (older entries drained).
                let drain = wb.config().drain_cycles_per_entry;
                let cap = wb.config().entries as f64 * drain;
                self.write_debt = (self.write_debt + drain).min(cap);
            }
            return AccessCost {
                cycles,
                served_by: ServedBy::WriteBuffer,
            };
        }
        cycles += self.config.dram_store_word_cycles * self.config.dram_contention;
        AccessCost {
            cycles,
            served_by: ServedBy::Dram,
        }
    }

    /// Charges one store at simulated time `now`.
    pub fn store(&mut self, addr: Addr, now: f64) -> AccessCost {
        self.store_inner::<true>(addr, now)
    }

    /// [`MemoryHierarchy::store`] without window-statistics recording (see
    /// [`MemoryHierarchy::prime_load`]).
    pub fn prime_store(&mut self, addr: Addr, now: f64) -> AccessCost {
        self.store_inner::<false>(addr, now)
    }

    /// Cost of bringing the line containing `addr` into level `i` from the
    /// levels below, walking tags downward (used by store write-allocate).
    #[inline]
    fn fill_chain_inner<const STATS: bool>(&mut self, i: usize, addr: Addr, now: f64) -> f64 {
        let n = self.caches.len();
        let mut cycles = 0.0;
        let mut supplier: Option<usize> = None;
        let mut missed_through = i + 1;
        for j in (i + 1)..n {
            let outcome = self.caches[j].access(addr, AccessKind::Read);
            match outcome {
                LookupOutcome::Hit => {
                    if STATS {
                        self.level_stats[j].hits += 1;
                    }
                    supplier = Some(j);
                    break;
                }
                LookupOutcome::Miss { victim_dirty, .. } => {
                    if STATS {
                        self.level_stats[j].misses += 1;
                    }
                    if victim_dirty {
                        if STATS {
                            self.level_stats[j].write_backs += 1;
                        }
                        cycles += self.config.levels[j].write_back_cycles;
                    }
                    missed_through = j + 1;
                }
            }
        }
        for j in (i..missed_through).rev() {
            let level_cfg = &self.config.levels[j];
            let line = self.caches[j].line_of(addr);
            let fills_from_dram = j + 1 == n && supplier.is_none();
            if fills_from_dram {
                cycles += self.dram_fill_cost_inner::<STATS>(addr, now + cycles, FillOrigin::Store);
            } else {
                let streamed = match &mut self.streams[j] {
                    Some(det) => det.observe(line),
                    None => false,
                };
                if streamed {
                    if STATS {
                        self.level_stats[j].streamed_fills += 1;
                    }
                    cycles += level_cfg.streamed_fill_cycles;
                } else {
                    if STATS {
                        self.level_stats[j].unstreamed_fills += 1;
                    }
                    cycles += level_cfg.fill_cycles;
                }
            }
        }
        cycles
    }

    /// Drains any pending write-buffer entries, returning the cost.
    pub fn drain_writes(&mut self, now: f64) -> f64 {
        match &mut self.write_buffer {
            Some(wb) => wb.flush(now),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::AllocatePolicy;

    fn l1() -> LevelConfig {
        LevelConfig {
            cache: CacheConfig {
                name: "L1".into(),
                capacity_bytes: 8 * 1024,
                line_bytes: 32,
                associativity: 1,
                write_policy: WritePolicy::WriteThrough,
                allocate_policy: AllocatePolicy::ReadAllocate,
            },
            fill_cycles: 6.0,
            streamed_fill_cycles: 4.0,
            stream: None,
            write_back_cycles: 4.0,
        }
    }

    fn l2() -> LevelConfig {
        LevelConfig {
            cache: CacheConfig {
                name: "L2".into(),
                capacity_bytes: 64 * 1024,
                line_bytes: 64,
                associativity: 4,
                write_policy: WritePolicy::WriteBack,
                allocate_policy: AllocatePolicy::ReadWriteAllocate,
            },
            fill_cycles: 12.0,
            streamed_fill_cycles: 6.0,
            stream: Some(StreamConfig::default()),
            write_back_cycles: 8.0,
        }
    }

    fn dram() -> DramConfig {
        DramConfig {
            banks: 4,
            interleave_bytes: 64,
            row_bytes: 4096,
            row_hit_cycles: 20.0,
            row_miss_extra_cycles: 30.0,
            bank_busy_cycles: 10.0,
        }
    }

    fn two_level() -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![l1(), l2()],
            dram: dram(),
            dram_stream: Some(StreamConfig::default()),
            dram_streamed_line_cycles: 10.0,
            dram_store_word_cycles: 5.0,
            write_buffer: None,
            dram_contention: 1.0,
            dram_stream_contention: 1.0,
        }
    }

    #[test]
    fn l1_hits_are_free_of_fill_cost() {
        let mut h = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        h.load(0, 0.0); // cold miss
        let c = h.load(8, 1.0); // same L1 line
        assert_eq!(c.cycles, 0.0);
        assert_eq!(c.served_by, ServedBy::Level(0));
    }

    #[test]
    fn l2_hit_charges_one_l1_fill() {
        let mut h = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        h.load(0, 0.0); // brings 64 B into L2, 32 B into L1
        let c = h.load(32, 1.0); // second half of the L2 line: L1 miss, L2 hit
        assert_eq!(c.served_by, ServedBy::Level(1));
        assert_eq!(c.cycles, 6.0, "exactly one untrained L1 fill");
    }

    #[test]
    fn cold_miss_charges_full_chain() {
        let mut h = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        let c = h.load(1 << 20, 0.0);
        assert_eq!(c.served_by, ServedBy::Dram);
        // L1 fill (6) + DRAM row miss (20 + 30) = 56; DRAM stream untrained.
        assert_eq!(c.cycles, 56.0);
    }

    #[test]
    fn streamed_dram_fills_use_pipeline_rate() {
        let mut h = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        // Walk contiguous lines; after training, DRAM fills cost the
        // streamed rate (10) instead of the row model.
        let mut last = 0.0;
        let mut now = 0.0;
        for i in 0..16u64 {
            let c = h.load(i * 64, now);
            now += c.cycles + 1.0;
            last = c.cycles;
        }
        // Final fill: L1 fill 6 + streamed 10 = 16.
        assert_eq!(last, 16.0);
    }

    #[test]
    fn miss_overlap_divides_untrained_dram_cost() {
        let mut h1 = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        let mut h2 = MemoryHierarchy::new(two_level(), 2.0).unwrap();
        let c1 = h1.load(1 << 20, 0.0);
        let c2 = h2.load(1 << 20, 0.0);
        assert!(c2.cycles < c1.cycles);
    }

    #[test]
    fn store_hit_in_write_back_level_is_absorbed() {
        let mut h = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        h.load(0, 0.0); // line now in L1 + L2
        let c = h.store(0, 1.0);
        // Write-through L1 hit forwards to L2 which absorbs it.
        assert_eq!(c.served_by, ServedBy::Level(1));
        assert_eq!(c.cycles, 0.0);
        assert!(h.cache(1).unwrap().probe_dirty(0));
    }

    #[test]
    fn store_miss_in_write_back_level_pays_rmw_fill() {
        let mut h = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        let c = h.store(1 << 20, 0.0);
        assert_eq!(c.served_by, ServedBy::Level(1));
        assert!(
            c.cycles >= 50.0,
            "RMW must fetch the line from DRAM, got {}",
            c.cycles
        );
    }

    #[test]
    fn store_through_cacheless_chain_reaches_write_buffer() {
        let mut cfg = two_level();
        cfg.levels = vec![l1()]; // write-through only
        cfg.write_buffer = Some(WriteBufferConfig {
            entries: 4,
            entry_bytes: 32,
            drain_cycles_per_entry: 8.0,
            coalesce: true,
        });
        let mut h = MemoryHierarchy::new(cfg, 1.0).unwrap();
        let c = h.store(0, 0.0);
        assert_eq!(c.served_by, ServedBy::WriteBuffer);
    }

    #[test]
    fn dirty_eviction_charges_write_back() {
        let mut cfg = two_level();
        // Shrink L2 to 128 B so evictions happen quickly.
        cfg.levels[1].cache.capacity_bytes = 128;
        cfg.levels[1].cache.associativity = 1;
        let mut h = MemoryHierarchy::new(cfg, 1.0).unwrap();
        h.store(0, 0.0); // dirty line in L2 set 0
        let mut stats = RunStats::default();
        h.reset_window_stats();
        h.store(128, 100.0); // same set, evicts dirty line
        h.export_stats(&mut stats);
        assert_eq!(stats.levels[1].write_backs, 1);
    }

    #[test]
    fn invalidate_clears_all_levels() {
        let mut h = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        h.load(0, 0.0);
        assert!(h.cache(0).unwrap().probe(0));
        assert!(h.cache(1).unwrap().probe(0));
        h.invalidate(0);
        assert!(!h.cache(0).unwrap().probe(0));
        assert!(!h.cache(1).unwrap().probe(0));
    }

    #[test]
    fn contention_scales_dram_cost() {
        let mut cfg = two_level();
        cfg.dram_contention = 2.0;
        let mut loaded = MemoryHierarchy::new(cfg, 1.0).unwrap();
        let mut idle = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        let c_loaded = loaded.load(1 << 20, 0.0);
        let c_idle = idle.load(1 << 20, 0.0);
        assert!(c_loaded.cycles > c_idle.cycles);
    }

    #[test]
    fn load_remote_replaces_dram_fill() {
        let mut h = MemoryHierarchy::new(two_level(), 1.0).unwrap();
        let mut calls = 0;
        let c = h.load_remote(1 << 20, 0.0, &mut |_t| {
            calls += 1;
            100.0
        });
        assert_eq!(calls, 1);
        // L1 fill (6) + remote fill (100).
        assert_eq!(c.cycles, 106.0);
        // A hit afterwards never consults the remote supplier.
        let c2 = h.load_remote(1 << 20, 1.0, &mut |_t| panic!("must not be called"));
        assert_eq!(c2.cycles, 0.0);
    }

    #[test]
    fn cacheless_hierarchy_loads_from_dram() {
        let mut cfg = two_level();
        cfg.levels.clear();
        let mut h = MemoryHierarchy::new(cfg, 1.0).unwrap();
        let c = h.load(0, 0.0);
        assert_eq!(c.served_by, ServedBy::Dram);
        assert!(c.cycles > 0.0);
    }
}
