//! Micro-benchmarks of the simulator itself: how fast the substrate
//! processes accesses (useful when sizing sweep grids). Plain
//! `std::time::Instant` timing — no external harness.

use std::time::Instant;

use gasnub_memsim::access::AccessKind;
use gasnub_memsim::cache::Cache;
use gasnub_memsim::config::presets;
use gasnub_memsim::dram::Dram;
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::trace::StridedPass;

fn time<R>(label: &str, elements: u64, mut f: impl FnMut() -> R) {
    // One warmup, then enough iterations for a stable few-millisecond sample.
    std::hint::black_box(f());
    let iters = 50u32;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    let per_elem_ns = per_iter.as_nanos() as f64 / elements as f64;
    println!("{label:<32} {per_iter:>12.2?}/iter   {per_elem_ns:>8.1} ns/elem");
}

fn bench_cache_access() {
    let cfg = presets::tiny_test_node().hierarchy.levels[1].cache.clone();
    let mut cache = Cache::new(cfg).unwrap();
    for w in 0..1024u64 {
        cache.access(w * 8 % (32 * 1024), AccessKind::Read);
    }
    time("cache_access/l2_hits", 1024, || {
        for w in 0..1024u64 {
            std::hint::black_box(cache.access(w * 8 % (32 * 1024), AccessKind::Read));
        }
    });
}

fn bench_dram_access() {
    let cfg = presets::tiny_test_node().hierarchy.dram.clone();
    let mut dram = Dram::new(cfg).unwrap();
    time("dram_access/strided", 1024, || {
        let mut now = 0.0;
        for w in 0..1024u64 {
            let out = dram.access(w * 512, now);
            now += out.cycles;
        }
        now
    });
}

fn bench_engine_throughput() {
    for &stride in &[1u64, 16] {
        let words = 64 * 1024 / 8;
        let mut engine = MemoryEngine::new(presets::tiny_test_node());
        time(&format!("engine/strided_pass/{stride}"), words, || {
            engine.run_trace(StridedPass::new(0, words, stride)).cycles
        });
    }
}

fn main() {
    bench_cache_access();
    bench_dram_access();
    bench_engine_throughput();
}
