//! Criterion micro-benchmarks of the simulator itself: how fast the
//! substrate processes accesses (useful when sizing sweep grids).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gasnub_memsim::access::AccessKind;
use gasnub_memsim::cache::Cache;
use gasnub_memsim::config::presets;
use gasnub_memsim::dram::Dram;
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::trace::StridedPass;

fn bench_cache_access(c: &mut Criterion) {
    let cfg = presets::tiny_test_node().hierarchy.levels[1].cache.clone();
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("l2_hits", |b| {
        let mut cache = Cache::new(cfg.clone()).unwrap();
        for w in 0..1024u64 {
            cache.access(w * 8 % (32 * 1024), AccessKind::Read);
        }
        b.iter(|| {
            for w in 0..1024u64 {
                std::hint::black_box(cache.access(w * 8 % (32 * 1024), AccessKind::Read));
            }
        })
    });
    group.finish();
}

fn bench_dram_access(c: &mut Criterion) {
    let cfg = presets::tiny_test_node().hierarchy.dram.clone();
    let mut group = c.benchmark_group("dram_access");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("strided", |b| {
        let mut dram = Dram::new(cfg.clone()).unwrap();
        b.iter(|| {
            let mut now = 0.0;
            for w in 0..1024u64 {
                let out = dram.access(w * 512, now);
                now += out.cycles;
            }
            std::hint::black_box(now)
        })
    });
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for &stride in &[1u64, 16] {
        let words = 64 * 1024 / 8;
        group.throughput(Throughput::Elements(words));
        group.bench_with_input(BenchmarkId::new("strided_pass", stride), &stride, |b, &s| {
            let mut engine = MemoryEngine::new(presets::tiny_test_node());
            b.iter(|| {
                let stats = engine.run_trace(StridedPass::new(0, words, s));
                std::hint::black_box(stats.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_access, bench_dram_access, bench_engine_throughput);
criterion_main!(benches);
