//! Property-based tests for the simulator substrate, driven by the in-repo
//! deterministic case generator ([`gasnub_memsim::rng::run_cases`]).
//!
//! The central test checks the tag-array [`Cache`] against an *independent
//! reference model* (a straightforward map-of-vecs LRU implementation) on
//! random access sequences: every hit/miss decision must match exactly.

use std::collections::HashMap;

use gasnub_memsim::access::{Access, AccessKind};
use gasnub_memsim::cache::{AllocatePolicy, Cache, CacheConfig, WritePolicy};
use gasnub_memsim::config::presets;
use gasnub_memsim::dram::{Dram, DramConfig};
use gasnub_memsim::engine::MemoryEngine;
use gasnub_memsim::rng::{run_cases, Rng};
use gasnub_memsim::trace::{StridedOrder, StridedPass};
use gasnub_memsim::write_buffer::{WriteBuffer, WriteBufferConfig};

// ---------------------------------------------------------------------------
// Reference cache model
// ---------------------------------------------------------------------------

/// A deliberately naive set-associative LRU cache: per set, a vector of
/// line indices ordered most-recently-used first.
struct ReferenceCache {
    line_bytes: u64,
    sets: u64,
    assoc: usize,
    content: HashMap<u64, Vec<u64>>, // set -> MRU-ordered lines
    write_allocate: bool,
}

impl ReferenceCache {
    fn new(cfg: &CacheConfig) -> Self {
        ReferenceCache {
            line_bytes: cfg.line_bytes,
            sets: cfg.num_sets(),
            assoc: cfg.associativity as usize,
            content: HashMap::new(),
            write_allocate: cfg.allocate_policy == AllocatePolicy::ReadWriteAllocate,
        }
    }

    /// Returns `true` on hit, mirroring `Cache::access` tag behaviour.
    fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        let line = addr / self.line_bytes;
        let set = line % self.sets;
        let entry = self.content.entry(set).or_default();
        if let Some(pos) = entry.iter().position(|&l| l == line) {
            let l = entry.remove(pos);
            entry.insert(0, l);
            return true;
        }
        let allocate = kind.is_read() || self.write_allocate;
        if allocate {
            entry.insert(0, line);
            entry.truncate(self.assoc);
        }
        false
    }
}

fn arb_cache_config(rng: &mut Rng) -> CacheConfig {
    let assoc = [1u64, 2, 4][rng.gen_range(0, 3) as usize];
    let line = [32u64, 64][rng.gen_range(0, 2) as usize];
    let sets = 1u64 << rng.gen_range(3, 6); // 8..32 sets: small enough to thrash
    let wb = rng.gen_bool(0.5);
    CacheConfig {
        name: "prop".to_string(),
        capacity_bytes: sets * assoc * line,
        line_bytes: line,
        associativity: assoc,
        write_policy: if wb {
            WritePolicy::WriteBack
        } else {
            WritePolicy::WriteThrough
        },
        allocate_policy: if wb {
            AllocatePolicy::ReadWriteAllocate
        } else {
            AllocatePolicy::ReadAllocate
        },
    }
}

/// The tag-array cache and the naive reference agree on every access.
#[test]
fn cache_matches_reference_model() {
    run_cases(0xCAC4E, 64, |rng| {
        let cfg = arb_cache_config(rng);
        let mut cache = Cache::new(cfg.clone()).expect("generated configs are valid");
        let mut reference = ReferenceCache::new(&cfg);
        for _ in 0..rng.gen_range(1, 400) {
            let addr = rng.gen_range(0, 4096) * 8;
            let kind = if rng.gen_bool(0.5) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = cache.access(addr, kind).is_hit();
            let want = reference.access(addr, kind);
            assert_eq!(
                got, want,
                "divergence at addr {addr} ({kind:?}) with {cfg:?}"
            );
        }
    });
}

/// Hits + misses always equals the number of accesses.
#[test]
fn cache_counters_are_conserved() {
    run_cases(0xC0117, 64, |rng| {
        let cfg = arb_cache_config(rng);
        let mut cache = Cache::new(cfg).unwrap();
        let n = rng.gen_range(1, 300);
        for _ in 0..n {
            let _ = cache.access(rng.gen_range(0, 2048) * 8, AccessKind::Read);
        }
        assert_eq!(cache.hits() + cache.misses(), n);
    });
}

/// StridedOrder visits every index exactly once, for any (words, stride).
#[test]
fn strided_order_is_always_a_permutation() {
    run_cases(0x57D, 64, |rng| {
        let words = rng.gen_range(1, 5000);
        let stride = rng.gen_range(1, 300);
        let mut seen = vec![false; words as usize];
        let mut count = 0u64;
        for idx in StridedOrder::new(words, stride) {
            assert!(idx < words);
            assert!(
                !seen[idx as usize],
                "index {idx} visited twice (words {words}, stride {stride})"
            );
            seen[idx as usize] = true;
            count += 1;
        }
        assert_eq!(count, words, "words {words}, stride {stride}");
    });
}

/// The write buffer conserves stores: every store either coalesces or
/// opens an entry, and flush drains everything.
#[test]
fn write_buffer_conserves_entries() {
    run_cases(0x3B, 64, |rng| {
        let coalesce = rng.gen_bool(0.5);
        let mut wb = WriteBuffer::new(WriteBufferConfig {
            entries: 4,
            entry_bytes: 32,
            drain_cycles_per_entry: 10.0,
            coalesce,
        })
        .unwrap();
        let mut now = 0.0;
        let mut opened = 0u64;
        let n = rng.gen_range(1, 200);
        for _ in 0..n {
            let out = wb.push(rng.gen_range(0, 512) * 8, now);
            assert!(out.stall_cycles >= 0.0);
            if !out.coalesced {
                opened += 1;
            }
            now += 1.0 + out.stall_cycles;
        }
        assert_eq!(wb.stores(), n);
        assert_eq!(wb.coalesced_stores() + opened, n);
        let _ = wb.flush(now);
        assert_eq!(
            wb.entries_drained(),
            opened,
            "flush must drain every opened entry"
        );
        if !coalesce {
            assert_eq!(wb.coalesced_stores(), 0u64);
        }
    });
}

/// DRAM row-hit semantics: a second access to the same bank and row with
/// no interference is always a row hit and never stalls once idle.
#[test]
fn dram_row_hit_semantics() {
    run_cases(0xD7A5, 64, |rng| {
        let cfg = DramConfig {
            banks: 4,
            interleave_bytes: 64,
            row_bytes: 4096,
            row_hit_cycles: 10.0,
            row_miss_extra_cycles: 30.0,
            bank_busy_cycles: 20.0,
        };
        let addr = rng.gen_range(0, 100_000) * 8;
        let mut dram = Dram::new(cfg).unwrap();
        let first = dram.access(addr, 0.0);
        assert!(!first.row_hit, "cold access opens the row");
        let second = dram.access(addr, 1_000.0);
        assert!(second.row_hit);
        assert_eq!(second.bank_stall_cycles, 0.0);
        assert!(second.cycles < first.cycles);
    });
}

/// Engine cycle counts are positive, finite, and additive over splits of
/// a trace.
#[test]
fn engine_cycles_are_additive() {
    run_cases(0xADD, 32, |rng| {
        let words = rng.gen_range(16, 2048);
        let split = (words * rng.gen_range(1, 15) / 16).max(1).min(words - 1);
        let node = presets::tiny_test_node();

        let mut whole = MemoryEngine::new(node.clone());
        let all = whole.run_trace(StridedPass::new(0, words, 1));
        assert!(all.cycles.is_finite() && all.cycles > 0.0);

        let mut parts = MemoryEngine::new(node);
        let head: Vec<Access> = StridedPass::new(0, words, 1).take(split as usize).collect();
        let tail: Vec<Access> = StridedPass::new(0, words, 1).skip(split as usize).collect();
        let a = parts.run_trace(head);
        let b = parts.run_trace(tail);
        let sum = a.cycles + b.cycles;
        assert!(
            (sum - all.cycles).abs() < 1e-6 * all.cycles.max(1.0),
            "split run must cost the same: {} vs {} (words {words}, split {split})",
            sum,
            all.cycles
        );
    });
}

/// Flushing an engine restores the cold-start cost exactly.
#[test]
fn flush_restores_cold_state() {
    run_cases(0xF1054, 32, |rng| {
        let words = rng.gen_range(16, 1024);
        let stride = rng.gen_range(1, 32);
        let mut e = MemoryEngine::new(presets::tiny_test_node());
        let cold = e.run_trace(StridedPass::new(0, words, stride)).cycles;
        let warm = e.run_trace(StridedPass::new(0, words, stride)).cycles;
        e.flush();
        let again = e.run_trace(StridedPass::new(0, words, stride)).cycles;
        assert_eq!(
            cold, again,
            "flush must reproduce the cold run (words {words}, stride {stride})"
        );
        assert!(warm <= cold, "a warm run is never slower than a cold one");
    });
}
