//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The server speaks exactly the subset its JSON API needs: `GET`/`POST`
//! request lines, `Content-Length` bodies, keep-alive connections, and
//! fixed-length responses. Chunked encoding, continuations, and multi-line
//! headers are rejected as malformed — every parse failure maps to one
//! structured `400` and the connection closes, so a confused client can
//! never wedge a worker thread.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted header block (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, e.g. `/v1/sweep`.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (the
    /// HTTP/1.1 default; an explicit `Connection: close` wins).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending anything — the
    /// normal end of a keep-alive session, not an error.
    Eof,
    /// The socket failed mid-read.
    Io(std::io::Error),
    /// The bytes were not a request this server accepts.
    Malformed(&'static str),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge,
}

/// Reads one request off the stream.
///
/// # Errors
///
/// [`ReadError::Eof`] on a clean close before the first byte; otherwise
/// the malformed/too-large/IO variants, after which the caller should
/// answer (where possible) and drop the connection.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("header block too large"));
        }
        let n = stream.read(&mut chunk).map_err(ReadError::Io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(ReadError::Eof);
            }
            return Err(ReadError::Malformed("connection closed mid-header"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("header block is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed("bad request line"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("bad request line"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed("bad header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse()
            .map_err(|_| ReadError::Malformed("bad content-length"))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }

    // The header read may have pulled in part (or all) of the body.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(ReadError::Io)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response to write: status, JSON body, and the optional
/// `X-Gasnub-Source` header the sweep endpoint uses to report where the
/// payload came from (`computed`, `coalesced`, `memory`, `disk`).
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, already rendered (canonical JSON).
    pub body: String,
    /// Value for the `X-Gasnub-Source` header, if any.
    pub source: Option<&'static str>,
}

impl Response {
    /// A 200 response with the given body.
    pub fn ok(body: String) -> Self {
        Response {
            status: 200,
            body,
            source: None,
        }
    }

    /// Attaches the payload-source header.
    pub fn with_source(mut self, source: &'static str) -> Self {
        self.source = Some(source);
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes `response`, honoring `keep_alive`.
///
/// # Errors
///
/// Propagates socket write failures; the caller drops the connection.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        response.status,
        reason(response.status),
        response.body.len()
    );
    if let Some(source) = response.source {
        head.push_str(&format!("X-Gasnub-Source: {source}\r\n"));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}
