#![warn(missing_docs)]

//! # gasnub-serve
//!
//! Characterization-as-a-service: a zero-dependency HTTP/1.1 server for
//! GASNUB probe and sweep surfaces.
//!
//! The server exposes the same warm sweep machinery the CLI drives —
//! machine registry, tiered probe dispatch, resilient checkpoints — over a
//! small JSON API:
//!
//! | Endpoint            | Method | Purpose                                      |
//! |---------------------|--------|----------------------------------------------|
//! | `/v1/sweep`         | POST   | A full bandwidth surface (cached, coalesced) |
//! | `/v1/probe`         | POST   | One `(op, ws, stride)` cell                  |
//! | `/v1/machines`      | GET    | The machine zoo                              |
//! | `/v1/status`        | GET    | Liveness and cache occupancy                 |
//! | `/metrics`          | GET    | Serving + memo + robustness counters         |
//! | `/v1/shutdown`      | POST   | Stop, returning the shutdown report          |
//!
//! Three properties define the service contract:
//!
//! 1. **Byte identity.** A sweep response body is the durable checkpoint
//!    payload verbatim, so served and offline surfaces of the same
//!    `(machine, grid, fault plan, tier)` compare equal byte for byte.
//! 2. **Compute once.** Identical concurrent requests coalesce onto one
//!    in-flight computation; completed surfaces live in an in-memory cache
//!    backed by checkpoints on disk, so a restarted server resumes warm.
//! 3. **Warm observability.** Counters are request-boundary atomics, never
//!    engine recorders — observing the server does not force its probes
//!    down the cold path (see [`counters`]).
//!
//! Everything is hand-rolled over [`std::net`]; the crate adds no
//! dependencies beyond the workspace.

pub mod counters;
pub mod http;
pub mod server;

pub use counters::ServeCounters;
pub use server::{ApiError, ServeConfig, Server};
