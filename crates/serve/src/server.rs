//! The characterization server: request parsing, surface cache,
//! in-flight coalescing, and the accept loop.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use gasnub_analytic::TieredSpec;
use gasnub_core::json::Json;
use gasnub_core::storage::read_verified;
use gasnub_core::{Grid, ResilientSweep, SweepOp};
use gasnub_machines::{
    memo, FaultPlan, Machine, MachineRegistry, MachineSpec, MeasureLimits, ProbeTier, SpawnEngine,
};
use gasnub_trace::{serving, CounterSet};

use crate::counters::ServeCounters;
use crate::http::{read_request, write_response, ReadError, Response};

/// How a served sweep payload was obtained — the value of the
/// `X-Gasnub-Source` response header.
pub mod source {
    /// A fresh computation (at least one cell was measured this run).
    pub const COMPUTED: &str = "computed";
    /// Joined an identical in-flight computation and reused its result.
    pub const COALESCED: &str = "coalesced";
    /// Served from the in-memory payload cache.
    pub const MEMORY: &str = "memory";
    /// Resumed complete from the durable checkpoint on disk (warm
    /// restart: no cell re-measured).
    pub const DISK: &str = "disk";
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The address to bind, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Directory for durable surface checkpoints (created if missing).
    pub state_dir: PathBuf,
    /// Worker threads each sweep shards its grid across.
    pub threads: usize,
    /// Tier for requests that do not name one.
    pub tier: ProbeTier,
}

impl ServeConfig {
    /// A config with 1 sweep worker and the `sim` tier as defaults.
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            state_dir: state_dir.into(),
            threads: 1,
            tier: ProbeTier::Simulate,
        }
    }

    /// Sets the sweep worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the default tier.
    pub fn with_tier(mut self, tier: ProbeTier) -> Self {
        self.tier = tier;
        self
    }
}

/// A structured client/server error: HTTP status, a stable machine-readable
/// code, and a human-readable detail. Rendered as
/// `{"error":{"code":…,"detail":…,"status":…}}`.
#[derive(Debug, Clone)]
pub struct ApiError {
    status: u16,
    code: &'static str,
    detail: String,
}

impl ApiError {
    fn new(status: u16, code: &'static str, detail: impl Into<String>) -> Self {
        ApiError {
            status,
            code,
            detail: detail.into(),
        }
    }

    fn bad_request(code: &'static str, detail: impl Into<String>) -> Self {
        ApiError::new(400, code, detail)
    }

    fn internal(detail: impl Into<String>) -> Self {
        ApiError::new(500, "internal", detail)
    }

    fn response(&self) -> Response {
        let body = Json::object([(
            "error",
            Json::object([
                ("code", Json::Str(self.code.to_string())),
                ("detail", Json::Str(self.detail.clone())),
                ("status", Json::U64(self.status as u64)),
            ]),
        )]);
        Response {
            status: self.status,
            body: format!("{}\n", body.render()),
            source: None,
        }
    }
}

/// A parsed `POST /v1/sweep` body.
#[derive(Debug)]
struct SweepParams {
    machine: String,
    op: SweepOp,
    tier: ProbeTier,
    plan: Option<FaultPlan>,
    grid: Grid,
}

/// A parsed `POST /v1/probe` body.
struct ProbeParams {
    machine: String,
    op: SweepOp,
    tier: ProbeTier,
    plan: Option<FaultPlan>,
    ws_bytes: u64,
    stride: u64,
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("bad_json", "body is not UTF-8"))?;
    let doc = Json::parse(text)
        .map_err(|e| ApiError::bad_request("bad_json", format!("body is not valid JSON: {e}")))?;
    if !matches!(doc, Json::Object(_)) {
        return Err(ApiError::bad_request("bad_json", "body must be an object"));
    }
    Ok(doc)
}

fn required_str<'a>(doc: &'a Json, field: &str) -> Result<&'a str, ApiError> {
    doc.get(field).and_then(Json::as_str).ok_or_else(|| {
        ApiError::bad_request(
            "bad_request",
            format!("field {field:?} is required and must be a string"),
        )
    })
}

fn optional_u64(doc: &Json, field: &str) -> Result<Option<u64>, ApiError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ApiError::bad_request(
                "bad_request",
                format!("field {field:?} must be an unsigned integer"),
            )
        }),
    }
}

fn parse_op(doc: &Json) -> Result<SweepOp, ApiError> {
    let label = required_str(doc, "op")?;
    SweepOp::parse(label).ok_or_else(|| {
        ApiError::bad_request(
            "unknown_op",
            format!(
                "unknown operation {label:?} (expected load, store, copy-loads, \
                 copy-stores, pull, fetch or deposit)"
            ),
        )
    })
}

fn parse_tier(doc: &Json, default: ProbeTier) -> Result<ProbeTier, ApiError> {
    match doc.get("tier") {
        None | Some(Json::Null) => Ok(default),
        Some(v) => {
            let label = v.as_str().ok_or_else(|| {
                ApiError::bad_request("bad_tier", "field \"tier\" must be a string")
            })?;
            ProbeTier::parse(label).ok_or_else(|| {
                ApiError::bad_request(
                    "bad_tier",
                    format!("tier must be auto, analytic or sim, got {label:?}"),
                )
            })
        }
    }
}

/// The optional fault plan: `seed` and/or `severity_ppm` (parts per
/// million, since the JSON subset has no floats). Absent both → healthy.
fn parse_plan(doc: &Json) -> Result<Option<FaultPlan>, ApiError> {
    let seed = optional_u64(doc, "seed")?;
    let ppm = optional_u64(doc, "severity_ppm")?;
    if seed.is_none() && ppm.is_none() {
        return Ok(None);
    }
    let severity = ppm.unwrap_or(500_000) as f64 / 1e6;
    FaultPlan::new(seed.unwrap_or(0), severity)
        .map(Some)
        .map_err(|e| ApiError::bad_request("bad_request", format!("bad fault plan: {e}")))
}

/// Largest accepted grid (cells), keeping one request's work bounded.
const MAX_GRID_CELLS: usize = 4096;

fn parse_axis(doc: &Json, field: &str, min: u64, max: u64) -> Result<Vec<u64>, ApiError> {
    let bad = |detail: String| ApiError::bad_request("bad_grid", detail);
    let items = doc
        .get(field)
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("grid field {field:?} must be an array")))?;
    if items.is_empty() {
        return Err(bad(format!("grid field {field:?} must not be empty")));
    }
    let mut axis = Vec::with_capacity(items.len());
    for item in items {
        let v = item
            .as_u64()
            .ok_or_else(|| bad(format!("grid field {field:?} must hold unsigned integers")))?;
        if v < min || v > max {
            return Err(bad(format!(
                "grid field {field:?} values must be in [{min}, {max}], got {v}"
            )));
        }
        if axis.last().is_some_and(|&prev| prev >= v) {
            return Err(bad(format!(
                "grid field {field:?} must be strictly ascending"
            )));
        }
        axis.push(v);
    }
    Ok(axis)
}

/// The request's grid, or [`Grid::quick`] when absent — the same default
/// the offline `sweep` subcommand uses, so default served surfaces are
/// byte-identical to default offline checkpoints.
fn parse_grid(doc: &Json) -> Result<Grid, ApiError> {
    let grid_doc = match doc.get("grid") {
        None | Some(Json::Null) => return Ok(Grid::quick()),
        Some(g) => {
            if !matches!(g, Json::Object(_)) {
                return Err(ApiError::bad_request(
                    "bad_grid",
                    "field \"grid\" must be an object with \"strides\" and \"working_sets\"",
                ));
            }
            g
        }
    };
    let strides = parse_axis(grid_doc, "strides", 1, 16_384)?;
    let working_sets = parse_axis(grid_doc, "working_sets", 1024, 1 << 30)?;
    let grid = Grid {
        strides,
        working_sets,
    };
    if grid.cells() > MAX_GRID_CELLS {
        return Err(ApiError::bad_request(
            "bad_grid",
            format!("grid has {} cells, max {MAX_GRID_CELLS}", grid.cells()),
        ));
    }
    Ok(grid)
}

fn parse_sweep(body: &[u8], default_tier: ProbeTier) -> Result<SweepParams, ApiError> {
    let doc = parse_body(body)?;
    let machine = required_str(&doc, "machine")?.to_string();
    let op = parse_op(&doc)?;
    let plan = parse_plan(&doc)?;
    let mut tier = parse_tier(&doc, default_tier)?;
    // Like the CLI: analytic models cover healthy installations only, so a
    // fault plan forces simulation (and the checkpoint title records it).
    if plan.is_some() {
        tier = ProbeTier::Simulate;
    }
    let grid = parse_grid(&doc)?;
    Ok(SweepParams {
        machine,
        op,
        tier,
        plan,
        grid,
    })
}

fn parse_probe(body: &[u8], default_tier: ProbeTier) -> Result<ProbeParams, ApiError> {
    let doc = parse_body(body)?;
    let machine = required_str(&doc, "machine")?.to_string();
    let op = parse_op(&doc)?;
    let plan = parse_plan(&doc)?;
    let mut tier = parse_tier(&doc, default_tier)?;
    if plan.is_some() {
        tier = ProbeTier::Simulate;
    }
    let ws_bytes = optional_u64(&doc, "ws_bytes")?
        .ok_or_else(|| ApiError::bad_request("bad_request", "field \"ws_bytes\" is required"))?;
    let stride = optional_u64(&doc, "stride")?.unwrap_or(1);
    if !(1024..=1 << 30).contains(&ws_bytes) {
        return Err(ApiError::bad_request(
            "bad_request",
            format!("ws_bytes must be in [1024, {}], got {ws_bytes}", 1u64 << 30),
        ));
    }
    if !(1..=16_384).contains(&stride) {
        return Err(ApiError::bad_request(
            "bad_request",
            format!("stride must be in [1, 16384], got {stride}"),
        ));
    }
    Ok(ProbeParams {
        machine,
        op,
        tier,
        plan,
        ws_bytes,
        stride,
    })
}

/// One in-flight sweep computation that identical requests wait on.
struct Inflight {
    slot: Mutex<Option<Result<Arc<String>, ApiError>>>,
    ready: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

/// Shared server state: registry, caches, counters, stop flag.
struct ServerState {
    registry: MachineRegistry,
    state_dir: PathBuf,
    threads: usize,
    default_tier: ProbeTier,
    counters: ServeCounters,
    /// Robustness counters merged from every backing sweep run
    /// (force-restarts, torn-tail recoveries, retries, …).
    robustness: Mutex<CounterSet>,
    /// Completed surface payloads, keyed by the canonical cache key.
    cache: Mutex<HashMap<String, Arc<String>>>,
    /// Identical requests currently being computed, for coalescing.
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    stop: AtomicBool,
    /// The bound address, for the self-connect that wakes the accept loop.
    addr: Mutex<Option<SocketAddr>>,
}

/// FNV-1a over the cache key: names the checkpoint file of a surface.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ServerState {
    /// Resolves and prepares the named machine exactly like the CLI does
    /// (registry lookup, fast limits, fault plan folded in), so serve and
    /// offline sweeps agree on the spec — and therefore on the spec hash
    /// the checkpoint records.
    fn build_spec(&self, label: &str, plan: Option<&FaultPlan>) -> Result<MachineSpec, ApiError> {
        let mut spec = self
            .registry
            .resolve(label)
            .map_err(|e| ApiError::new(404, "unknown_machine", e.to_string()))?
            .clone()
            .with_limits(MeasureLimits::fast());
        if let Some(plan) = plan {
            spec = spec
                .with_faults(plan)
                .map_err(|e| ApiError::bad_request("bad_request", e.to_string()))?;
        }
        Ok(spec)
    }

    /// The canonical cache key of one surface: resolved machine label,
    /// spec hash (covers limits and the fault plan), op, tier, fault plan
    /// and the full grid — rendered as canonical JSON so equal requests
    /// produce equal bytes.
    fn cache_key(&self, p: &SweepParams, spec: &MachineSpec) -> String {
        let plan = match &p.plan {
            None => Json::Null,
            Some(plan) => Json::object([
                ("seed", Json::U64(plan.seed())),
                (
                    "severity_ppm",
                    Json::U64((plan.severity() * 1e6).round() as u64),
                ),
            ]),
        };
        Json::object([
            (
                "grid",
                Json::object([
                    (
                        "strides",
                        Json::Array(p.grid.strides.iter().map(|&s| Json::U64(s)).collect()),
                    ),
                    (
                        "working_sets",
                        Json::Array(p.grid.working_sets.iter().map(|&w| Json::U64(w)).collect()),
                    ),
                ]),
            ),
            ("machine", Json::Str(spec.label().to_string())),
            ("op", Json::Str(p.op.label().to_string())),
            ("plan", plan),
            ("spec_hash", Json::U64(spec.spec_hash())),
            ("tier", Json::Str(p.tier.label().to_string())),
        ])
        .render()
    }

    /// Runs (or resumes) the backing resilient sweep and returns the
    /// durable checkpoint payload — the exact bytes an offline
    /// `gasnub sweep` of the same `(machine, grid, tier)` produces.
    fn compute_sweep(
        &self,
        p: &SweepParams,
        spec: &MachineSpec,
        key: &str,
    ) -> Result<(Arc<String>, &'static str), ApiError> {
        let name = spec
            .spawn_engine()
            .map_err(|e| ApiError::internal(format!("engine spawn failed: {e}")))?
            .name();
        let title = p.op.checkpoint_title(&name, p.plan.is_some(), p.tier);
        let path = self
            .state_dir
            .join(format!("sweep-{:016x}.json", fnv64(key.as_bytes())));
        // force-restart: a torn or bit-rotted checkpoint under the state
        // dir is quarantined and recomputed instead of failing the request;
        // the recovery shows up in the robustness counters on /metrics.
        let runner = ResilientSweep::new(&path)
            .with_spec_hash(spec.spec_hash())
            .with_force_restart(true);
        let outcome = match p.tier {
            ProbeTier::Simulate => {
                runner.run_parallel_op(&title, &p.grid, self.threads, spec, p.op)
            }
            tier => {
                let spawner = TieredSpec::new(spec.clone(), tier)
                    .map_err(|e| ApiError::internal(format!("tiered spawn failed: {e}")))?;
                runner.run_parallel_op(&title, &p.grid, self.threads, &spawner, p.op)
            }
        }
        .map_err(|e| ApiError::internal(format!("sweep failed: {e}")))?;
        if !outcome.robustness.is_empty() {
            if let Ok(mut rob) = self.robustness.lock() {
                rob.merge(&outcome.robustness);
            }
        }
        let payload = read_verified(&path)
            .map_err(|e| ApiError::internal(format!("checkpoint readback failed: {e}")))?
            .ok_or_else(|| ApiError::internal("checkpoint vanished after sweep"))?;
        let source = if outcome.measured == 0 && outcome.resumed > 0 {
            source::DISK
        } else {
            source::COMPUTED
        };
        Ok((Arc::new(payload), source))
    }

    /// The full sweep path: memory cache → in-flight coalescing → durable
    /// checkpoint (resume or compute). Exactly one thread computes any
    /// given key at a time; everyone else reuses its bytes.
    fn sweep_payload(&self, p: &SweepParams) -> Result<(Arc<String>, &'static str), ApiError> {
        let spec = self.build_spec(&p.machine, p.plan.as_ref())?;
        let key = self.cache_key(p, &spec);
        if let Some(hit) = self.cache.lock().unwrap().get(&key) {
            return Ok((Arc::clone(hit), source::MEMORY));
        }
        let (cell, leader) = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&key) {
                Some(cell) => (Arc::clone(cell), false),
                None => {
                    // Re-check the cache while holding the in-flight lock:
                    // a leader publishes to the cache before retiring its
                    // in-flight entry, so this closes the window where a
                    // just-finished surface would be recomputed.
                    if let Some(hit) = self.cache.lock().unwrap().get(&key) {
                        return Ok((Arc::clone(hit), source::MEMORY));
                    }
                    let cell = Arc::new(Inflight::new());
                    inflight.insert(key.clone(), Arc::clone(&cell));
                    (cell, true)
                }
            }
        };
        if !leader {
            let mut slot = cell.slot.lock().unwrap();
            while slot.is_none() {
                slot = cell.ready.wait(slot).unwrap();
            }
            return slot
                .clone()
                .expect("in-flight slot is filled before notify")
                .map(|payload| (payload, source::COALESCED));
        }
        let result = self.compute_sweep(p, &spec, &key);
        if let Ok((payload, _)) = &result {
            self.cache
                .lock()
                .unwrap()
                .insert(key.clone(), Arc::clone(payload));
        }
        self.inflight.lock().unwrap().remove(&key);
        let mut slot = cell.slot.lock().unwrap();
        *slot = Some(result.clone().map(|(payload, _)| payload));
        cell.ready.notify_all();
        drop(slot);
        result
    }

    fn probe_response(&self, body: &[u8]) -> Result<Response, ApiError> {
        let p = parse_probe(body, self.default_tier)?;
        self.counters.probe();
        let spec = self.build_spec(&p.machine, p.plan.as_ref())?;
        // Engines stay recorder-free: repeated probes of the same cell hit
        // the per-process memo instead of re-simulating (see
        // [`crate::counters`] for why the server never installs recorders).
        let mb_s = match p.tier {
            ProbeTier::Simulate => {
                let mut engine = spec
                    .spawn_engine()
                    .map_err(|e| ApiError::internal(format!("engine spawn failed: {e}")))?;
                p.op.measure(&mut engine, p.ws_bytes, p.stride)
            }
            tier => {
                let mut machine = TieredSpec::new(spec.clone(), tier)
                    .and_then(|t| t.spawn_engine())
                    .map_err(|e| ApiError::internal(format!("tiered spawn failed: {e}")))?;
                p.op.measure(&mut machine, p.ws_bytes, p.stride)
            }
        };
        let (supported, mb_s_bits, mb_s_text) = match mb_s {
            Some(v) => (
                Json::Bool(true),
                Json::U64(v.to_bits()),
                Json::Str(format!("{v:.1}")),
            ),
            None => (Json::Bool(false), Json::Null, Json::Null),
        };
        let doc = Json::object([
            ("machine", Json::Str(spec.label().to_string())),
            ("mb_s", mb_s_text),
            ("mb_s_bits", mb_s_bits),
            ("op", Json::Str(p.op.label().to_string())),
            ("stride", Json::U64(p.stride)),
            ("supported", supported),
            ("tier", Json::Str(p.tier.label().to_string())),
            ("ws_bytes", Json::U64(p.ws_bytes)),
        ]);
        Ok(Response::ok(format!("{}\n", doc.render())))
    }

    fn sweep_response(&self, body: &[u8]) -> Result<Response, ApiError> {
        let p = parse_sweep(body, self.default_tier)?;
        self.counters.sweep();
        let (payload, from) = self.sweep_payload(&p)?;
        self.counters.sweep_source(from);
        // The body is the checkpoint payload verbatim — byte-identical to
        // the offline checkpoint of the same (machine, grid, tier).
        Ok(Response::ok(payload.as_str().to_string()).with_source(from))
    }

    fn machines_response(&self) -> Response {
        let machines: Vec<Json> = self
            .registry
            .specs()
            .iter()
            .map(|spec| {
                Json::object([
                    ("clock_mhz", Json::Str(format!("{}", spec.clock_mhz()))),
                    ("model", Json::Str(spec.model_family().to_string())),
                    ("name", Json::Str(spec.label().to_string())),
                    ("spec_hash", Json::Str(format!("{:016x}", spec.spec_hash()))),
                    ("summary", Json::Str(spec.summary().to_string())),
                ])
            })
            .collect();
        let doc = Json::object([("machines", Json::Array(machines))]);
        Response::ok(format!("{}\n", doc.render()))
    }

    fn status_response(&self) -> Response {
        let snap = self.counters.snapshot();
        let doc = Json::object([
            (
                "cached_surfaces",
                Json::U64(self.cache.lock().unwrap().len() as u64),
            ),
            (
                "inflight_sweeps",
                Json::U64(self.inflight.lock().unwrap().len() as u64),
            ),
            ("machines", Json::U64(self.registry.specs().len() as u64)),
            ("queue_depth", Json::U64(self.counters.queue_depth())),
            ("requests", Json::U64(snap.get(serving::REQUESTS))),
            ("state_dir", Json::Str(self.state_dir.display().to_string())),
            ("threads", Json::U64(self.threads as u64)),
            ("tier", Json::Str(self.default_tier.label().to_string())),
        ]);
        Response::ok(format!("{}\n", doc.render()))
    }

    /// Every counter the server keeps, as one canonical set: serving
    /// atomics, the probe memo's own statistics, and the robustness
    /// counters of every backing sweep.
    fn metrics(&self) -> CounterSet {
        let mut set = self.counters.snapshot();
        set.set(
            serving::CACHED_SURFACES,
            self.cache.lock().unwrap().len() as u64,
        );
        let (hits, misses) = memo::stats();
        set.set("memo.hits", hits);
        set.set("memo.misses", misses);
        set.set("memo.entries", memo::len() as u64);
        if let Ok(rob) = self.robustness.lock() {
            set.merge(&rob);
        }
        set
    }

    fn metrics_response(&self) -> Response {
        let set = self.metrics();
        let doc = Json::Object(
            set.iter()
                .map(|(name, value)| (name.to_string(), Json::U64(value)))
                .collect(),
        );
        Response::ok(format!("{}\n", doc.render()))
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Sets the stop flag and nudges the accept loop with a self-connect.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(addr) = *self.addr.lock().unwrap() {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Routes one request. Parse/validation failures become structured 4xx
/// bodies; nothing in here panics on client input.
fn route(state: &ServerState, method: &str, path: &str, body: &[u8]) -> Response {
    const KNOWN: [(&str, &str); 6] = [
        ("GET", "/v1/machines"),
        ("GET", "/v1/status"),
        ("GET", "/metrics"),
        ("POST", "/v1/probe"),
        ("POST", "/v1/sweep"),
        ("POST", "/v1/shutdown"),
    ];
    match (method, path) {
        ("GET", "/v1/machines") => state.machines_response(),
        ("GET", "/v1/status") => state.status_response(),
        ("GET", "/metrics") => state.metrics_response(),
        ("POST", "/v1/probe") => state.probe_response(body).unwrap_or_else(|e| e.response()),
        ("POST", "/v1/sweep") => state.sweep_response(body).unwrap_or_else(|e| e.response()),
        ("POST", "/v1/shutdown") => Response::ok("{\"stopping\":true}\n".to_string()),
        (_, path) if KNOWN.iter().any(|&(_, p)| p == path) => ApiError::new(
            405,
            "method_not_allowed",
            format!("{method} is not accepted on {path}"),
        )
        .response(),
        _ => ApiError::new(404, "unknown_endpoint", format!("no endpoint at {path}")).response(),
    }
}

/// Serves one connection: keep-alive request loop, structured errors,
/// per-request counters.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    loop {
        let request = match read_request(&mut stream) {
            Ok(request) => request,
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => return,
            Err(ReadError::TooLarge) => {
                state.counters.start_request();
                let resp =
                    ApiError::new(413, "payload_too_large", "request body too large").response();
                state.counters.finish_request(resp.status);
                let _ = write_response(&mut stream, &resp, false);
                return;
            }
            Err(ReadError::Malformed(detail)) => {
                state.counters.start_request();
                let resp = ApiError::bad_request("bad_request", detail).response();
                state.counters.finish_request(resp.status);
                let _ = write_response(&mut stream, &resp, false);
                return;
            }
        };
        state.counters.start_request();
        let response = route(state, &request.method, &request.path, &request.body);
        state.counters.finish_request(response.status);
        let keep_alive = request.keep_alive();
        let wrote = write_response(&mut stream, &response, keep_alive);
        // Stop only after the shutdown acknowledgement is on the wire, so
        // the stopping client always hears back.
        if request.method == "POST" && request.path == "/v1/shutdown" {
            state.request_stop();
            return;
        }
        if wrote.is_err() || !keep_alive {
            return;
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener, creates the state directory and discovers the
    /// machine registry.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the state directory cannot be
    /// created or the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        std::fs::create_dir_all(&config.state_dir).map_err(|e| {
            format!(
                "cannot create state dir {}: {e}",
                config.state_dir.display()
            )
        })?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let state = Arc::new(ServerState {
            registry: MachineRegistry::discover(),
            state_dir: config.state_dir,
            threads: config.threads.max(1),
            default_tier: config.tier,
            counters: ServeCounters::new(),
            robustness: Mutex::new(CounterSet::new()),
            cache: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            addr: Mutex::new(None),
        });
        *state.addr.lock().unwrap() = Some(
            listener
                .local_addr()
                .map_err(|e| format!("cannot read bound address: {e}"))?,
        );
        Ok(Server { listener, state })
    }

    /// The bound address (the actual port when `:0` was requested).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the bound address (never after a
    /// successful [`Server::bind`]).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener is bound")
    }

    /// Runs the accept loop until `POST /v1/shutdown`, then returns the
    /// final metrics snapshot (the shutdown report).
    ///
    /// Connections are served on one thread each; the loop itself never
    /// touches request state, so a slow sweep cannot stall accepting.
    pub fn run(self) -> CounterSet {
        for conn in self.listener.incoming() {
            if self.state.stopping() {
                break;
            }
            let Ok(stream) = conn else { continue };
            self.state.counters.connection();
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }
        self.state.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_is_stable() {
        // Pinned so on-disk checkpoint names never silently move.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"gasnub"), fnv64(b"gasnub"));
        assert_ne!(fnv64(b"gasnub"), fnv64(b"gasnuc"));
    }

    #[test]
    fn sweep_body_parses_with_defaults() {
        let p = parse_sweep(br#"{"machine":"t3d","op":"load"}"#, ProbeTier::Simulate).unwrap();
        assert_eq!(p.machine, "t3d");
        assert_eq!(p.op, SweepOp::LocalLoad);
        assert_eq!(p.tier, ProbeTier::Simulate);
        assert!(p.plan.is_none());
        assert_eq!(p.grid, Grid::quick());
    }

    #[test]
    fn bad_bodies_map_to_stable_codes() {
        let code = |body: &[u8]| parse_sweep(body, ProbeTier::Simulate).unwrap_err().code;
        assert_eq!(code(b"{nope"), "bad_json");
        assert_eq!(code(b"[1,2]"), "bad_json");
        assert_eq!(code(br#"{"op":"load"}"#), "bad_request");
        assert_eq!(code(br#"{"machine":"t3d","op":"teleport"}"#), "unknown_op");
        assert_eq!(
            code(br#"{"machine":"t3d","op":"load","tier":"warp"}"#),
            "bad_tier"
        );
        assert_eq!(
            code(br#"{"machine":"t3d","op":"load","grid":{"strides":[],"working_sets":[2048]}}"#),
            "bad_grid"
        );
        assert_eq!(
            code(
                br#"{"machine":"t3d","op":"load","grid":{"strides":[8,1],"working_sets":[2048]}}"#
            ),
            "bad_grid"
        );
    }

    #[test]
    fn fault_plan_forces_sim_tier() {
        let p = parse_sweep(
            br#"{"machine":"t3d","op":"fetch","tier":"auto","seed":7}"#,
            ProbeTier::Simulate,
        )
        .unwrap();
        assert_eq!(p.tier, ProbeTier::Simulate);
        assert!(p.plan.is_some());
    }
}
