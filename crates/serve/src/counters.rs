//! Serving counters: cheap per-request atomics, folded into a
//! [`CounterSet`] only when `/metrics` or the shutdown report asks.
//!
//! This is the counter path that closes the latent gap between metrics
//! and the warm path: installing a [`gasnub_trace::Recorder`] on the
//! probing engines would report per-probe counters, but the per-process
//! probe memo is (correctly) bypassed whenever a recorder is enabled —
//! observed probes must be genuine recomputations. A server that recorded
//! every request would therefore serve every probe cold. Instead, the
//! serving layer counts at the request boundary with relaxed atomics
//! (nanoseconds per request), leaves the engines unobserved so repeats hit
//! the memo, and reads the memo's own hit/miss statistics into the
//! snapshot for free.

use std::sync::atomic::{AtomicU64, Ordering};

use gasnub_trace::{serving, CounterSet};

/// The serving layer's request-boundary counters.
#[derive(Debug, Default)]
pub struct ServeCounters {
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    probes: AtomicU64,
    sweeps: AtomicU64,
    sweeps_computed: AtomicU64,
    sweep_cache_hits_memory: AtomicU64,
    sweep_cache_hits_disk: AtomicU64,
    sweeps_coalesced: AtomicU64,
    connections: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
}

impl ServeCounters {
    /// A zeroed counter block.
    pub fn new() -> Self {
        ServeCounters::default()
    }

    /// Counts an accepted connection.
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request entering service and updates the queue-depth
    /// high-water mark. Pair with [`ServeCounters::finish_request`].
    pub fn start_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Counts a response by status class and releases the queue slot.
    pub fn finish_request(&self, status: u16) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a probe request.
    pub fn probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a sweep request.
    pub fn sweep(&self) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts how a sweep payload was obtained.
    pub fn sweep_source(&self, source: &'static str) {
        let counter = match source {
            "memory" => &self.sweep_cache_hits_memory,
            "disk" => &self.sweep_cache_hits_disk,
            "coalesced" => &self.sweeps_coalesced,
            _ => &self.sweeps_computed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests currently in flight.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Total sweep surfaces computed (cache misses) so far.
    pub fn sweeps_computed(&self) -> u64 {
        self.sweeps_computed.load(Ordering::Relaxed)
    }

    /// Folds the block into a [`CounterSet`] under the canonical
    /// [`gasnub_trace::serving`] names.
    pub fn snapshot(&self) -> CounterSet {
        let mut set = CounterSet::new();
        let read = |a: &AtomicU64| a.load(Ordering::Relaxed);
        set.set(serving::REQUESTS, read(&self.requests));
        set.set(serving::RESPONSES_2XX, read(&self.responses_2xx));
        set.set(serving::RESPONSES_4XX, read(&self.responses_4xx));
        set.set(serving::RESPONSES_5XX, read(&self.responses_5xx));
        set.set(serving::PROBES, read(&self.probes));
        set.set(serving::SWEEPS, read(&self.sweeps));
        set.set(serving::SWEEPS_COMPUTED, read(&self.sweeps_computed));
        set.set(
            serving::SWEEP_CACHE_HITS_MEMORY,
            read(&self.sweep_cache_hits_memory),
        );
        set.set(
            serving::SWEEP_CACHE_HITS_DISK,
            read(&self.sweep_cache_hits_disk),
        );
        set.set(serving::SWEEPS_COALESCED, read(&self.sweeps_coalesced));
        set.set(serving::CONNECTIONS, read(&self.connections));
        set.set(serving::QUEUE_DEPTH_PEAK, read(&self.queue_depth_peak));
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_uses_canonical_names() {
        let c = ServeCounters::new();
        c.connection();
        c.start_request();
        c.sweep();
        c.sweep_source("computed");
        c.finish_request(200);
        c.start_request();
        c.finish_request(404);
        let snap = c.snapshot();
        assert_eq!(snap.get(serving::REQUESTS), 2);
        assert_eq!(snap.get(serving::RESPONSES_2XX), 1);
        assert_eq!(snap.get(serving::RESPONSES_4XX), 1);
        assert_eq!(snap.get(serving::SWEEPS_COMPUTED), 1);
        assert_eq!(snap.get(serving::CONNECTIONS), 1);
        assert_eq!(snap.get(serving::QUEUE_DEPTH_PEAK), 1);
        assert_eq!(c.queue_depth(), 0);
    }
}
