//! A minimal complex number type for the FFT kernel.
//!
//! The paper's kernel "operates on complex numbers represented as a pair of
//! 64bit, double precision floating point numbers" (§7.1) — exactly this
//! layout (re, im interleaved), which is also how the kernel stores them in
//! the symmetric heap.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from its parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^(i*theta)` — the twiddle factor at angle `theta`.
    pub fn from_polar(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn polar_and_conj() {
        let i = Complex::from_polar(std::f64::consts::FRAC_PI_2);
        assert!((i.re).abs() < 1e-15);
        assert!((i.im - 1.0).abs() < 1e-15);
        assert_eq!(i.conj().im, -i.im);
    }

    #[test]
    fn magnitude() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.scale(2.0), Complex::new(6.0, 8.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
