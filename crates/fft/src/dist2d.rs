//! The distributed 2D-FFT (§7.1): "local row FFTs (1D), global row-column
//! transpose, local column FFTs (1D), global column-row transpose."
//!
//! The n x n complex array is block-distributed by rows over the PEs (the
//! HPF layout the Fx compiler handles). Transposes are explicit
//! communication: on the T3D "transfers are realized with a customized
//! primitive similar to shmem_put"; on the T3E "with shmem_iput"; on the
//! DEC 8400 the consumer pulls through the coherency mechanism.

use gasnub_machines::MachineId;
use gasnub_shmem::{Pe, ShmemCtx, TransferCost};

use crate::complex::Complex;
use crate::fft1d::{fft_flops, fft_forward};
use crate::perf::{ComputeModel, FleetCost, COMPLEX_BYTES};

/// How the global transposes move data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransposeStyle {
    /// Senders push column segments into the destination rows (remote
    /// strided stores).
    Deposit,
    /// Receivers gather their rows from the source blocks (remote strided
    /// loads).
    Fetch,
}

impl TransposeStyle {
    /// The style each machine's compiler back end used in the paper.
    pub fn for_machine(id: MachineId) -> Self {
        match id {
            // "On the DEC 8400, the implicit coherency mechanism limits the
            // user to pulling" (§9).
            MachineId::Dec8400 => TransposeStyle::Fetch,
            // "Transfers are realized with a customized primitive similar
            // to shmem_put on the T3D and with shmem_iput on the T3E" (§2).
            MachineId::CrayT3d | MachineId::CrayT3e => TransposeStyle::Deposit,
            // No measured preference for user-defined machines.
            MachineId::Custom => TransposeStyle::Deposit,
        }
    }
}

/// The distributed 2D-FFT kernel over a timed shmem context.
#[derive(Debug)]
pub struct Dist2dFft<C: TransferCost> {
    n: usize,
    npes: usize,
    ctx: ShmemCtx<C>,
    style: TransposeStyle,
    compute_cycles: Vec<f64>,
}

impl<C: TransferCost> Dist2dFft<C> {
    /// Creates the kernel for an `n x n` array over `npes` PEs.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two divisible by `npes`.
    pub fn new(n: usize, npes: usize, cost: C, style: TransposeStyle) -> Self {
        assert!(n.is_power_of_two(), "n must be a power of two, got {n}");
        assert!(
            npes > 0 && n.is_multiple_of(npes),
            "npes must divide n ({n} / {npes})"
        );
        let rows = n / npes;
        // Two buffers (A and B) of rows x n complex numbers per PE.
        let words_per_pe = 2 * rows * n * 2;
        Dist2dFft {
            n,
            npes,
            ctx: ShmemCtx::new(npes, words_per_pe, cost),
            style,
            compute_cycles: vec![0.0; npes],
        }
    }

    /// The problem size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rows each PE owns.
    pub fn rows_per_pe(&self) -> usize {
        self.n / self.npes
    }

    /// The timed context (inspection).
    pub fn ctx(&self) -> &ShmemCtx<C> {
        &self.ctx
    }

    fn a_word(&self, local_row: usize, col: usize) -> usize {
        (local_row * self.n + col) * 2
    }

    fn b_word(&self, local_row: usize, col: usize) -> usize {
        self.rows_per_pe() * self.n * 2 + (local_row * self.n + col) * 2
    }

    /// Sets element (global row `i`, column `j`) of the input array.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize, v: Complex) {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range for n={}",
            self.n
        );
        let rows = self.rows_per_pe();
        let pe = Pe(i / rows);
        let w = self.a_word(i % rows, j);
        let mem = self.ctx.heap_mut().local_mut(pe);
        mem[w] = v.re;
        mem[w + 1] = v.im;
    }

    /// Reads element (global row `i`, column `j`) of the (result) array.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> Complex {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range for n={}",
            self.n
        );
        let rows = self.rows_per_pe();
        let pe = Pe(i / rows);
        let w = self.a_word(i % rows, j);
        let mem = self.ctx.heap().local(pe);
        Complex::new(mem[w], mem[w + 1])
    }

    /// Runs local row FFTs on buffer A (`use_b = false`) or B, charging
    /// `row_cycles` per row to each PE.
    fn fft_rows(&mut self, use_b: bool, row_cycles: f64, inverse: bool) {
        let n = self.n;
        let rows = self.rows_per_pe();
        let mut scratch = vec![Complex::ZERO; n];
        for pe in 0..self.npes {
            for r in 0..rows {
                let base = if use_b {
                    self.b_word(r, 0)
                } else {
                    self.a_word(r, 0)
                };
                {
                    let mem = self.ctx.heap().local(Pe(pe));
                    for c in 0..n {
                        scratch[c] = Complex::new(mem[base + 2 * c], mem[base + 2 * c + 1]);
                    }
                }
                if inverse {
                    crate::fft1d::fft_inverse(&mut scratch);
                } else {
                    fft_forward(&mut scratch);
                }
                let mem = self.ctx.heap_mut().local_mut(Pe(pe));
                for c in 0..n {
                    mem[base + 2 * c] = scratch[c].re;
                    mem[base + 2 * c + 1] = scratch[c].im;
                }
            }
            self.ctx.advance_local(Pe(pe), row_cycles * rows as f64);
            self.compute_cycles[pe] += row_cycles * rows as f64;
        }
    }

    /// One global transpose: `a_to_b` moves Aᵀ into B, else Bᵀ into A.
    ///
    /// Deposit: sender `p` pushes, for each of its local rows `i`, the
    /// segment of columns owned by `q` into `q`'s B column `i` — one
    /// `iput_blocks` per (row, destination) with destination stride `n`
    /// complex. Fetch is the mirror image.
    fn transpose(&mut self, a_to_b: bool) {
        let n = self.n;
        let rows = self.rows_per_pe();
        let stride_words = 2 * n;

        for me in 0..self.npes {
            for other in 0..self.npes {
                if other == me {
                    // The diagonal block transposes locally: a memory copy,
                    // not communication. Charged as local work at a nominal
                    // strided-copy rate.
                    for r in 0..rows {
                        let global = me * rows + r;
                        let (src_off, dst_off) = if a_to_b {
                            (self.a_word(r, me * rows), self.b_word(0, global))
                        } else {
                            (self.b_word(r, me * rows), self.a_word(0, global))
                        };
                        self.ctx.heap_mut().copy_blocks(
                            Pe(me),
                            src_off,
                            2,
                            Pe(me),
                            dst_off,
                            stride_words,
                            2,
                            rows,
                        );
                        let local_copy_cycles = 4.0 * (2 * rows) as f64;
                        self.ctx.advance_local(Pe(me), local_copy_cycles);
                        self.compute_cycles[me] += local_copy_cycles;
                    }
                    continue;
                }
                for r in 0..rows {
                    match self.style {
                        TransposeStyle::Deposit => {
                            // I am the sender `p`; push row r's segment for
                            // PE `other` into their column (global row
                            // index of my row r).
                            let global_i = me * rows + r;
                            let src_off = if a_to_b {
                                self.a_word(r, other * rows)
                            } else {
                                self.b_word(r, other * rows)
                            };
                            // Destination: their rows are the global
                            // columns other*rows..; my row becomes their
                            // column global_i.
                            let dst_off = if a_to_b {
                                self.b_word(0, global_i)
                            } else {
                                self.a_word(0, global_i)
                            };
                            self.ctx.iput_blocks(
                                Pe(me),
                                Pe(other),
                                dst_off,
                                stride_words,
                                src_off,
                                2,
                                2,
                                rows,
                            );
                        }
                        TransposeStyle::Fetch => {
                            // I am the receiver. The cost-model-optimal
                            // orientation on a pull machine reads the
                            // producer's rows *contiguously* and scatters
                            // into the local column (the remote side is
                            // what the paper's surfaces price): pull row r
                            // of PE `other`'s block (global row index i)
                            // and scatter it down my column i.
                            let global_i = other * rows + r;
                            let src_off = if a_to_b {
                                self.a_word(r, me * rows)
                            } else {
                                self.b_word(r, me * rows)
                            };
                            let dst_off = if a_to_b {
                                self.b_word(0, global_i)
                            } else {
                                self.a_word(0, global_i)
                            };
                            self.ctx.iget_blocks(
                                Pe(me),
                                Pe(other),
                                dst_off,
                                stride_words,
                                src_off,
                                2,
                                2,
                                rows,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Runs the full 2D-FFT: row FFTs, transpose, column FFTs, transpose
    /// back. `row_cycles` is the modelled cost of one n-point 1D-FFT.
    /// On return buffer A holds the 2D transform in natural orientation.
    pub fn run(&mut self, row_cycles: f64) {
        self.run_direction(row_cycles, false);
    }

    /// Runs the inverse 2D-FFT with the same four-step structure; composing
    /// [`Dist2dFft::run`] and this method reproduces the input.
    pub fn run_inverse(&mut self, row_cycles: f64) {
        self.run_direction(row_cycles, true);
    }

    fn run_direction(&mut self, row_cycles: f64, inverse: bool) {
        self.fft_rows(false, row_cycles, inverse); // row FFTs on A
        self.ctx.barrier();
        self.transpose(true); // B = A^T
        self.ctx.barrier();
        self.fft_rows(true, row_cycles, inverse); // column FFTs (rows of B)
        self.ctx.barrier();
        self.transpose(false); // A = B^T
        self.ctx.barrier();
    }

    /// Maximum per-PE compute cycles charged so far.
    pub fn max_compute_cycles(&self) -> f64 {
        self.compute_cycles.iter().cloned().fold(0.0, f64::max)
    }

    /// Maximum per-PE communication cycles charged so far.
    pub fn max_comm_cycles(&self) -> f64 {
        (0..self.npes)
            .map(|p| self.ctx.comm_cycles(Pe(p)))
            .fold(0.0, f64::max)
    }

    /// Maximum per-PE total clock so far.
    pub fn max_clock_cycles(&self) -> f64 {
        (0..self.npes)
            .map(|p| self.ctx.clock_cycles(Pe(p)))
            .fold(0.0, f64::max)
    }
}

/// The measured outcome of one 2D-FFT benchmark run (one cluster of bars in
/// figs 15-17).
#[derive(Debug, Clone, PartialEq)]
pub struct FftRunResult {
    /// Which machine ran.
    pub machine: MachineId,
    /// Problem size (n x n).
    pub n: usize,
    /// PEs used.
    pub npes: usize,
    /// Wall time in microseconds (max PE clock).
    pub total_us: f64,
    /// Max per-PE compute time in microseconds.
    pub compute_us: f64,
    /// Max per-PE communication time in microseconds.
    pub comm_us: f64,
    /// Overall application performance in MFlop/s (fig 15).
    pub total_mflops: f64,
    /// Local computation performance, all PEs, MFlop/s (fig 16).
    pub compute_mflops_total: f64,
    /// Communication performance, all PEs, MB/s (fig 17).
    pub comm_mb_s_total: f64,
}

/// Total flops of one n x n 2D-FFT: `2n` 1D-FFTs of `5 n log2 n` flops.
pub fn total_flops(n: u64) -> f64 {
    2.0 * n as f64 * fft_flops(n)
}

/// Runs the §7 benchmark: the 2D-FFT on `npes` PEs of `machine` at problem
/// size `n`, with the machine's preferred transpose style.
///
/// # Panics
///
/// Panics unless `n` is a power of two divisible by `npes`.
pub fn run_benchmark(machine: MachineId, n: usize, npes: usize) -> FftRunResult {
    run_benchmark_with_style(machine, n, npes, TransposeStyle::for_machine(machine))
}

/// [`run_benchmark`] with an explicit transpose style — the experiment the
/// paper left as future work: "Due to a mismatch between the required
/// memory access patterns … and the simple capabilities of the shmem_iput
/// primitive, the expected performance could not be achieved at this time.
/// A rewrite of this crucial primitive is planned" (§7.3). On the T3E the
/// fetch style is that rewrite: even-stride gathers avoid the destination
/// bank serialization that throttles iput.
///
/// # Panics
///
/// Panics unless `n` is a power of two divisible by `npes`.
pub fn run_benchmark_with_style(
    machine: MachineId,
    n: usize,
    npes: usize,
    style: TransposeStyle,
) -> FftRunResult {
    let mut compute = ComputeModel::new(machine);
    let cost = FleetCost::new(machine, npes);
    let clock = compute.clock_mhz();
    let mut fft = Dist2dFft::new(n, npes, cost, style);

    // Deterministic non-trivial input.
    for i in 0..n {
        for j in 0..n {
            let v = Complex::new(
                ((i * 31 + j * 17) % 97) as f64 / 97.0,
                ((i * 13 + j * 41) % 89) as f64 / 89.0,
            );
            fft.set(i, j, v);
        }
    }

    let row_cycles = compute.row_fft_cycles(n as u64);
    fft.run(row_cycles);

    let total_us = fft.max_clock_cycles() / clock;
    let compute_us = fft.max_compute_cycles() / clock;
    let comm_us = fft.max_comm_cycles() / clock;
    let flops = total_flops(n as u64);
    // Two transposes, each moving the (npes-1)/npes off-diagonal share of
    // the n^2 x 16-byte array.
    let comm_bytes =
        2.0 * (npes as f64 - 1.0) / npes as f64 * (n * n) as f64 * COMPLEX_BYTES as f64;
    FftRunResult {
        machine,
        n,
        npes,
        total_us,
        compute_us,
        comm_us,
        total_mflops: flops / total_us,
        compute_mflops_total: flops / compute_us,
        comm_mb_s_total: comm_bytes / comm_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::dft_naive;
    use gasnub_shmem::UniformCost;

    /// Serial 2D FFT oracle: FFT all rows, then all columns.
    fn serial_2d(n: usize, input: &[Complex]) -> Vec<Complex> {
        let mut data = input.to_vec();
        for r in 0..n {
            fft_forward(&mut data[r * n..(r + 1) * n]);
        }
        for c in 0..n {
            let mut col: Vec<Complex> = (0..n).map(|r| data[r * n + c]).collect();
            fft_forward(&mut col);
            for (r, v) in col.into_iter().enumerate() {
                data[r * n + c] = v;
            }
        }
        data
    }

    fn input(n: usize) -> Vec<Complex> {
        (0..n * n)
            .map(|k| Complex::new(((k * 7) % 23) as f64 / 23.0, ((k * 5) % 19) as f64 / 19.0))
            .collect()
    }

    fn run_distributed(n: usize, npes: usize, style: TransposeStyle) -> Vec<Complex> {
        let mut fft = Dist2dFft::new(n, npes, UniformCost::new(), style);
        let data = input(n);
        for i in 0..n {
            for j in 0..n {
                fft.set(i, j, data[i * n + j]);
            }
        }
        fft.run(100.0);
        (0..n * n).map(|k| fft.get(k / n, k % n)).collect()
    }

    fn assert_matches_serial(n: usize, npes: usize, style: TransposeStyle) {
        let got = run_distributed(n, npes, style);
        let want = serial_2d(n, &input(n));
        for (k, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (*g - *w).abs() < 1e-9 * n as f64,
                "{style:?} n={n} npes={npes}: element {k}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn deposit_transpose_computes_the_right_answer() {
        assert_matches_serial(16, 4, TransposeStyle::Deposit);
        assert_matches_serial(32, 4, TransposeStyle::Deposit);
        assert_matches_serial(8, 2, TransposeStyle::Deposit);
    }

    #[test]
    fn fetch_transpose_computes_the_right_answer() {
        assert_matches_serial(16, 4, TransposeStyle::Fetch);
        assert_matches_serial(32, 8, TransposeStyle::Fetch);
    }

    #[test]
    fn single_pe_still_works() {
        assert_matches_serial(8, 1, TransposeStyle::Deposit);
    }

    #[test]
    fn serial_2d_oracle_matches_naive_dft_on_rows() {
        // Cross-check the oracle itself on a 1D-equivalent case: a single
        // row followed by length-1 columns is just a row FFT.
        let n = 8;
        let data = input(n);
        let serial = serial_2d(n, &data);
        // Spot check: 2D DFT of the first basis frequency.
        let naive_rows: Vec<Complex> = dft_naive(&data[..n]);
        // Row FFT of row 0 must match the naive DFT before column mixing
        // only when n == 1 column-wise; here just sanity-check finite.
        assert!(naive_rows.iter().all(|z| z.abs().is_finite()));
        assert!(serial.iter().all(|z| z.abs().is_finite()));
    }

    #[test]
    fn forward_then_inverse_reproduces_the_input() {
        let n = 16;
        let mut fft = Dist2dFft::new(n, 4, UniformCost::new(), TransposeStyle::Deposit);
        let data = input(n);
        for i in 0..n {
            for j in 0..n {
                fft.set(i, j, data[i * n + j]);
            }
        }
        fft.run(10.0);
        fft.run_inverse(10.0);
        for i in 0..n {
            for j in 0..n {
                let got = fft.get(i, j);
                let want = data[i * n + j];
                assert!((got - want).abs() < 1e-10, "({i},{j}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn clocks_advance_and_split_between_compute_and_comm() {
        let mut fft = Dist2dFft::new(16, 4, UniformCost::new(), TransposeStyle::Deposit);
        fft.run(50.0);
        assert!(fft.max_compute_cycles() > 0.0);
        assert!(fft.max_comm_cycles() > 0.0);
        assert!(fft.max_clock_cycles() >= fft.max_compute_cycles());
        assert_eq!(fft.ctx().barriers(), 4);
    }

    #[test]
    fn t3e_fetch_rewrite_beats_the_iput_transpose() {
        // §7.3's planned rewrite, evaluated: gathering the transpose (fetch)
        // avoids the destination-bank serialization of strided iputs and
        // lifts overall T3E performance.
        let iput = run_benchmark_with_style(MachineId::CrayT3e, 256, 4, TransposeStyle::Deposit);
        let fetch = run_benchmark_with_style(MachineId::CrayT3e, 256, 4, TransposeStyle::Fetch);
        assert!(
            fetch.comm_us < iput.comm_us * 0.8,
            "the fetch rewrite must cut transpose time: {} vs {} us",
            fetch.comm_us,
            iput.comm_us
        );
        assert!(fetch.total_mflops > iput.total_mflops);
        // And both still compute the same (verified) transform — implied by
        // the shared data path tested above.
    }

    #[test]
    fn run_benchmark_reports_consistent_metrics() {
        let r = run_benchmark(MachineId::CrayT3e, 64, 4);
        assert_eq!(r.n, 64);
        assert!(r.total_us > 0.0);
        assert!(r.compute_us <= r.total_us);
        assert!(r.total_mflops > 0.0);
        assert!(r.compute_mflops_total >= r.total_mflops);
        assert!(r.comm_mb_s_total > 0.0);
    }

    #[test]
    fn flop_formula() {
        assert_eq!(total_flops(256), 2.0 * 256.0 * 5.0 * 256.0 * 8.0);
    }
}
