#![warn(missing_docs)]

//! # gasnub-fft
//!
//! The paper's §7 application kernel: a distributed **2D-FFT**, "done as a
//! sequence of four steps: 1D-FFT, transpose, 1D-FFT, transpose", run on
//! four PEs of each simulated machine.
//!
//! The kernel is real: [`fft1d`] implements a radix-2 complex FFT (verified
//! against a naive DFT), and [`dist2d`] executes the distributed algorithm
//! over the `gasnub-shmem` global address space, moving actual data. Timing
//! comes from two measured models:
//!
//! * [`perf::ComputeModel`] — local 1D-FFT rates per machine, coupling the
//!   vendor-library flop rate with the measured local memory bandwidth at
//!   the row working set (this is what makes the T3D "fall off with large
//!   problems, while the performance on the DEC 8400 stays nearly at the
//!   same level", §7.3);
//! * [`perf::FleetCost`] — remote transfer rates per PE under the paper's
//!   four-processor contention regimes (shared bus on the 8400, node-pair
//!   link sharing on the T3D, no contention on the T3E).
//!
//! [`dist2d::run_benchmark`] reproduces the series of figs 15-17, and
//! [`scalability`] the §8 projection to a full 512-PE torus.
//!
//! ## Example
//!
//! ```rust
//! use gasnub_fft::{fft_forward, fft_inverse, Complex};
//!
//! let signal: Vec<Complex> = (0..8).map(|k| Complex::new(k as f64, 0.0)).collect();
//! let mut data = signal.clone();
//! fft_forward(&mut data);
//! fft_inverse(&mut data);
//! for (got, want) in data.iter().zip(&signal) {
//!     assert!((*got - *want).abs() < 1e-12);
//! }
//! ```

pub mod complex;
pub mod dist2d;
pub mod fft1d;
pub mod perf;
pub mod scalability;
pub mod stencil;

pub use complex::Complex;
pub use dist2d::{run_benchmark, Dist2dFft, FftRunResult, TransposeStyle};
pub use fft1d::{dft_naive, fft_forward, fft_inverse};
pub use perf::{ComputeModel, FleetCost};
pub use stencil::{run_stencil, Jacobi1d, StencilRunResult};
