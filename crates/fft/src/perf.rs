//! Performance models for the distributed FFT: compute rates coupled to the
//! measured memory characterization, and fleet-contention transfer costs.

use std::collections::HashMap;

use gasnub_machines::{Dec8400, Machine, MachineId, MeasureLimits, T3d, T3e};
use gasnub_memsim::WORD_BYTES;
use gasnub_shmem::{TransferCost, TransferKind};

use crate::fft1d::fft_flops;

/// Bytes per complex element (two 64-bit words).
pub const COMPLEX_BYTES: u64 = 16;

fn fast_machine(id: MachineId) -> Box<dyn Machine> {
    let limits = MeasureLimits {
        max_measure_words: 16 * 1024,
        max_prime_words: 2 * 1024 * 1024,
    };
    let mut m: Box<dyn Machine> = match id {
        MachineId::Dec8400 => Box::new(Dec8400::new()),
        MachineId::CrayT3d => Box::new(T3d::new()),
        MachineId::CrayT3e => Box::new(T3e::new()),
        MachineId::Custom => panic!("FFT performance models exist only for the paper's machines"),
    };
    m.set_limits(limits);
    m
}

/// Local 1D-FFT timing: the vendor-library flop rate bounded by the
/// measured local copy bandwidth at the row working set.
///
/// An n-point FFT performs `5 n log2 n` flops and streams roughly
/// `traffic_factor * 32 n log2 n` bytes through the memory system (each of
/// the `log2 n` stages reads and writes all `16 n` bytes; the factor
/// credits the library's cache blocking). The model takes the slower of the
/// flop pipe and the memory pipe — which is exactly why "the performance on
/// the T3D falls off with large problems, while the performance on the
/// DEC 8400 stays nearly at the same level" (§7.3: the 8400's L2/L3 hold
/// rows the T3D's 8 KB L1 cannot).
pub struct ComputeModel {
    machine_id: MachineId,
    clock_mhz: f64,
    peak_mflops: f64,
    traffic_factor: f64,
    machine: Box<dyn Machine>,
    copy_bw_cache: HashMap<u64, f64>,
}

impl std::fmt::Debug for ComputeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputeModel")
            .field("machine", &self.machine_id)
            .field("peak_mflops", &self.peak_mflops)
            .field("traffic_factor", &self.traffic_factor)
            .finish()
    }
}

impl ComputeModel {
    /// Builds the compute model for one machine with its built-in
    /// vendor-library rate.
    pub fn new(id: MachineId) -> Self {
        // Peak MFlop/s of the vendor's 1D-FFT library per PE (fig 16:
        // T3E "up to 200 MFlop/s per processor"; the 8400's sum over four
        // processors is "more than a factor 2.5 higher" than the T3D's).
        let (peak_mflops, traffic_factor) = match id {
            MachineId::Dec8400 => (135.0, 0.5),
            MachineId::CrayT3d => (55.0, 0.5),
            MachineId::CrayT3e => (230.0, 0.5),
            MachineId::Custom => {
                panic!("FFT performance models exist only for the paper's machines")
            }
        };
        let machine = fast_machine(id);
        ComputeModel {
            machine_id: id,
            clock_mhz: machine.clock_mhz(),
            peak_mflops,
            traffic_factor,
            machine,
            copy_bw_cache: HashMap::new(),
        }
    }

    /// The machine this model describes.
    pub fn machine_id(&self) -> MachineId {
        self.machine_id
    }

    /// The machine clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// Measured contiguous local copy bandwidth at working set `ws` bytes.
    fn copy_bw(&mut self, ws: u64) -> f64 {
        let machine = &mut self.machine;
        *self
            .copy_bw_cache
            .entry(ws)
            .or_insert_with(|| machine.local_copy(ws, 1, 1).mb_s)
    }

    /// Time of one n-point 1D-FFT in microseconds.
    pub fn row_fft_us(&mut self, n: u64) -> f64 {
        let flops = fft_flops(n);
        let flop_us = flops / self.peak_mflops; // MFlops / (MFlop/s) = µs
        let bytes = self.traffic_factor * 2.0 * (COMPLEX_BYTES * n) as f64 * (n as f64).log2();
        let ws = (COMPLEX_BYTES * n).next_power_of_two();
        let mem_us = bytes / self.copy_bw(ws); // bytes / (MB/s) = µs
        flop_us.max(mem_us)
    }

    /// Cycles of one n-point 1D-FFT.
    pub fn row_fft_cycles(&mut self, n: u64) -> f64 {
        self.row_fft_us(n) * self.clock_mhz
    }

    /// Effective MFlop/s of one n-point 1D-FFT under this model.
    pub fn row_fft_mflops(&mut self, n: u64) -> f64 {
        fft_flops(n) / self.row_fft_us(n)
    }
}

/// Transfer costs for a PE inside the paper's four-processor runs,
/// including the machine-specific contention regime:
///
/// * **DEC 8400** — all PEs share the bus and home memory: per-PE bandwidth
///   is additionally capped so the *aggregate* never exceeds the measured
///   contiguous remote rate (latency-bound strided pulls scale, bus-bound
///   contiguous pulls do not);
/// * **Cray T3D** — the two PEs of a node pair share one network access
///   (footnote 1), halving per-PE link bandwidth;
/// * **Cray T3E** — "On the T3E there is no contention" (§6.2).
pub struct FleetCost {
    machine: Box<dyn Machine>,
    npes: usize,
    overhead_per_call: f64,
    barrier: f64,
    /// Aggregate cap in MB/s (bus-bound machines); `None` when transfers
    /// scale per PE.
    aggregate_cap: Option<f64>,
    cycles_per_word: HashMap<(TransferKind, u64), f64>,
}

impl std::fmt::Debug for FleetCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetCost")
            .field("machine", &self.machine.id())
            .field("npes", &self.npes)
            .field("aggregate_cap", &self.aggregate_cap)
            .finish()
    }
}

impl FleetCost {
    /// Builds the fleet cost model for `npes` PEs of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `npes` is zero.
    pub fn new(id: MachineId, npes: usize) -> Self {
        assert!(npes > 0, "a fleet needs at least one PE");
        let limits = MeasureLimits {
            max_measure_words: 16 * 1024,
            max_prime_words: 256 * 1024,
        };
        let (mut machine, aggregate_cap): (Box<dyn Machine>, bool) = match id {
            MachineId::Dec8400 => (Box::new(Dec8400::new_contended()), true),
            MachineId::CrayT3d => (Box::new(T3d::new_with_paired_traffic()), false),
            MachineId::CrayT3e => (Box::new(T3e::new()), false),
            MachineId::Custom => {
                panic!("FFT performance models exist only for the paper's machines")
            }
        };
        machine.set_limits(limits);
        let cap = if aggregate_cap {
            // The bus-bound ceiling: the contiguous pull rate is as fast as
            // the shared path ever goes, regardless of how many PEs pull.
            machine.remote_fetch(8 << 20, 1).map(|m| m.mb_s)
        } else {
            None
        };
        let overheads = gasnub_shmem::cost::CallOverheads::for_machine(id);
        FleetCost {
            machine,
            npes,
            overhead_per_call: overheads.per_call_cycles,
            barrier: overheads.barrier_cycles,
            aggregate_cap: cap,
            cycles_per_word: HashMap::new(),
        }
    }

    /// The number of PEs this fleet prices.
    pub fn npes(&self) -> usize {
        self.npes
    }

    fn cycles_per_word(&mut self, kind: TransferKind, stride: u64) -> f64 {
        let key = (kind, stride);
        if let Some(&c) = self.cycles_per_word.get(&key) {
            return c;
        }
        let ws = 8 << 20;
        let m = match kind {
            TransferKind::Deposit => self
                .machine
                .remote_deposit(ws, stride)
                .or_else(|| self.machine.remote_fetch(ws, stride)),
            TransferKind::Fetch => self.machine.remote_fetch(ws, stride),
        }
        .expect("machine supports neither transfer direction");
        let clock = self.machine.clock_mhz();
        let mut per_word = WORD_BYTES as f64 * clock / m.mb_s.max(1e-9);
        if let Some(cap) = self.aggregate_cap {
            // Per-PE share of the shared-path ceiling.
            let cap_per_word = WORD_BYTES as f64 * clock / (cap / self.npes as f64);
            per_word = per_word.max(cap_per_word);
        }
        self.cycles_per_word.insert(key, per_word);
        per_word
    }
}

impl TransferCost for FleetCost {
    fn clock_mhz(&self) -> f64 {
        self.machine.clock_mhz()
    }

    fn call_cycles(&mut self, kind: TransferKind, nelems: u64, remote_stride: u64) -> f64 {
        if nelems == 0 {
            return 0.0;
        }
        self.overhead_per_call + self.cycles_per_word(kind, remote_stride.max(1)) * nelems as f64
    }

    fn barrier_cycles(&mut self) -> f64 {
        self.barrier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3d_compute_falls_off_at_large_n() {
        let mut m = ComputeModel::new(MachineId::CrayT3d);
        let small = m.row_fft_mflops(256);
        let large = m.row_fft_mflops(4096);
        assert!(small > 1.3 * large, "T3D must fall off: {small} vs {large}");
    }

    #[test]
    fn dec8400_compute_stays_flat() {
        // §7.3: "the performance on the DEC 8400 stays nearly at the same
        // level" thanks to the L2/L3 caches.
        let mut m = ComputeModel::new(MachineId::Dec8400);
        let small = m.row_fft_mflops(256);
        let large = m.row_fft_mflops(1024);
        assert!(
            (small - large).abs() / small < 0.25,
            "8400 flat: {small} vs {large}"
        );
    }

    #[test]
    fn compute_ordering_matches_fig16() {
        let rate = |id| ComputeModel::new(id).row_fft_mflops(256);
        let t3d = rate(MachineId::CrayT3d);
        let dec = rate(MachineId::Dec8400);
        let t3e = rate(MachineId::CrayT3e);
        assert!(dec > 2.0 * t3d, "8400 {dec} must be ~2.5x T3D {t3d}");
        assert!(t3e > dec, "T3E {t3e} must lead the 8400 {dec}");
        assert!(t3e <= 230.0 + 1.0);
    }

    #[test]
    fn fleet_cost_caps_8400_aggregate() {
        let mut single = FleetCost::new(MachineId::Dec8400, 1);
        let mut four = FleetCost::new(MachineId::Dec8400, 4);
        // Contiguous: bus bound, per-PE cost must grow ~4x with 4 PEs.
        let c1 = single.call_cycles(TransferKind::Fetch, 10_000, 1);
        let c4 = four.call_cycles(TransferKind::Fetch, 10_000, 1);
        assert!(
            c4 > 3.0 * c1,
            "contiguous pulls share the bus: {c1} vs {c4}"
        );
        // Strided: latency bound, nearly unaffected by fleet size.
        let s1 = single.call_cycles(TransferKind::Fetch, 10_000, 512);
        let s4 = four.call_cycles(TransferKind::Fetch, 10_000, 512);
        assert!(
            s4 < 1.5 * s1,
            "strided pulls are latency bound: {s1} vs {s4}"
        );
    }

    #[test]
    fn t3e_fleet_is_uncontended() {
        let mut single = FleetCost::new(MachineId::CrayT3e, 1);
        let mut four = FleetCost::new(MachineId::CrayT3e, 4);
        let c1 = single.call_cycles(TransferKind::Deposit, 10_000, 1);
        let c4 = four.call_cycles(TransferKind::Deposit, 10_000, 1);
        assert!((c1 - c4).abs() < 1e-9);
    }

    #[test]
    fn fleet_probes_are_cached() {
        let mut f = FleetCost::new(MachineId::CrayT3d, 4);
        let a = f.call_cycles(TransferKind::Deposit, 100, 512);
        let b = f.call_cycles(TransferKind::Deposit, 100, 512);
        assert_eq!(a, b);
    }
}
