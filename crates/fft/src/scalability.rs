//! The §8 scalability projection: "Based on our model of memory and
//! communication system performance we expect to report similar scalability
//! and a sustained aggregate performance for a 2D-FFT of about 20 GFlops,
//! once we run the code on a full-size machine" (512 PEs). The paper
//! reports 8.75 GFlops measured on a 512-PE T3D with "almost linear
//! scalability from 16 to 512 nodes".
//!
//! The projection is analytic (the paper's own §8 is a projection, not a
//! cycle simulation): per-PE compute from the [`ComputeModel`], per-PE
//! communication from the fleet transfer rates, and a torus bisection check
//! for the AAPC (all-to-all personalized communication) pattern of the
//! transposes.

use gasnub_interconnect::topology::Torus3d;
use gasnub_machines::MachineId;
use gasnub_shmem::{TransferCost, TransferKind};

use crate::dist2d::total_flops;
use crate::perf::{ComputeModel, FleetCost, COMPLEX_BYTES};

/// Result of projecting the 2D-FFT to `npes` processors.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityPoint {
    /// Machine projected.
    pub machine: MachineId,
    /// Problem size.
    pub n: u64,
    /// Processor count.
    pub npes: u64,
    /// Projected wall time in microseconds.
    pub total_us: f64,
    /// Per-PE application performance in MFlop/s.
    pub mflops_per_pe: f64,
    /// Aggregate performance in GFlop/s.
    pub gflops_total: f64,
    /// Whether the torus bisection (not per-PE injection) limited the
    /// transposes.
    pub bisection_limited: bool,
}

/// Raw link bandwidth in MB/s for the bisection estimate.
fn link_mb_s(machine: MachineId) -> f64 {
    match machine {
        // The 8400 has no torus; its "bisection" is the bus ceiling.
        MachineId::Dec8400 => 1600.0,
        MachineId::CrayT3d => 300.0,
        MachineId::CrayT3e => 1200.0,
        MachineId::Custom => panic!("scalability projections exist only for the paper's machines"),
    }
}

/// A roughly cubic torus holding `npes` nodes.
fn torus_for(npes: u64) -> Torus3d {
    let mut dims = [1u32; 3];
    let mut left = npes;
    let mut axis = 0;
    while left > 1 {
        dims[axis % 3] *= 2;
        left /= 2;
        axis += 1;
    }
    Torus3d::new(dims).expect("dimensions are non-zero")
}

/// Projects the 2D-FFT of size `n` onto `npes` PEs of `machine`.
///
/// # Panics
///
/// Panics unless `npes` is a power of two dividing `n`.
pub fn project(machine: MachineId, n: u64, npes: u64) -> ScalabilityPoint {
    assert!(npes.is_power_of_two(), "npes must be a power of two");
    assert!(n.is_multiple_of(npes), "npes must divide n");
    let rows = n / npes;

    let mut compute = ComputeModel::new(machine);
    let compute_us = 2.0 * rows as f64 * compute.row_fft_us(n);

    // Per-PE injection time for both transposes.
    let mut fleet = FleetCost::new(machine, npes as usize);
    let clock = fleet.clock_mhz();
    let elems_per_dst = rows * rows; // block of rows x rows complex elements
    let words_per_call = 2 * rows;
    let calls = 2 * (npes - 1) * rows; // 2 transposes, (P-1) partners, one call per row
    let kind = match machine {
        MachineId::Dec8400 => TransferKind::Fetch,
        _ => TransferKind::Deposit,
    };
    let cycles_per_call = fleet.call_cycles(kind, words_per_call, 2 * n);
    let comm_us = calls as f64 * cycles_per_call / clock;
    let _ = elems_per_dst;

    // Bisection check: each transpose moves half the array across the
    // bisection of the torus.
    let torus = torus_for(npes);
    let bisection_mb_s = torus.bisection_links() as f64 * link_mb_s(machine);
    let bisection_bytes = 2.0 * (n * n) as f64 * COMPLEX_BYTES as f64 / 2.0;
    let bisection_us = bisection_bytes / bisection_mb_s;

    let transfer_us = comm_us.max(bisection_us);
    let total_us = compute_us + transfer_us;
    let flops = total_flops(n);
    ScalabilityPoint {
        machine,
        n,
        npes,
        total_us,
        mflops_per_pe: flops / npes as f64 / total_us,
        gflops_total: flops / total_us / 1000.0,
        bisection_limited: bisection_us > comm_us,
    }
}

/// Parallel efficiency between two processor counts at fixed problem size:
/// `speedup / (p2/p1)`.
pub fn efficiency(machine: MachineId, n: u64, p1: u64, p2: u64) -> f64 {
    let a = project(machine, n, p1);
    let b = project(machine, n, p2);
    (a.total_us / b.total_us) / (p2 as f64 / p1 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3d_512_pe_aggregate_near_paper() {
        // §8: 8.75 GFlops measured on 512 PEs (≈ 17-20 MFlop/s per PE).
        let p = project(MachineId::CrayT3d, 2048, 512);
        assert!(
            p.gflops_total > 4.0 && p.gflops_total < 14.0,
            "T3D @512: {} GFlops",
            p.gflops_total
        );
        assert!(
            p.mflops_per_pe > 8.0 && p.mflops_per_pe < 30.0,
            "{} MF/PE",
            p.mflops_per_pe
        );
    }

    #[test]
    fn t3d_scales_almost_linearly_16_to_512() {
        // §8: "The code shows almost linear scalability from 16 to 512
        // nodes."
        let eff = efficiency(MachineId::CrayT3d, 2048, 16, 512);
        assert!(eff > 0.5, "efficiency {eff}");
    }

    #[test]
    fn t3e_projects_about_2x_the_t3d_aggregate() {
        // §8 projects ~20 GFlops for the T3E vs 8.75 measured on the T3D.
        let t3d = project(MachineId::CrayT3d, 2048, 512);
        let t3e = project(MachineId::CrayT3e, 2048, 512);
        let ratio = t3e.gflops_total / t3d.gflops_total;
        assert!(
            ratio > 1.5 && ratio < 5.0,
            "T3E/T3D aggregate ratio {ratio}"
        );
    }

    #[test]
    fn bisection_eventually_binds_transposes() {
        // §5.2: remote copy "is expected to scale up to a 512 processor
        // torus, before bisection limits become visible in transposes".
        let small = project(MachineId::CrayT3e, 4096, 16);
        assert!(!small.bisection_limited, "16 PEs must be injection limited");
        let big = project(MachineId::CrayT3e, 4096, 4096);
        // With thousands of PEs each injecting at full rate, the bisection
        // finally matters.
        assert!(
            big.bisection_limited || big.gflops_total > small.gflops_total,
            "scaling sanity: {big:?}"
        );
    }

    #[test]
    fn analytic_bisection_estimate_agrees_with_the_link_level_simulation() {
        // Cross-validate the projection's bisection term against the
        // mechanism-level AAPC simulation of gasnub-interconnect::netsim.
        use gasnub_interconnect::link::LinkConfig;
        use gasnub_interconnect::netsim::simulate_aapc;

        let torus = torus_for(64);
        let link = LinkConfig {
            cycles_per_byte: 0.25,
            per_hop_cycles: 3.0,
        };
        let n: u64 = 1024;
        let npes: u64 = 64;
        let bytes_per_pair = (n * n) as f64 * 16.0 / (npes * npes) as f64;
        let sim = simulate_aapc(&torus, &link, bytes_per_pair as u64);

        // The analytic lower bound used by `project` (per transpose).
        let bisection_mb_s = torus.bisection_links() as f64 * 1200.0;
        let analytic_us = (n * n) as f64 * 16.0 / 2.0 / bisection_mb_s;
        let sim_us = sim.makespan_cycles / 300.0; // cycles at 300 MHz

        // The analytic term counts both directions of the crossing traffic
        // against single-direction link capacity (deliberately conservative
        // for a projection), so the mechanism-level simulation may come in
        // up to ~2x faster; congestion can also make it slower. Same order
        // of magnitude either way.
        let ratio = sim_us / analytic_us;
        assert!(
            ratio > 0.4 && ratio < 10.0,
            "sim {sim_us} vs bound {analytic_us} (ratio {ratio})"
        );
    }

    #[test]
    fn torus_construction_is_cubic_ish() {
        let t = torus_for(512);
        assert_eq!(t.nodes(), 512);
        let dims = t.dims();
        assert!(
            dims.iter().all(|&d| d == 8),
            "512 nodes should form 8x8x8, got {dims:?}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_npes_panics() {
        let _ = project(MachineId::CrayT3d, 1024, 3);
    }
}
