//! Radix-2 iterative complex FFT.
//!
//! The local 1D-FFT primitive the distributed kernel calls per row/column
//! ("we can rely on the best available library routine for a local 1D-FFT",
//! §7.1 — here the library routine is this module). In-place, decimation in
//! time, with a bit-reversal permutation and per-stage twiddles.

use crate::complex::Complex;

/// Reverses the lowest `bits` bits of `x`.
fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// In-place bit-reversal permutation.
fn permute(data: &mut [Complex]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let theta = sign * 2.0 * std::f64::consts::PI / len as f64;
        let w_len = Complex::from_polar(theta);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * w_len;
            }
        }
        len *= 2;
    }
}

/// Forward FFT, in place.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_forward(data: &mut [Complex]) {
    fft_in_place(data, false);
}

/// Inverse FFT, in place (normalized by 1/n).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_inverse(data: &mut [Complex]) {
    fft_in_place(data, true);
    let k = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(k);
    }
}

/// Naive O(n^2) DFT — the verification oracle for the fast transform.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex::from_polar(theta);
            }
            acc
        })
        .collect()
}

/// Number of floating point operations the standard count assigns one
/// n-point complex FFT: `5 n log2 n` (the rate metric of figs 15-16).
pub fn fft_flops(n: u64) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_memsim::rng::Rng;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| Complex::new(2.0 * rng.gen_f64() - 1.0, 2.0 * rng.gen_f64() - 1.0))
            .collect()
    }

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 128] {
            let signal = random_signal(n, n as u64);
            let expect = dft_naive(&signal);
            let mut got = signal.clone();
            fft_forward(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!(close(*g, *e, 1e-9 * n as f64), "n={n}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let signal = random_signal(256, 7);
        let mut data = signal.clone();
        fft_forward(&mut data);
        fft_inverse(&mut data);
        for (got, want) in data.iter().zip(&signal) {
            assert!(close(*got, *want, 1e-12), "{got} vs {want}");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft_forward(&mut data);
        for z in &data {
            assert!(close(*z, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut data = vec![Complex::ONE; 8];
        fft_forward(&mut data);
        assert!(close(data[0], Complex::new(8.0, 0.0), 1e-12));
        for z in &data[1..] {
            assert!(close(*z, Complex::ZERO, 1e-12));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal = random_signal(128, 99);
        let time_energy: f64 = signal.iter().map(|z| z.norm_sq()).sum();
        let mut freq = signal;
        fft_forward(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sq()).sum::<f64>() / 128.0;
        assert!(
            (time_energy - freq_energy).abs() < 1e-9,
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn linearity() {
        let a = random_signal(64, 1);
        let b = random_signal(64, 2);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let (mut fa, mut fb, mut fsum) = (a, b, sum);
        fft_forward(&mut fa);
        fft_forward(&mut fb);
        fft_forward(&mut fsum);
        for ((x, y), s) in fa.iter().zip(&fb).zip(&fsum) {
            assert!(close(*x + *y, *s, 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft_forward(&mut data);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(fft_flops(256), 5.0 * 256.0 * 8.0);
    }
}
