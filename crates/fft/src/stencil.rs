//! A halo-exchange stencil kernel: the communication contrast to the
//! 2D-FFT's all-to-all transposes.
//!
//! The paper's machines were bought for "vectorizable memory-intensive
//! workloads" (§2); besides spectral methods those are dominated by
//! nearest-neighbor grid sweeps. A block-distributed Jacobi iteration
//! exchanges only its *boundary* with two neighbors per step — O(1) words
//! per PE instead of the transpose's O(n²/P). On a machine whose remote
//! bandwidth is an order of magnitude below local bandwidth (the 8400),
//! this is exactly the communication pattern that still scales.
//!
//! The kernel is real: it relaxes `u[i] = (u[i-1] + u[i+1]) / 2` over a
//! distributed 1D grid with fixed boundary values, which converges to the
//! linear interpolant — a verifiable result.

use gasnub_machines::MachineId;
use gasnub_shmem::{Pe, ShmemCtx, TransferCost};

use crate::perf::FleetCost;

/// A block-distributed 1D Jacobi solver with halo exchange.
///
/// Each PE owns `points_per_pe` interior points plus two halo cells. The
/// global boundary is clamped to `left` and `right`.
#[derive(Debug)]
pub struct Jacobi1d<C: TransferCost> {
    ctx: ShmemCtx<C>,
    points_per_pe: usize,
    left: f64,
    right: f64,
    steps: u64,
}

/// Local layout: [halo_left, interior…, halo_right, scratch…].
impl<C: TransferCost> Jacobi1d<C> {
    /// Creates the solver over `npes` PEs with `points_per_pe` interior
    /// points each, boundary values `left` / `right`, interior zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `npes` or `points_per_pe` is zero.
    pub fn new(npes: usize, points_per_pe: usize, left: f64, right: f64, cost: C) -> Self {
        assert!(points_per_pe > 0, "each PE needs at least one point");
        // interior + 2 halos, twice (current + next).
        let words = 2 * (points_per_pe + 2);
        let mut ctx = ShmemCtx::new(npes, words, cost);
        // Clamp the global boundary halos.
        ctx.heap_mut().local_mut(Pe(0))[0] = left;
        let last = npes - 1;
        ctx.heap_mut().local_mut(Pe(last))[points_per_pe + 1] = right;
        Jacobi1d {
            ctx,
            points_per_pe,
            left,
            right,
            steps: 0,
        }
    }

    /// Number of PEs.
    pub fn npes(&self) -> usize {
        self.ctx.npes()
    }

    /// Relaxation steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The timed context (clock inspection).
    pub fn ctx(&self) -> &ShmemCtx<C> {
        &self.ctx
    }

    /// Value of global point `i` (0-based over all interior points).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn value(&self, i: usize) -> f64 {
        let pe = i / self.points_per_pe;
        let local = i % self.points_per_pe;
        self.ctx.heap().local(Pe(pe))[1 + local]
    }

    /// One Jacobi sweep: halo exchange (each PE deposits its boundary into
    /// the neighbors' halo cells), barrier, then the local relaxation,
    /// charged at `cycles_per_point`.
    pub fn step(&mut self, cycles_per_point: f64) {
        let p = self.ctx.npes();
        let n = self.points_per_pe;
        // Halo exchange by deposit: PE k pushes its last interior point into
        // k+1's left halo and its first interior point into k-1's right halo.
        for k in 0..p {
            if k + 1 < p {
                self.ctx.put(Pe(k), Pe(k + 1), 0, n, 1);
            }
            if k > 0 {
                self.ctx.put(Pe(k), Pe(k - 1), n + 1, 1, 1);
            }
        }
        self.ctx.barrier();

        // Local relaxation into the scratch half, then copy back.
        for k in 0..p {
            let mem = self.ctx.heap_mut().local_mut(Pe(k));
            for i in 1..=n {
                mem[n + 2 + i] = 0.5 * (mem[i - 1] + mem[i + 1]);
            }
            for i in 1..=n {
                mem[i] = mem[n + 2 + i];
            }
            self.ctx.advance_local(Pe(k), cycles_per_point * n as f64);
        }
        // Re-clamp the global boundary.
        self.ctx.heap_mut().local_mut(Pe(0))[0] = self.left;
        self.ctx.heap_mut().local_mut(Pe(p - 1))[self.points_per_pe + 1] = self.right;
        self.ctx.barrier();
        self.steps += 1;
    }

    /// Maximum deviation from the converged solution (the linear
    /// interpolant between the boundary values).
    pub fn error(&self) -> f64 {
        let total = self.npes() * self.points_per_pe;
        let mut worst: f64 = 0.0;
        for i in 0..total {
            let x = (i + 1) as f64 / (total + 1) as f64;
            let exact = self.left + (self.right - self.left) * x;
            worst = worst.max((self.value(i) - exact).abs());
        }
        worst
    }
}

/// Per-machine result of the stencil benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilRunResult {
    /// Which machine ran.
    pub machine: MachineId,
    /// Interior points per PE.
    pub points_per_pe: usize,
    /// Relaxation steps taken.
    pub steps: u64,
    /// Total wall time (max PE clock) in microseconds.
    pub total_us: f64,
    /// Fraction of wall time spent in communication (max PE).
    pub comm_fraction: f64,
}

/// Runs `steps` Jacobi sweeps of `points_per_pe` points per PE on 4 PEs of
/// `machine`, timing with the fleet cost model. The relaxation is charged
/// at two flops per point at the machine's modelled local rate.
pub fn run_stencil(machine: MachineId, points_per_pe: usize, steps: u64) -> StencilRunResult {
    let cost = FleetCost::new(machine, 4);
    let clock = cost.clock_mhz();
    // ~2 flops + 2 loads + 1 store per point: charge 4 cycles/point as a
    // simple vector-loop rate (the stencil is compute-trivial; the point of
    // the benchmark is the communication fraction).
    let cycles_per_point = 4.0;
    let mut solver = Jacobi1d::new(4, points_per_pe, 0.0, 1.0, cost);
    for _ in 0..steps {
        solver.step(cycles_per_point);
    }
    let total = (0..4)
        .map(|p| solver.ctx().clock_cycles(Pe(p)))
        .fold(0.0, f64::max);
    let comm = (0..4)
        .map(|p| solver.ctx().comm_cycles(Pe(p)))
        .fold(0.0, f64::max);
    StencilRunResult {
        machine,
        points_per_pe,
        steps,
        total_us: total / clock,
        comm_fraction: comm / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_shmem::UniformCost;

    #[test]
    fn converges_to_the_linear_interpolant() {
        let mut s = Jacobi1d::new(4, 4, 0.0, 1.0, UniformCost::new());
        for _ in 0..2000 {
            s.step(1.0);
        }
        assert!(s.error() < 1e-6, "error after 2000 sweeps: {}", s.error());
        assert_eq!(s.steps(), 2000);
    }

    #[test]
    fn halo_values_propagate_across_pes() {
        let mut s = Jacobi1d::new(2, 2, 0.0, 8.0, UniformCost::new());
        // After one step only the cells adjacent to the boundary move.
        s.step(1.0);
        assert_eq!(s.value(3), 4.0, "right-most interior sees the boundary");
        assert_eq!(s.value(0), 0.0);
        // After two steps the influence has crossed the PE boundary.
        s.step(1.0);
        assert!(s.value(2) > 0.0);
    }

    #[test]
    fn single_pe_works() {
        let mut s = Jacobi1d::new(1, 8, 1.0, 1.0, UniformCost::new());
        for _ in 0..600 {
            s.step(1.0);
        }
        // Jacobi's spectral radius on 8 points is cos(pi/9) ≈ 0.94, so 600
        // sweeps shrink the initial error below 1e-9.
        assert!(
            s.error() < 1e-9,
            "constant boundary must converge, error {}",
            s.error()
        );
    }

    #[test]
    fn communication_fraction_shrinks_with_problem_size() {
        // Halo exchange is O(1) per PE: doubling the interior halves the
        // comm share. (This is the opposite of the transpose, whose data
        // volume grows with the problem.)
        let small = run_stencil(MachineId::CrayT3e, 1 << 10, 10);
        let large = run_stencil(MachineId::CrayT3e, 1 << 14, 10);
        assert!(
            large.comm_fraction < small.comm_fraction,
            "comm share must shrink: {} -> {}",
            small.comm_fraction,
            large.comm_fraction
        );
    }

    #[test]
    fn stencils_scale_even_on_the_8400() {
        // The 8400's weak remote bandwidth hurts transposes, but a stencil's
        // boundary exchange is tiny: its comm share stays modest.
        let r = run_stencil(MachineId::Dec8400, 1 << 14, 10);
        assert!(
            r.comm_fraction < 0.4,
            "a large stencil must be compute dominated: {}",
            r.comm_fraction
        );
    }
}
