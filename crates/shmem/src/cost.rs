//! Transfer cost models.
//!
//! [`MeasuredCost`] prices every shmem call from the *measured* machine
//! characterization — the paper's central proposal: "These micro-benchmarks
//! allow the compiler writer, the compiler or the runtime-system to pick the
//! least expensive way to move data in the system" (§2.1).

use std::collections::HashMap;

use gasnub_machines::{Machine, MachineId, MachineSpec, MeasureLimits, SpawnEngine};
use gasnub_memsim::{SimError, WORD_BYTES};

/// Which direction a transfer moves relative to the initiating PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// The initiator pushes data into a remote PE's memory (remote stores).
    Deposit,
    /// The initiator pulls data from a remote PE's memory (remote loads).
    Fetch,
}

/// Prices shmem operations in CPU cycles of the initiating PE.
pub trait TransferCost {
    /// The machine clock, for converting cycles to time.
    fn clock_mhz(&self) -> f64;

    /// Cycles one call moving `nelems` 64-bit words costs, where
    /// `remote_stride` is the stride (in words) on the remote side.
    fn call_cycles(&mut self, kind: TransferKind, nelems: u64, remote_stride: u64) -> f64;

    /// Cycles a barrier costs each participating PE.
    fn barrier_cycles(&mut self) -> f64;
}

/// A trivial cost model for tests: fixed per-call and per-word costs.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformCost {
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Cycles per transferred word.
    pub per_word_cycles: f64,
    /// Fixed cycles per call.
    pub per_call_cycles: f64,
    /// Cycles per barrier.
    pub barrier: f64,
}

impl UniformCost {
    /// A convenient 100 MHz model: 1 cycle/word, 10 cycles/call.
    pub fn new() -> Self {
        UniformCost {
            clock_mhz: 100.0,
            per_word_cycles: 1.0,
            per_call_cycles: 10.0,
            barrier: 5.0,
        }
    }
}

impl Default for UniformCost {
    fn default() -> Self {
        Self::new()
    }
}

impl TransferCost for UniformCost {
    fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    fn call_cycles(&mut self, _kind: TransferKind, nelems: u64, _remote_stride: u64) -> f64 {
        self.per_call_cycles + self.per_word_cycles * nelems as f64
    }

    fn barrier_cycles(&mut self) -> f64 {
        self.barrier
    }
}

/// Fixed per-machine software overheads not covered by the bandwidth
/// characterization (call startup, barrier implementation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallOverheads {
    /// Cycles per shmem call (library entry, argument checks, E-register or
    /// NI setup).
    pub per_call_cycles: f64,
    /// Cycles per barrier.
    pub barrier_cycles: f64,
}

impl CallOverheads {
    /// Built-in overheads per machine. The T3E's large per-call cost
    /// reflects §7.3: "a mismatch between the required memory access
    /// patterns for the transpose … and the simple capabilities of the
    /// shmem_iput primitive" — every row of a block needs its own call.
    pub fn for_machine(id: MachineId) -> Self {
        match id {
            // Software synchronization over the coherent bus; no special
            // transfer call (the consumer's copy loop just runs).
            MachineId::Dec8400 => CallOverheads {
                per_call_cycles: 60.0,
                barrier_cycles: 1500.0,
            },
            // Dedicated hardware barrier network; deposits are captured
            // straight from the write-back queue but switching partners
            // costs ("per message overhead for switching partners").
            MachineId::CrayT3d => CallOverheads {
                per_call_cycles: 100.0,
                barrier_cycles: 150.0,
            },
            // First-generation shmem_iput/iget library on the T3E.
            MachineId::CrayT3e => CallOverheads {
                per_call_cycles: 400.0,
                barrier_cycles: 200.0,
            },
            // No measured library for user-defined machines: a neutral,
            // modest software overhead.
            MachineId::Custom => CallOverheads {
                per_call_cycles: 200.0,
                barrier_cycles: 500.0,
            },
        }
    }
}

/// Prices calls from the measured remote bandwidth of a [`Machine`].
///
/// Per (kind, stride) the model measures the machine's steady-state remote
/// bandwidth once (1 MB working set) and caches the resulting cycles/word;
/// calls then cost `per_call + words * cycles_per_word`. Machines without a
/// deposit path (the DEC 8400) price deposits as fetches: the data is pulled
/// by the consumer after synchronization.
pub struct MeasuredCost {
    machine: Box<dyn Machine>,
    overheads: CallOverheads,
    cycles_per_word: HashMap<(TransferKind, u64), f64>,
}

impl std::fmt::Debug for MeasuredCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasuredCost")
            .field("machine", &self.machine.id())
            .field("overheads", &self.overheads)
            .field("cached_strides", &self.cycles_per_word.len())
            .finish()
    }
}

/// Working set used for the one-off bandwidth measurements.
const PROBE_WS_BYTES: u64 = 1024 * 1024;

impl MeasuredCost {
    /// Builds a measured cost model around `machine` with its built-in
    /// overhead table.
    ///
    /// A machine supporting neither remote transfer direction prices every
    /// call at infinite cycles; use [`MeasuredCost::try_new`] to reject such
    /// machines up front instead.
    pub fn new(mut machine: Box<dyn Machine>) -> Self {
        // Probing needs steady state, not the full default sweep budget.
        machine.set_limits(MeasureLimits {
            max_measure_words: 16 * 1024,
            max_prime_words: 256 * 1024,
        });
        let overheads = CallOverheads::for_machine(machine.id());
        MeasuredCost {
            machine,
            overheads,
            cycles_per_word: HashMap::new(),
        }
    }

    /// Builds a measured cost model by spawning a fresh engine from `spec`
    /// — the convenient path now that machine descriptions are separate
    /// from their mutable runtime state.
    ///
    /// # Errors
    ///
    /// Returns any [`SimError`] from building the spec, and
    /// [`SimError::Unsupported`] when the machine supports neither remote
    /// transfer direction (same check as [`MeasuredCost::try_new`]).
    pub fn from_spec(spec: &MachineSpec) -> Result<Self, SimError> {
        Self::try_new(Box::new(spec.spawn_engine()?))
    }

    /// Builds a measured cost model, verifying the machine can actually
    /// move data remotely.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] when `machine` supports neither
    /// remote deposit nor remote fetch (its shmem calls could never
    /// complete).
    pub fn try_new(machine: Box<dyn Machine>) -> Result<Self, SimError> {
        let mut cost = Self::new(machine);
        if cost.machine.remote_deposit(PROBE_WS_BYTES, 1).is_none()
            && cost.machine.remote_fetch(PROBE_WS_BYTES, 1).is_none()
        {
            return Err(SimError::unsupported(format!(
                "{} supports neither remote deposit nor remote fetch",
                cost.machine.name()
            )));
        }
        Ok(cost)
    }

    /// The machine being priced.
    pub fn machine_id(&self) -> MachineId {
        self.machine.id()
    }

    /// The fixed overhead table in use.
    pub fn overheads(&self) -> CallOverheads {
        self.overheads
    }

    fn cycles_per_word(&mut self, kind: TransferKind, stride: u64) -> f64 {
        let key = (kind, stride);
        if let Some(&c) = self.cycles_per_word.get(&key) {
            return c;
        }
        let m = match kind {
            TransferKind::Deposit => self
                .machine
                .remote_deposit(PROBE_WS_BYTES, stride)
                .or_else(|| self.machine.remote_fetch(PROBE_WS_BYTES, stride)),
            TransferKind::Fetch => self.machine.remote_fetch(PROBE_WS_BYTES, stride),
        };
        // An unsupported transfer direction is priced as infinitely
        // expensive rather than a panic: the strategy chooser then simply
        // never picks it.
        let per_word = match m {
            Some(m) if m.mb_s > 0.0 => WORD_BYTES as f64 * self.machine.clock_mhz() / m.mb_s,
            _ => f64::INFINITY,
        };
        self.cycles_per_word.insert(key, per_word);
        per_word
    }
}

impl TransferCost for MeasuredCost {
    fn clock_mhz(&self) -> f64 {
        self.machine.clock_mhz()
    }

    fn call_cycles(&mut self, kind: TransferKind, nelems: u64, remote_stride: u64) -> f64 {
        if nelems == 0 {
            return 0.0;
        }
        let per_word = self.cycles_per_word(kind, remote_stride.max(1));
        self.overheads.per_call_cycles + per_word * nelems as f64
    }

    fn barrier_cycles(&mut self) -> f64 {
        self.overheads.barrier_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_machines::{Dec8400, T3d, T3e};

    #[test]
    fn uniform_cost_is_linear() {
        let mut c = UniformCost::new();
        assert_eq!(c.call_cycles(TransferKind::Deposit, 100, 1), 110.0);
        assert_eq!(c.barrier_cycles(), 5.0);
    }

    #[test]
    fn measured_cost_caches_probes() {
        let mut c = MeasuredCost::new(Box::new(T3e::new()));
        let first = c.call_cycles(TransferKind::Deposit, 1000, 1);
        let second = c.call_cycles(TransferKind::Deposit, 1000, 1);
        assert_eq!(first, second);
        assert_eq!(c.cycles_per_word.len(), 1);
    }

    #[test]
    fn t3e_contiguous_call_tracks_350_mb_s() {
        let mut c = MeasuredCost::new(Box::new(T3e::new()));
        let cycles = c.call_cycles(TransferKind::Deposit, 100_000, 1);
        let mb_s = 100_000.0 * 8.0 * c.clock_mhz() / cycles;
        assert!((mb_s - 350.0).abs() / 350.0 < 0.2, "got {mb_s}");
    }

    #[test]
    fn t3d_deposit_cheaper_than_fetch() {
        let mut c = MeasuredCost::new(Box::new(T3d::new()));
        let dep = c.call_cycles(TransferKind::Deposit, 10_000, 1);
        let fetch = c.call_cycles(TransferKind::Fetch, 10_000, 1);
        assert!(dep * 2.0 < fetch, "deposit {dep} vs fetch {fetch}");
    }

    #[test]
    fn dec8400_deposit_falls_back_to_pull() {
        let mut c = MeasuredCost::new(Box::new(Dec8400::new()));
        let dep = c.call_cycles(TransferKind::Deposit, 10_000, 1);
        let fetch = c.call_cycles(TransferKind::Fetch, 10_000, 1);
        let ratio = dep / fetch;
        assert!(
            (ratio - 1.0).abs() < 0.2,
            "8400 deposit ≈ fetch, got ratio {ratio}"
        );
    }

    #[test]
    fn per_call_overheads_match_machine() {
        assert!(
            CallOverheads::for_machine(MachineId::CrayT3e).per_call_cycles
                > CallOverheads::for_machine(MachineId::CrayT3d).per_call_cycles
        );
        assert!(
            CallOverheads::for_machine(MachineId::Dec8400).barrier_cycles
                > CallOverheads::for_machine(MachineId::CrayT3d).barrier_cycles
        );
    }

    #[test]
    fn zero_element_calls_are_free() {
        let mut c = MeasuredCost::new(Box::new(T3e::new()));
        assert_eq!(c.call_cycles(TransferKind::Fetch, 0, 1), 0.0);
    }

    #[test]
    fn from_spec_prices_like_a_hand_built_machine() {
        let mut from_spec = MeasuredCost::from_spec(&MachineSpec::t3d()).unwrap();
        let mut direct = MeasuredCost::new(Box::new(T3d::new()));
        assert_eq!(
            from_spec.call_cycles(TransferKind::Deposit, 1000, 1),
            direct.call_cycles(TransferKind::Deposit, 1000, 1)
        );
        // A local-only spec is rejected just like a local-only machine.
        let local_only = MachineSpec::custom(
            "local-only".to_string(),
            gasnub_memsim::config::presets::tiny_test_node(),
        );
        assert!(MeasuredCost::from_spec(&local_only).is_err());
    }

    #[test]
    fn try_new_validates_remote_support() {
        assert!(MeasuredCost::try_new(Box::new(T3d::new())).is_ok());
        // A local-only machine is rejected up front...
        let node = gasnub_machines::CustomMachineBuilder::new(
            "local-only",
            gasnub_memsim::config::presets::tiny_test_node(),
        )
        .build()
        .unwrap();
        let err = MeasuredCost::try_new(Box::new(node)).unwrap_err();
        assert!(err.to_string().contains("neither"), "{err}");
        // ...while the panic-free pricing path charges it infinite cycles.
        let node = gasnub_machines::CustomMachineBuilder::new(
            "local-only",
            gasnub_memsim::config::presets::tiny_test_node(),
        )
        .build()
        .unwrap();
        let mut c = MeasuredCost::new(Box::new(node));
        assert!(c.call_cycles(TransferKind::Fetch, 10, 1).is_infinite());
    }
}
