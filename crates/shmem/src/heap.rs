//! The symmetric heap: one equally-sized `f64` region per PE.
//!
//! Cray's shmem library addresses remote data through *symmetric* objects:
//! the same object exists at the same offset on every PE. The heap models
//! exactly that — word offsets are valid on every PE.

/// Identifies a processing element within a [`SymmetricHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pe(pub usize);

impl std::fmt::Display for Pe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// Per-PE symmetric storage of 64-bit floating point words.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricHeap {
    words_per_pe: usize,
    data: Vec<Vec<f64>>,
}

impl SymmetricHeap {
    /// Creates a heap of `npes` PEs with `words_per_pe` words each, zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `npes` is zero.
    pub fn new(npes: usize, words_per_pe: usize) -> Self {
        assert!(npes > 0, "a heap needs at least one PE");
        SymmetricHeap {
            words_per_pe,
            data: vec![vec![0.0; words_per_pe]; npes],
        }
    }

    /// Number of PEs.
    pub fn npes(&self) -> usize {
        self.data.len()
    }

    /// Words available per PE.
    pub fn words_per_pe(&self) -> usize {
        self.words_per_pe
    }

    /// Read-only view of one PE's local memory.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn local(&self, pe: Pe) -> &[f64] {
        &self.data[pe.0]
    }

    /// Mutable view of one PE's local memory.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn local_mut(&mut self, pe: Pe) -> &mut [f64] {
        &mut self.data[pe.0]
    }

    /// Copies `nblocks` blocks of `block_words` contiguous words between
    /// PEs, where block `k` starts at `src_off + k*src_stride` on `src` and
    /// `dst_off + k*dst_stride` on `dst`. A complex-number transfer is the
    /// `block_words == 2` case — "the transpose of a distributed, two
    /// dimensional array of complex numbers" (§7.3).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range, or a stride is smaller than the
    /// block (blocks would overlap).
    #[allow(clippy::too_many_arguments)] // mirrors the shmem C API
    pub fn copy_blocks(
        &mut self,
        src: Pe,
        src_off: usize,
        src_stride: usize,
        dst: Pe,
        dst_off: usize,
        dst_stride: usize,
        block_words: usize,
        nblocks: usize,
    ) {
        assert!(block_words > 0, "blocks must be non-empty");
        assert!(
            src_stride >= block_words && dst_stride >= block_words,
            "strides must be at least the block size"
        );
        for w in 0..block_words {
            self.copy_strided(
                src,
                src_off + w,
                src_stride,
                dst,
                dst_off + w,
                dst_stride,
                nblocks,
            );
        }
    }

    /// Copies `n` words between PEs with independent strides: word `k` moves
    /// from `src_off + k*src_stride` on `src` to `dst_off + k*dst_stride`
    /// on `dst`. This is the data movement of `shmem_iput`/`shmem_iget`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[allow(clippy::too_many_arguments)] // mirrors the shmem C API
    pub fn copy_strided(
        &mut self,
        src: Pe,
        src_off: usize,
        src_stride: usize,
        dst: Pe,
        dst_off: usize,
        dst_stride: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        if src == dst {
            // Local rearrangement; gather then scatter to allow overlap.
            let gathered: Vec<f64> = (0..n)
                .map(|k| self.data[src.0][src_off + k * src_stride])
                .collect();
            for (k, v) in gathered.into_iter().enumerate() {
                self.data[dst.0][dst_off + k * dst_stride] = v;
            }
            return;
        }
        let (a, b) = if src.0 < dst.0 {
            let (lo, hi) = self.data.split_at_mut(dst.0);
            (&lo[src.0], &mut hi[0])
        } else {
            let (lo, hi) = self.data.split_at_mut(src.0);
            (&hi[0] as &Vec<f64>, &mut lo[dst.0])
        };
        for k in 0..n {
            b[dst_off + k * dst_stride] = a[src_off + k * src_stride];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_starts_zeroed() {
        let h = SymmetricHeap::new(2, 8);
        assert_eq!(h.npes(), 2);
        assert!(h.local(Pe(0)).iter().all(|&x| x == 0.0));
        assert_eq!(h.words_per_pe(), 8);
    }

    #[test]
    fn contiguous_copy_between_pes() {
        let mut h = SymmetricHeap::new(2, 8);
        h.local_mut(Pe(0))[..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        h.copy_strided(Pe(0), 0, 1, Pe(1), 2, 1, 4);
        assert_eq!(&h.local(Pe(1))[2..6], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn strided_scatter_is_a_transpose_column() {
        let mut h = SymmetricHeap::new(2, 16);
        h.local_mut(Pe(0))[..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // Scatter into a 4x4 row-major array's first column.
        h.copy_strided(Pe(0), 0, 1, Pe(1), 0, 4, 4);
        let d = h.local(Pe(1));
        assert_eq!((d[0], d[4], d[8], d[12]), (1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn strided_gather_from_remote() {
        let mut h = SymmetricHeap::new(2, 16);
        for (i, v) in h.local_mut(Pe(1)).iter_mut().enumerate() {
            *v = i as f64;
        }
        h.copy_strided(Pe(1), 1, 4, Pe(0), 0, 1, 4);
        assert_eq!(&h.local(Pe(0))[..4], &[1.0, 5.0, 9.0, 13.0]);
    }

    #[test]
    fn local_rearrangement_works() {
        let mut h = SymmetricHeap::new(1, 8);
        h.local_mut(Pe(0))
            .copy_from_slice(&[0.0, 1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0]);
        h.copy_strided(Pe(0), 0, 1, Pe(0), 4, 1, 4);
        assert_eq!(&h.local(Pe(0))[4..], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reverse_direction_split_borrow() {
        let mut h = SymmetricHeap::new(3, 4);
        h.local_mut(Pe(2))[0] = 9.0;
        h.copy_strided(Pe(2), 0, 1, Pe(0), 3, 1, 1);
        assert_eq!(h.local(Pe(0))[3], 9.0);
    }

    #[test]
    fn zero_length_copy_is_a_noop() {
        let mut h = SymmetricHeap::new(2, 4);
        h.copy_strided(Pe(0), 0, 1, Pe(1), 0, 1, 0);
        assert!(h.local(Pe(1)).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn block_copy_preserves_pairs() {
        let mut h = SymmetricHeap::new(2, 32);
        // Two complex numbers (1+2i, 3+4i) stored interleaved.
        h.local_mut(Pe(0))[..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // Scatter them 8 words apart on PE 1.
        h.copy_blocks(Pe(0), 0, 2, Pe(1), 0, 8, 2, 2);
        let d = h.local(Pe(1));
        assert_eq!((d[0], d[1]), (1.0, 2.0));
        assert_eq!((d[8], d[9]), (3.0, 4.0));
        assert_eq!(d[2], 0.0, "nothing between the blocks");
    }

    #[test]
    #[should_panic(expected = "at least the block size")]
    fn overlapping_blocks_panic() {
        let mut h = SymmetricHeap::new(2, 32);
        h.copy_blocks(Pe(0), 0, 1, Pe(1), 0, 8, 2, 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut h = SymmetricHeap::new(2, 4);
        h.copy_strided(Pe(0), 0, 1, Pe(1), 2, 1, 4);
    }
}
