//! The timed shmem context: data movement plus per-PE simulated clocks.

use crate::cost::{TransferCost, TransferKind};
use crate::heap::{Pe, SymmetricHeap};

/// A global-address-space execution context.
///
/// Owns the [`SymmetricHeap`] and one simulated clock per PE. Transfer calls
/// move real data *and* advance the initiating PE's clock by the priced
/// cost; [`ShmemCtx::barrier`] synchronizes all clocks to the maximum (plus
/// the barrier cost) — the paper's separation of data transfer from
/// synchronization ("data messages are sent only when the receiver has
/// signaled its willingness to accept them", §2.2).
#[derive(Debug)]
pub struct ShmemCtx<C: TransferCost> {
    heap: SymmetricHeap,
    cost: C,
    clocks: Vec<f64>,
    comm_cycles: Vec<f64>,
    barriers: u64,
}

impl<C: TransferCost> ShmemCtx<C> {
    /// Creates a context of `npes` PEs with `words_per_pe` symmetric words.
    ///
    /// # Panics
    ///
    /// Panics if `npes` is zero.
    pub fn new(npes: usize, words_per_pe: usize, cost: C) -> Self {
        ShmemCtx {
            heap: SymmetricHeap::new(npes, words_per_pe),
            cost,
            clocks: vec![0.0; npes],
            comm_cycles: vec![0.0; npes],
            barriers: 0,
        }
    }

    /// Number of PEs.
    pub fn npes(&self) -> usize {
        self.heap.npes()
    }

    /// The heap (read access).
    pub fn heap(&self) -> &SymmetricHeap {
        &self.heap
    }

    /// The heap (mutable access for local initialization).
    pub fn heap_mut(&mut self) -> &mut SymmetricHeap {
        &mut self.heap
    }

    /// The cost model.
    pub fn cost_mut(&mut self) -> &mut C {
        &mut self.cost
    }

    /// Simulated clock of `pe` in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn clock_cycles(&self, pe: Pe) -> f64 {
        self.clocks[pe.0]
    }

    /// Cycles `pe` has spent inside communication calls.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn comm_cycles(&self, pe: Pe) -> f64 {
        self.comm_cycles[pe.0]
    }

    /// Simulated elapsed time of `pe` in microseconds.
    pub fn elapsed_us(&self, pe: Pe) -> f64 {
        self.clocks[pe.0] / self.cost.clock_mhz()
    }

    /// Barriers executed so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Charges local (non-communication) work to `pe`'s clock — how the
    /// application kernel accounts its compute phases.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range or `cycles` is negative.
    pub fn advance_local(&mut self, pe: Pe, cycles: f64) {
        assert!(cycles >= 0.0, "cannot rewind a PE clock");
        self.clocks[pe.0] += cycles;
    }

    /// Contiguous deposit: `from` pushes `n` words from its own
    /// `src_off` into `dst`'s `dst_off` (shmem_put).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range PEs or offsets.
    pub fn put(&mut self, from: Pe, dst: Pe, dst_off: usize, src_off: usize, n: usize) {
        self.iput(from, dst, dst_off, 1, src_off, 1, n);
    }

    /// Strided deposit (shmem_iput): word `k` moves from
    /// `src_off + k*src_stride` on `from` to `dst_off + k*dst_stride` on
    /// `dst`. The initiating PE pays the cost; the target PE does not
    /// participate (direct deposit).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range PEs, offsets or zero strides.
    #[allow(clippy::too_many_arguments)] // mirrors the shmem C API
    pub fn iput(
        &mut self,
        from: Pe,
        dst: Pe,
        dst_off: usize,
        dst_stride: usize,
        src_off: usize,
        src_stride: usize,
        n: usize,
    ) {
        assert!(dst_stride > 0 && src_stride > 0, "strides must be non-zero");
        self.heap
            .copy_strided(from, src_off, src_stride, dst, dst_off, dst_stride, n);
        let cycles = self
            .cost
            .call_cycles(TransferKind::Deposit, n as u64, dst_stride as u64);
        self.clocks[from.0] += cycles;
        self.comm_cycles[from.0] += cycles;
    }

    /// Contiguous fetch: `on` pulls `n` words from `src`'s `src_off` into
    /// its own `dst_off` (shmem_get).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range PEs or offsets.
    pub fn get(&mut self, on: Pe, src: Pe, dst_off: usize, src_off: usize, n: usize) {
        self.iget(on, src, dst_off, 1, src_off, 1, n);
    }

    /// Strided fetch (shmem_iget): the initiating PE pulls; the remote
    /// stride prices the call.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range PEs, offsets or zero strides.
    #[allow(clippy::too_many_arguments)] // mirrors the shmem C API
    pub fn iget(
        &mut self,
        on: Pe,
        src: Pe,
        dst_off: usize,
        dst_stride: usize,
        src_off: usize,
        src_stride: usize,
        n: usize,
    ) {
        assert!(dst_stride > 0 && src_stride > 0, "strides must be non-zero");
        self.heap
            .copy_strided(src, src_off, src_stride, on, dst_off, dst_stride, n);
        let cycles = self
            .cost
            .call_cycles(TransferKind::Fetch, n as u64, src_stride as u64);
        self.clocks[on.0] += cycles;
        self.comm_cycles[on.0] += cycles;
    }

    /// Block-strided deposit: `nblocks` runs of `block_words` contiguous
    /// words, scattered with `dst_stride` on the target. The whole call is
    /// priced as one strided transfer of `nblocks * block_words` words at
    /// the destination's *element* stride — the word-granular pricing the
    /// paper blames for the T3E transpose shortfall (§7.3).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range PEs/offsets or strides smaller than the block.
    #[allow(clippy::too_many_arguments)]
    pub fn iput_blocks(
        &mut self,
        from: Pe,
        dst: Pe,
        dst_off: usize,
        dst_stride: usize,
        src_off: usize,
        src_stride: usize,
        block_words: usize,
        nblocks: usize,
    ) {
        self.heap.copy_blocks(
            from,
            src_off,
            src_stride,
            dst,
            dst_off,
            dst_stride,
            block_words,
            nblocks,
        );
        let words = (nblocks * block_words) as u64;
        let cycles = self
            .cost
            .call_cycles(TransferKind::Deposit, words, dst_stride as u64);
        self.clocks[from.0] += cycles;
        self.comm_cycles[from.0] += cycles;
    }

    /// Block-strided fetch: the dual of [`ShmemCtx::iput_blocks`], priced at
    /// the *source's* stride.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range PEs/offsets or strides smaller than the block.
    #[allow(clippy::too_many_arguments)]
    pub fn iget_blocks(
        &mut self,
        on: Pe,
        src: Pe,
        dst_off: usize,
        dst_stride: usize,
        src_off: usize,
        src_stride: usize,
        block_words: usize,
        nblocks: usize,
    ) {
        self.heap.copy_blocks(
            src,
            src_off,
            src_stride,
            on,
            dst_off,
            dst_stride,
            block_words,
            nblocks,
        );
        let words = (nblocks * block_words) as u64;
        let cycles = self
            .cost
            .call_cycles(TransferKind::Fetch, words, src_stride as u64);
        self.clocks[on.0] += cycles;
        self.comm_cycles[on.0] += cycles;
    }

    /// Synchronizes every PE: all clocks advance to the global maximum plus
    /// the barrier cost.
    pub fn barrier(&mut self) {
        self.barriers += 1;
        let max = self.clocks.iter().cloned().fold(0.0, f64::max);
        let cost = self.cost.barrier_cycles();
        for c in &mut self.clocks {
            *c = max + cost;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UniformCost;

    fn ctx() -> ShmemCtx<UniformCost> {
        ShmemCtx::new(4, 64, UniformCost::new())
    }

    #[test]
    fn put_moves_data_and_charges_sender() {
        let mut c = ctx();
        c.heap_mut().local_mut(Pe(0))[..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        c.put(Pe(0), Pe(1), 8, 0, 4);
        assert_eq!(&c.heap().local(Pe(1))[8..12], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.clock_cycles(Pe(0)), 14.0); // 10 per call + 4 words
        assert_eq!(
            c.clock_cycles(Pe(1)),
            0.0,
            "the receiver does not participate"
        );
        assert_eq!(c.comm_cycles(Pe(0)), 14.0);
    }

    #[test]
    fn get_charges_the_puller() {
        let mut c = ctx();
        c.heap_mut().local_mut(Pe(2))[0] = 7.0;
        c.get(Pe(1), Pe(2), 0, 0, 1);
        assert_eq!(c.heap().local(Pe(1))[0], 7.0);
        assert!(c.clock_cycles(Pe(1)) > 0.0);
        assert_eq!(c.clock_cycles(Pe(2)), 0.0);
    }

    #[test]
    fn iput_scatters_with_stride() {
        let mut c = ctx();
        c.heap_mut().local_mut(Pe(0))[..3].copy_from_slice(&[1.0, 2.0, 3.0]);
        c.iput(Pe(0), Pe(3), 0, 4, 0, 1, 3);
        let d = c.heap().local(Pe(3));
        assert_eq!((d[0], d[4], d[8]), (1.0, 2.0, 3.0));
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut c = ctx();
        c.advance_local(Pe(0), 100.0);
        c.advance_local(Pe(1), 50.0);
        c.barrier();
        for pe in 0..4 {
            assert_eq!(c.clock_cycles(Pe(pe)), 105.0); // max + 5 barrier
        }
        assert_eq!(c.barriers(), 1);
    }

    #[test]
    fn elapsed_time_uses_the_clock_rate() {
        let mut c = ctx();
        c.advance_local(Pe(0), 200.0);
        assert!((c.elapsed_us(Pe(0)) - 2.0).abs() < 1e-12); // 200 cy @ 100 MHz
    }

    #[test]
    fn comm_and_compute_are_accounted_separately() {
        let mut c = ctx();
        c.advance_local(Pe(0), 100.0);
        c.put(Pe(0), Pe(1), 0, 0, 4);
        assert_eq!(c.comm_cycles(Pe(0)), 14.0);
        assert_eq!(c.clock_cycles(Pe(0)), 114.0);
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn negative_local_advance_panics() {
        ctx().advance_local(Pe(0), -1.0);
    }
}
