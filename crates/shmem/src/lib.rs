#![warn(missing_docs)]

//! # gasnub-shmem
//!
//! A global-address-space layer over the simulated machines: the paper's
//! **direct deposit/fetch model** (§2.2). "In the deposit model — or its
//! dual counterpart, the fetch model — only one of the two node processors
//! (sender, receiver) actively participates in a data transfer. For
//! deposits, the sender 'drops' the data into the address space of the
//! receiver, without participation of the receiver process."
//!
//! The layer is *functional*: [`heap::SymmetricHeap`] holds real `f64` data
//! per PE and `put`/`get`/`iput`/`iget` actually move it (the 2D-FFT kernel
//! in `gasnub-fft` computes verifiable numerical results through this API).
//! It is also *timed*: every call advances the initiating PE's simulated
//! clock by a cost obtained from a [`cost::TransferCost`] model.
//! [`cost::MeasuredCost`] derives those costs from the machine models by
//! measurement — which is precisely how the paper proposes a compiler
//! runtime should pick transfer costs ("realistic models based on
//! measurement", §9).
//!
//! ## Example
//!
//! ```rust
//! use gasnub_shmem::{Pe, ShmemCtx, UniformCost};
//!
//! let mut ctx = ShmemCtx::new(2, 64, UniformCost::new());
//! ctx.heap_mut().local_mut(Pe(0))[0] = 42.0;
//! // Direct deposit: PE 0 drops the word into PE 1's space; only the
//! // sender's clock advances.
//! ctx.put(Pe(0), Pe(1), 0, 0, 1);
//! assert_eq!(ctx.heap().local(Pe(1))[0], 42.0);
//! assert!(ctx.clock_cycles(Pe(0)) > 0.0);
//! assert_eq!(ctx.clock_cycles(Pe(1)), 0.0);
//! ```

pub mod collectives;
pub mod cost;
pub mod ctx;
pub mod heap;
pub mod redistribute;

pub use collectives::{alltoall, broadcast, CollectiveStyle};
pub use cost::{MeasuredCost, TransferCost, TransferKind, UniformCost};
pub use ctx::ShmemCtx;
pub use heap::{Pe, SymmetricHeap};
pub use redistribute::{block_to_cyclic, cyclic_to_block, RedistStyle};
