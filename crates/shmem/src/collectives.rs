//! Collective operations built on the one-sided primitives.
//!
//! The paper's motivating communication step is the **AAPC** ("all-to-all
//! personalized communication") of an array redistribution: "For many
//! distributions, every processor must exchange data with every other
//! processor. These 'all-to-all personalized communication' (AAPC)
//! operations have received considerable interest by researchers" (§6).
//!
//! These collectives move real data through the [`ShmemCtx`] and charge the
//! participating PEs' clocks through its cost model, so an application (or
//! a test) can compare deposit- and fetch-based implementations the same
//! way the paper compares transpose implementations.

use crate::cost::TransferCost;
use crate::ctx::ShmemCtx;
use crate::heap::Pe;

/// Which one-sided primitive a collective uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveStyle {
    /// Senders push (deposit model).
    Push,
    /// Receivers pull (fetch model).
    Pull,
}

/// Broadcasts `n` words from `root`'s `src_off` to `dst_off` on every PE
/// (including the root's own `dst_off`).
///
/// Push style: the root puts to every peer (root's clock pays all
/// transfers). Pull style: every peer gets from the root (cost spreads).
/// A barrier closes the operation either way.
///
/// # Panics
///
/// Panics on out-of-range PEs or offsets.
pub fn broadcast<C: TransferCost>(
    ctx: &mut ShmemCtx<C>,
    style: CollectiveStyle,
    root: Pe,
    dst_off: usize,
    src_off: usize,
    n: usize,
) {
    let npes = ctx.npes();
    match style {
        CollectiveStyle::Push => {
            for pe in 0..npes {
                if pe != root.0 {
                    ctx.put(root, Pe(pe), dst_off, src_off, n);
                }
            }
        }
        CollectiveStyle::Pull => {
            for pe in 0..npes {
                if pe != root.0 {
                    ctx.get(Pe(pe), root, dst_off, src_off, n);
                }
            }
        }
    }
    // The root's own copy is a local move.
    ctx.heap_mut()
        .copy_strided(root, src_off, 1, root, dst_off, 1, n);
    ctx.barrier();
}

/// All-to-all personalized communication: every PE sends a distinct block
/// of `block_words` to every PE. PE `p`'s block for PE `q` starts at
/// `src_off + q * block_words` and lands at `dst_off + p * block_words` on
/// `q` — exactly the block exchange of a distributed transpose.
///
/// # Panics
///
/// Panics on out-of-range PEs or offsets.
pub fn alltoall<C: TransferCost>(
    ctx: &mut ShmemCtx<C>,
    style: CollectiveStyle,
    dst_off: usize,
    src_off: usize,
    block_words: usize,
) {
    let npes = ctx.npes();
    for me in 0..npes {
        for other in 0..npes {
            let (src, dst) = (src_off + other * block_words, dst_off + me * block_words);
            if other == me {
                ctx.heap_mut().copy_strided(
                    Pe(me),
                    src,
                    1,
                    Pe(me),
                    dst_off + me * block_words,
                    1,
                    block_words,
                );
                continue;
            }
            match style {
                CollectiveStyle::Push => {
                    // I push my block for `other` into their slot `me`.
                    ctx.put(Pe(me), Pe(other), dst, src, block_words);
                }
                CollectiveStyle::Pull => {
                    // I pull `other`'s block for me into my slot `other`.
                    ctx.get(
                        Pe(me),
                        Pe(other),
                        dst_off + other * block_words,
                        src_off + me * block_words,
                        block_words,
                    );
                }
            }
        }
    }
    ctx.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UniformCost;

    fn ctx(npes: usize, words: usize) -> ShmemCtx<UniformCost> {
        ShmemCtx::new(npes, words, UniformCost::new())
    }

    #[test]
    fn broadcast_push_reaches_every_pe() {
        let mut c = ctx(4, 16);
        c.heap_mut().local_mut(Pe(1))[..3].copy_from_slice(&[7.0, 8.0, 9.0]);
        broadcast(&mut c, CollectiveStyle::Push, Pe(1), 8, 0, 3);
        for pe in 0..4 {
            assert_eq!(&c.heap().local(Pe(pe))[8..11], &[7.0, 8.0, 9.0], "PE{pe}");
        }
        // Root paid for the pushes.
        assert!(c.comm_cycles(Pe(1)) > 0.0);
        assert_eq!(c.comm_cycles(Pe(0)), 0.0);
    }

    #[test]
    fn broadcast_pull_spreads_the_cost() {
        let mut c = ctx(4, 16);
        c.heap_mut().local_mut(Pe(0))[0] = 5.0;
        broadcast(&mut c, CollectiveStyle::Pull, Pe(0), 4, 0, 1);
        for pe in 0..4 {
            assert_eq!(c.heap().local(Pe(pe))[4], 5.0);
        }
        assert_eq!(c.comm_cycles(Pe(0)), 0.0, "the root does not pull");
        assert!(c.comm_cycles(Pe(3)) > 0.0);
    }

    fn fill_alltoall_source(c: &mut ShmemCtx<UniformCost>, block: usize) {
        let npes = c.npes();
        for p in 0..npes {
            for q in 0..npes {
                for w in 0..block {
                    // Value encodes (sender, receiver, word).
                    c.heap_mut().local_mut(Pe(p))[q * block + w] = (p * 100 + q * 10 + w) as f64;
                }
            }
        }
    }

    fn check_alltoall(c: &ShmemCtx<UniformCost>, dst_off: usize, block: usize) {
        let npes = c.npes();
        for q in 0..npes {
            for p in 0..npes {
                for w in 0..block {
                    let got = c.heap().local(Pe(q))[dst_off + p * block + w];
                    let want = (p * 100 + q * 10 + w) as f64;
                    assert_eq!(got, want, "receiver {q}, sender {p}, word {w}");
                }
            }
        }
    }

    #[test]
    fn alltoall_push_exchanges_every_block() {
        let mut c = ctx(4, 64);
        fill_alltoall_source(&mut c, 2);
        alltoall(&mut c, CollectiveStyle::Push, 16, 0, 2);
        check_alltoall(&c, 16, 2);
        assert_eq!(c.barriers(), 1);
    }

    #[test]
    fn alltoall_pull_matches_push_result() {
        let mut push = ctx(3, 64);
        fill_alltoall_source(&mut push, 4);
        alltoall(&mut push, CollectiveStyle::Push, 32, 0, 4);

        let mut pull = ctx(3, 64);
        fill_alltoall_source(&mut pull, 4);
        alltoall(&mut pull, CollectiveStyle::Pull, 32, 0, 4);

        for pe in 0..3 {
            assert_eq!(push.heap().local(Pe(pe)), pull.heap().local(Pe(pe)));
        }
    }

    #[test]
    fn alltoall_charges_every_pe_symmetrically_under_uniform_cost() {
        let mut c = ctx(4, 64);
        fill_alltoall_source(&mut c, 2);
        alltoall(&mut c, CollectiveStyle::Push, 16, 0, 2);
        // After the closing barrier every clock is synchronized.
        let c0 = c.clock_cycles(Pe(0));
        for pe in 1..4 {
            assert_eq!(c.clock_cycles(Pe(pe)), c0);
        }
    }
}
