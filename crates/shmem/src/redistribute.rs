//! HPF array redistribution: BLOCK ↔ CYCLIC.
//!
//! The paper's compiler back end "provides a general way of generating
//! communication code for all array assignment statements and array
//! distributions, not just for transposes of two dimensional, block
//! distributed data" (§2.1). This module implements the other canonical
//! redistribution: a 1D array moving between HPF's `BLOCK` layout (PE `p`
//! owns one contiguous chunk) and `CYCLIC` layout (element `i` lives on PE
//! `i mod P`).
//!
//! The interesting property: in **block → cyclic**, each (sender, receiver)
//! pair exchanges elements that are *strided on the block side and
//! contiguous on the cyclic side* — so deposits see a contiguous remote
//! pattern and fetches a strided one. **Cyclic → block** is the mirror
//! image. The best transfer style therefore flips with the direction,
//! which is exactly the kind of decision the paper's measured cost model
//! exists to make.

use crate::cost::TransferCost;
use crate::ctx::ShmemCtx;
use crate::heap::Pe;

/// Which one-sided primitive performs the redistribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedistStyle {
    /// Owners of the source layout push into the target layout.
    Push,
    /// Owners of the target layout pull from the source layout.
    Pull,
}

/// Redistributes `n` words from BLOCK layout at `src_off` to CYCLIC layout
/// at `dst_off`.
///
/// BLOCK: element `i` lives on PE `i / (n/P)` at `src_off + i mod (n/P)`.
/// CYCLIC: element `i` lives on PE `i mod P` at `dst_off + i / P`.
///
/// # Panics
///
/// Panics unless `n` is divisible by `npes * npes` (keeps every
/// (sender, receiver) chunk equal-sized) or if offsets are out of range.
pub fn block_to_cyclic<C: TransferCost>(
    ctx: &mut ShmemCtx<C>,
    style: RedistStyle,
    dst_off: usize,
    src_off: usize,
    n: usize,
) {
    let p = ctx.npes();
    assert!(
        n.is_multiple_of(p * p),
        "n ({n}) must be divisible by npes^2 ({})",
        p * p
    );
    let block = n / p;
    for owner in 0..p {
        for target in 0..p {
            // Elements i in owner's block with i ≡ target (mod P):
            // the first is the smallest i >= owner*block with i % p == target.
            let base = owner * block;
            let first = base + ((target + p - base % p) % p);
            let count = block / p;
            let src_local = src_off + (first - base); // then stride p
            let dst_local = dst_off + first / p; // then stride 1 (consecutive)
            match style {
                RedistStyle::Push => {
                    ctx.iput(Pe(owner), Pe(target), dst_local, 1, src_local, p, count);
                }
                RedistStyle::Pull => {
                    ctx.iget(Pe(target), Pe(owner), dst_local, 1, src_local, p, count);
                }
            }
        }
    }
    ctx.barrier();
}

/// Redistributes `n` words from CYCLIC layout at `src_off` back to BLOCK
/// layout at `dst_off` (the inverse of [`block_to_cyclic`]).
///
/// # Panics
///
/// Panics unless `n` is divisible by `npes * npes` or offsets are out of
/// range.
pub fn cyclic_to_block<C: TransferCost>(
    ctx: &mut ShmemCtx<C>,
    style: RedistStyle,
    dst_off: usize,
    src_off: usize,
    n: usize,
) {
    let p = ctx.npes();
    assert!(
        n.is_multiple_of(p * p),
        "n ({n}) must be divisible by npes^2 ({})",
        p * p
    );
    let block = n / p;
    for owner in 0..p {
        // `owner` holds the cyclic elements ≡ owner (mod P).
        for target in 0..p {
            // Elements going to block owner `target`: i in target's block
            // with i ≡ owner (mod P).
            let base = target * block;
            let first = base + ((owner + p - base % p) % p);
            let count = block / p;
            let src_local = src_off + first / p; // contiguous on the cyclic side
            let dst_local = dst_off + (first - base); // stride p on the block side
            match style {
                RedistStyle::Push => {
                    ctx.iput(Pe(owner), Pe(target), dst_local, p, src_local, 1, count);
                }
                RedistStyle::Pull => {
                    ctx.iget(Pe(target), Pe(owner), dst_local, p, src_local, 1, count);
                }
            }
        }
    }
    ctx.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UniformCost;

    fn ctx(npes: usize, words: usize) -> ShmemCtx<UniformCost> {
        ShmemCtx::new(npes, words, UniformCost::new())
    }

    /// Fill the BLOCK layout with the global element index as value.
    fn fill_block(c: &mut ShmemCtx<UniformCost>, src_off: usize, n: usize) {
        let p = c.npes();
        let block = n / p;
        for i in 0..n {
            c.heap_mut().local_mut(Pe(i / block))[src_off + i % block] = i as f64;
        }
    }

    fn check_cyclic(c: &ShmemCtx<UniformCost>, dst_off: usize, n: usize) {
        let p = c.npes();
        for i in 0..n {
            let got = c.heap().local(Pe(i % p))[dst_off + i / p];
            assert_eq!(got, i as f64, "cyclic element {i}");
        }
    }

    fn check_block(c: &ShmemCtx<UniformCost>, dst_off: usize, n: usize) {
        let p = c.npes();
        let block = n / p;
        for i in 0..n {
            let got = c.heap().local(Pe(i / block))[dst_off + i % block];
            assert_eq!(got, i as f64, "block element {i}");
        }
    }

    #[test]
    fn block_to_cyclic_push_is_correct() {
        let mut c = ctx(4, 64);
        fill_block(&mut c, 0, 32);
        block_to_cyclic(&mut c, RedistStyle::Push, 32, 0, 32);
        check_cyclic(&c, 32, 32);
    }

    #[test]
    fn block_to_cyclic_pull_matches_push() {
        let mut a = ctx(4, 64);
        fill_block(&mut a, 0, 32);
        block_to_cyclic(&mut a, RedistStyle::Push, 32, 0, 32);
        let mut b = ctx(4, 64);
        fill_block(&mut b, 0, 32);
        block_to_cyclic(&mut b, RedistStyle::Pull, 32, 0, 32);
        for pe in 0..4 {
            assert_eq!(a.heap().local(Pe(pe))[32..], b.heap().local(Pe(pe))[32..]);
        }
    }

    #[test]
    fn round_trip_restores_block_layout() {
        let mut c = ctx(2, 96);
        fill_block(&mut c, 0, 32);
        block_to_cyclic(&mut c, RedistStyle::Push, 32, 0, 32);
        cyclic_to_block(&mut c, RedistStyle::Push, 64, 32, 32);
        check_block(&c, 64, 32);
    }

    #[test]
    fn cyclic_to_block_pull_is_correct() {
        let mut c = ctx(4, 96);
        fill_block(&mut c, 0, 32);
        block_to_cyclic(&mut c, RedistStyle::Push, 32, 0, 32);
        cyclic_to_block(&mut c, RedistStyle::Pull, 64, 32, 32);
        check_block(&c, 64, 32);
    }

    #[test]
    fn remote_strides_flip_with_direction() {
        // block->cyclic deposits land contiguously (remote stride 1);
        // cyclic->block deposits scatter (remote stride P). With a uniform
        // cost model the clocks are equal, but the *call pattern* is what a
        // measured model would price differently — assert the data movement
        // is stride-correct by checking both directions round trip at a
        // larger size.
        let mut c = ctx(4, 512);
        fill_block(&mut c, 0, 128);
        block_to_cyclic(&mut c, RedistStyle::Push, 128, 0, 128);
        check_cyclic(&c, 128, 128);
        cyclic_to_block(&mut c, RedistStyle::Pull, 256, 128, 128);
        check_block(&c, 256, 128);
    }

    #[test]
    #[should_panic(expected = "divisible by npes^2")]
    fn indivisible_size_panics() {
        let mut c = ctx(4, 64);
        block_to_cyclic(&mut c, RedistStyle::Push, 32, 0, 20);
    }
}
