//! A minimal work-distributing thread pool for embarrassingly parallel
//! grids.
//!
//! The sweep layer needs exactly one primitive: run `n` independent jobs on
//! `threads` workers and return the results *in job order*, regardless of
//! which worker finished which job when. Workers claim jobs dynamically
//! from a shared atomic counter (the work-stealing degenerate case for
//! independent equal-rights jobs), so a slow cell — a 128 MB working set —
//! does not leave the other workers idle. Built on `std::thread::scope`;
//! the repository carries no external dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use gasnub_machines::CancelToken;

/// Runs `f(0..n)` across `threads` workers, returning results indexed by
/// job number — byte-for-byte the same `Vec` a sequential loop would build,
/// as long as `f` itself is deterministic per index.
///
/// `threads <= 1` (or `n <= 1`) runs inline on the caller's thread with no
/// pool at all.
///
/// # Panics
///
/// Propagates a panic from `f` after the remaining workers drain.
pub fn run_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_chunked(threads, n, auto_chunk(threads, n), f)
}

/// The chunk size [`run_indexed`] claims per atomic increment: small enough
/// that every worker sees at least ~32 claims (dynamic load balancing keeps
/// working when job costs vary), large enough that for huge `n` the
/// per-claim overhead — one `fetch_add` plus one channel send — amortizes
/// over the chunk instead of dominating micro-jobs.
fn auto_chunk(threads: usize, n: usize) -> usize {
    (n / (threads.max(1) * 32)).max(1)
}

/// Like [`run_indexed`], but workers claim `chunk` consecutive indices per
/// atomic increment and send one batched result per chunk. `chunk = 1` is
/// exactly the classic per-item pool; results are identical for any chunk
/// size (only scheduling granularity changes).
///
/// # Panics
///
/// Propagates a panic from `f` after the remaining workers drain.
pub fn run_indexed_chunked<T, F>(threads: usize, n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = chunk.max(1);
    let next = AtomicUsize::new(0);
    let workers = threads.min(n.div_ceil(chunk));
    let (tx, rx) = mpsc::channel::<(usize, Vec<T>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let batch: Vec<T> = (start..end).map(f).collect();
                // The receiver outlives the scope; a send only fails if the
                // parent panicked, in which case unwinding is underway.
                if tx.send((start, batch)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (start, batch) in rx {
        for (offset, value) in batch.into_iter().enumerate() {
            slots[start + offset] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job sends exactly one result"))
        .collect()
}

/// Like [`run_indexed`], but workers stop *claiming* new jobs once `token`
/// is cancelled (by flag or deadline). Jobs already claimed run to
/// completion — the pool never abandons work mid-flight — and every
/// unclaimed job's slot comes back as `None`, so the caller can count
/// exactly what was skipped.
///
/// The resilient sweep runner uses this to enforce its run-wide wall-clock
/// budget and to drain the pool cleanly after a fatal error (cancel the
/// token, let in-flight cells finish, return).
pub fn run_indexed_while<T, F>(
    threads: usize,
    n: usize,
    token: &CancelToken,
    f: F,
) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n)
            .map(|i| (!token.is_cancelled()).then(|| f(i)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                if token.is_cancelled() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, value) in rx {
        slots[i] = Some(value);
    }
    slots
}

/// The number of worker threads a `--threads 0`-style "auto" request maps
/// to: the machine's available parallelism, or 1 if unknown.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_indexed(threads, 100, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_jobs_and_zero_threads_are_fine() {
        assert!(run_indexed(4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_job_costs_still_cover_every_index() {
        // Jobs with wildly different costs: dynamic claiming must still
        // produce one result per index.
        let out = run_indexed(3, 37, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i + 1
        });
        assert_eq!(out.len(), 37);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn auto_threads_is_at_least_one() {
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn chunked_claiming_matches_per_item_claiming() {
        let expected: Vec<usize> = (0..101).map(|i| i * 7).collect();
        for threads in [2, 4] {
            for chunk in [1, 2, 13, 101, 1000] {
                let out = run_indexed_chunked(threads, 101, chunk, |i| i * 7);
                assert_eq!(out, expected, "threads={threads} chunk={chunk}");
            }
        }
        // chunk 0 is clamped to 1 rather than spinning forever.
        assert_eq!(run_indexed_chunked(2, 5, 0, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn auto_chunk_balances_small_grids_and_amortizes_large_ones() {
        // A 25-cell sweep on 4 threads must keep per-cell claiming (cells
        // are expensive; balance matters).
        assert_eq!(auto_chunk(4, 25), 1);
        // A million micro-jobs must not pay a send per job.
        assert!(auto_chunk(4, 1_000_000) >= 1_000);
    }

    #[test]
    fn run_indexed_while_with_a_live_token_matches_run_indexed() {
        let token = CancelToken::new();
        for threads in [1, 4] {
            let out = run_indexed_while(threads, 20, &token, |i| i * 3);
            assert_eq!(
                out,
                (0..20).map(|i| Some(i * 3)).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_indexed_while_skips_everything_once_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let out = run_indexed_while(threads, 10, &token, |i| i);
            assert!(out.iter().all(Option::is_none), "threads={threads}");
        }
    }

    #[test]
    fn run_indexed_while_mid_run_cancel_reports_skipped_slots() {
        let token = CancelToken::new();
        let out = run_indexed_while(2, 50, &token, |i| {
            if i == 5 {
                token.cancel();
            }
            i
        });
        // The cancelling job itself completes; later claims stop.
        assert_eq!(out[5], Some(5));
        assert!(out.iter().any(Option::is_none));
    }
}
