#![warn(missing_docs)]

//! # gasnub-core
//!
//! The paper's primary contribution, as a library: an **extended
//! copy-transfer model** for characterizing memory system performance of
//! parallel systems with a global address space and non-uniform bandwidth.
//!
//! The copy-transfer model (Stricker & Gross, ISCA '95, extended in the
//! HPCA-3 paper reproduced here) characterizes a memory system by the
//! *bandwidth* of basic copy transfers, parameterized by
//!
//! * the **access pattern** — the stride between the 64-bit words touched —
//!   capturing spatial locality, and
//! * the **working set** — the bytes touched — capturing temporal locality
//!   (the HPCA-3 extension: "we extend the copy transfer model by a working
//!   set parameter", §4.1),
//!
//! for local accesses, remote accesses (communication), and both transfer
//! styles (fetch/deposit).
//!
//! The crate provides:
//!
//! * [`mod@bench`] — the three micro-benchmarks of §4.2 (Load-Sum, Load/Store
//!   copy, Store-Constant) dispatched onto any
//!   [`gasnub_machines::Machine`];
//! * [`sweep`] — the stride x working-set sweep driver with the paper's
//!   grid axes;
//! * [`mod@pool`] — a dependency-free work-distributing thread pool;
//!   [`bench::sweep_surface_par`] and
//!   [`resilient::ResilientSweep::run_parallel`] use it to spread grid
//!   cells across workers, one fresh engine (spawned from a
//!   [`gasnub_machines::MachineSpec`]) per cell, with results gathered in
//!   grid order so parallel sweeps are bit-identical to sequential ones;
//! * [`surface`] — the 2D bandwidth surface (figs 1-8) with CSV and
//!   terminal rendering;
//! * [`counters`] — per-cell counter reports (cache misses, bus
//!   transactions, NI packets, MESI transitions) harvested through
//!   `gasnub-trace` recorders: the *mechanism* behind every bandwidth
//!   number, rendered as canonical JSON (the golden-trace fixture format)
//!   or counter-annotated CSV;
//! * [`resilient`] — a checkpointed, resumable, panic-isolating sweep
//!   runner (with [`json`] as its dependency-free persistence format) for
//!   long or degraded-machine sweeps;
//! * [`profile`] — one-call characterization of a machine (all surfaces);
//! * [`cost`] — the compiler-facing cost model: given the measured
//!   characterization, pick the cheapest way to implement a transfer
//!   (deposit vs. fetch vs. pack-then-send), reproducing the paper's §9
//!   guidance.
//!
//! ## Example
//!
//! ```rust
//! use gasnub_core::sweep::Grid;
//! use gasnub_core::bench::local_load_surface;
//! use gasnub_machines::{Machine, MeasureLimits, T3d};
//!
//! let mut t3d = T3d::new();
//! t3d.set_limits(MeasureLimits::fast());
//! let surface = local_load_surface(&mut t3d, &Grid::quick());
//! // Contiguous DRAM access is far faster than strided on the T3D.
//! let ws = 4 * 1024 * 1024;
//! assert!(surface.value(ws, 1).unwrap() > 2.0 * surface.value(ws, 16).unwrap());
//! ```

pub mod bench;
pub mod chaos;
pub mod compare;
pub mod cost;
pub mod counters;
pub mod json;
pub mod pool;
pub mod profile;
pub mod report;
pub mod resilient;
pub mod storage;
pub mod surface;
pub mod sweep;

pub use chaos::{AppliedFault, FaultInjector, StorageFault};
pub use storage::{read_verified, write_durable, CheckpointError};

pub use bench::{
    local_copy_surface, local_load_surface, local_store_surface, remote_deposit_surface,
    remote_fetch_surface, remote_load_surface, sweep_surface_par, CopyVariant, SweepOp,
};
pub use compare::{Comparison, MachineSummary};
pub use cost::{CostModel, Strategy, TransferEstimate};
pub use counters::{collect_counters, CellReport, CounterReport};
pub use pool::{auto_threads, run_indexed, run_indexed_while};
pub use profile::MachineProfile;
pub use resilient::{FailedCell, FailureKind, ResilientSweep, SweepError, SweepOutcome};
pub use surface::Surface;
pub use sweep::Grid;
