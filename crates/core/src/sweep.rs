//! Sweep grids: the stride and working-set axes of the paper's figures.

/// A sweep grid: which strides and working sets to measure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Strides between 64-bit words, ascending.
    pub strides: Vec<u64>,
    /// Working sets in bytes, ascending.
    pub working_sets: Vec<u64>,
}

impl Grid {
    /// The stride axis of figs 1-8:
    /// 1..8, 12, 15, 16, 24, 31, 32, 48, 63, 64, 96, 127, 128, 192.
    pub fn paper_strides() -> Vec<u64> {
        vec![
            1, 2, 3, 4, 5, 6, 7, 8, 12, 15, 16, 24, 31, 32, 48, 63, 64, 96, 127, 128, 192,
        ]
    }

    /// The stride axis of the large-transfer figures 9-14:
    /// 1..8, 12, 15, 16, 24, 31, 32, 48, 63, 64.
    pub fn copy_strides() -> Vec<u64> {
        vec![1, 2, 3, 4, 5, 6, 7, 8, 12, 15, 16, 24, 31, 32, 48, 63, 64]
    }

    /// The working-set axis of figs 1-8: 0.5 KB to `max` by powers of two.
    pub fn paper_working_sets(max: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut ws = 512u64;
        while ws <= max {
            out.push(ws);
            ws *= 2;
        }
        out
    }

    /// The full paper grid for local surfaces (up to 128 MB like Fig. 1).
    pub fn paper_local() -> Self {
        Grid {
            strides: Self::paper_strides(),
            working_sets: Self::paper_working_sets(128 << 20),
        }
    }

    /// The full paper grid for remote surfaces (up to 8 MB like figs 2/4-8).
    pub fn paper_remote() -> Self {
        Grid {
            strides: Self::paper_strides(),
            working_sets: Self::paper_working_sets(8 << 20),
        }
    }

    /// A small grid for tests and examples: six strides, working sets
    /// 2 KB - 8 MB.
    pub fn quick() -> Self {
        Grid {
            strides: vec![1, 2, 8, 16, 64],
            working_sets: vec![2 << 10, 32 << 10, 512 << 10, 4 << 20, 8 << 20],
        }
    }

    /// Number of cells this grid contains.
    pub fn cells(&self) -> usize {
        self.strides.len() * self.working_sets.len()
    }

    /// The `(working_set, stride)` of cell `idx` in row-major order
    /// (working sets outer, strides inner) — the order every sweep
    /// iterates and every checkpoint records.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= self.cells()`.
    pub fn cell(&self, idx: usize) -> (u64, u64) {
        let ws = self.working_sets[idx / self.strides.len()];
        let stride = self.strides[idx % self.strides.len()];
        (ws, stride)
    }

    /// Groups `cells` (given as `(working_set, stride)` pairs, typically the
    /// remaining work of a sweep in grid order) into **runs**: chains of
    /// cells sharing a stride, in ascending working-set order. Runs are the
    /// scheduling unit of the warm-path sweep engine — a worker takes a
    /// whole run, spawns one engine for it and walks the chain, so each
    /// cell's working set is a prefix extension of the previous one at the
    /// same stride (the engine's allocations, and the host's caches, stay
    /// hot). Runs are ordered by first appearance of their stride; cells
    /// inside a run keep their input order.
    pub fn runs_of(cells: &[(u64, u64)]) -> Vec<Vec<(u64, u64)>> {
        let mut order: Vec<u64> = Vec::new();
        let mut runs: Vec<Vec<(u64, u64)>> = Vec::new();
        for &(ws, stride) in cells {
            match order.iter().position(|&s| s == stride) {
                Some(i) => runs[i].push((ws, stride)),
                None => {
                    order.push(stride);
                    runs.push(vec![(ws, stride)]);
                }
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_axes_match_figure_labels() {
        let s = Grid::paper_strides();
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.last(), Some(&192));
        assert!(s.contains(&31) && s.contains(&63) && s.contains(&127));
        let ws = Grid::paper_working_sets(128 << 20);
        assert_eq!(ws.first(), Some(&512));
        assert_eq!(ws.last(), Some(&(128 << 20)));
        assert_eq!(ws.len(), 19); // 0.5K .. 128M by powers of two
    }

    #[test]
    fn axes_are_ascending() {
        for grid in [Grid::paper_local(), Grid::paper_remote(), Grid::quick()] {
            assert!(grid.strides.windows(2).all(|w| w[0] < w[1]));
            assert!(grid.working_sets.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cells_is_the_product() {
        let g = Grid::quick();
        assert_eq!(g.cells(), g.strides.len() * g.working_sets.len());
    }

    #[test]
    fn runs_partition_the_grid_by_stride() {
        let g = Grid::quick();
        let cells: Vec<(u64, u64)> = (0..g.cells()).map(|i| g.cell(i)).collect();
        let runs = Grid::runs_of(&cells);
        assert_eq!(runs.len(), g.strides.len());
        let total: usize = runs.iter().map(Vec::len).sum();
        assert_eq!(total, g.cells());
        for (run, &stride) in runs.iter().zip(&g.strides) {
            assert!(run.iter().all(|&(_, s)| s == stride));
            // Working sets ascend within a run: each cell extends the
            // previous cell's address chain.
            assert!(run.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn runs_of_a_sparse_work_list_preserve_order() {
        // A resumed sweep attempts only the remaining cells.
        let cells = [(2048, 8), (4096, 1), (4096, 8), (8192, 1)];
        let runs = Grid::runs_of(&cells);
        assert_eq!(
            runs,
            vec![vec![(2048, 8), (4096, 8)], vec![(4096, 1), (8192, 1)],]
        );
        assert!(Grid::runs_of(&[]).is_empty());
    }

    #[test]
    fn cell_indexing_matches_the_nested_loop_order() {
        let g = Grid::quick();
        let mut idx = 0;
        for &ws in &g.working_sets {
            for &stride in &g.strides {
                assert_eq!(g.cell(idx), (ws, stride));
                idx += 1;
            }
        }
        assert_eq!(idx, g.cells());
    }
}
