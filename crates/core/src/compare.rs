//! The §9 cross-machine comparison, derived from measurement.
//!
//! "Large strided remote transfers achieve only 22 MByte/s per processor on
//! the DEC 8400, a factor of 2.5 less than the 55 MByte/s measured in the
//! T3D, or a factor of 6.5 less than the 140 MByte/s measured in the T3E.
//! An exception to these performance differences are the contiguous
//! accesses and small strides where T3D and DEC 8400 perform alike — but
//! still a factor 2 below the T3E. We attribute those differences to the
//! memory systems design philosophies, i.e. a cache focus on the DEC
//! machine and a streams focus on the Cray machines."

use gasnub_machines::{Machine, MachineId};

/// The §9 summary row for one machine (all MB/s, large working sets).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSummary {
    /// Which machine.
    pub machine: MachineId,
    /// Contiguous local loads from DRAM.
    pub local_load_contig: f64,
    /// Strided (stride 16) local loads from DRAM.
    pub local_load_strided: f64,
    /// Contiguous local copies.
    pub local_copy_contig: f64,
    /// Best strided local copy (the better of the two variants).
    pub local_copy_strided: f64,
    /// Best contiguous remote transfer.
    pub remote_contig: f64,
    /// Best strided (stride 16) remote transfer.
    pub remote_strided: f64,
    /// Indexed (gather) loads from DRAM.
    pub gather: f64,
}

impl MachineSummary {
    /// Measures the summary for `machine` with a DRAM-resident working set.
    pub fn measure(machine: &mut dyn Machine, ws_bytes: u64) -> Self {
        let best_remote = |machine: &mut dyn Machine, stride: u64| {
            let fetch = machine.remote_fetch(ws_bytes, stride).map(|m| m.mb_s);
            let deposit = machine.remote_deposit(ws_bytes, stride).map(|m| m.mb_s);
            match (fetch, deposit) {
                (Some(f), Some(d)) => f.max(d),
                (Some(f), None) => f,
                (None, Some(d)) => d,
                (None, None) => 0.0,
            }
        };
        MachineSummary {
            machine: machine.id(),
            local_load_contig: machine.local_load(ws_bytes, 1).mb_s,
            local_load_strided: machine.local_load(ws_bytes, 16).mb_s,
            local_copy_contig: machine.local_copy(ws_bytes, 1, 1).mb_s,
            local_copy_strided: machine
                .local_copy(ws_bytes, 16, 1)
                .mb_s
                .max(machine.local_copy(ws_bytes, 1, 16).mb_s),
            remote_contig: best_remote(machine, 1),
            remote_strided: best_remote(machine, 16),
            gather: machine.local_gather(ws_bytes).mb_s,
        }
    }

    /// The paper's §9 observation that remote copies are never slower than
    /// local copies on any of these machines.
    pub fn remote_at_least_local_copy(&self) -> bool {
        self.remote_contig >= 0.9 * self.local_copy_contig
    }
}

/// The full §9 comparison across machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// One summary per machine, in the order measured.
    pub rows: Vec<MachineSummary>,
}

impl Comparison {
    /// Measures all `machines` at the given working set.
    pub fn measure(machines: &mut [Box<dyn Machine>], ws_bytes: u64) -> Self {
        Comparison {
            rows: machines
                .iter_mut()
                .map(|m| MachineSummary::measure(m.as_mut(), ws_bytes))
                .collect(),
        }
    }

    /// The summary for one machine, if measured.
    pub fn row(&self, id: MachineId) -> Option<&MachineSummary> {
        self.rows.iter().find(|r| r.machine == id)
    }

    /// Renders the comparison as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<12}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}\n",
            "machine",
            "load s1",
            "load s16",
            "copy s1",
            "copy s16",
            "remote s1",
            "remote s16",
            "gather"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>10.0}\n",
                r.machine.label(),
                r.local_load_contig,
                r.local_load_strided,
                r.local_copy_contig,
                r.local_copy_strided,
                r.remote_contig,
                r.remote_strided,
                r.gather
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_machines::{Dec8400, MeasureLimits, T3d, T3e};

    fn comparison() -> Comparison {
        let mut machines: Vec<Box<dyn Machine>> = vec![
            Box::new(Dec8400::new()),
            Box::new(T3d::new()),
            Box::new(T3e::new()),
        ];
        for m in &mut machines {
            m.set_limits(MeasureLimits::fast());
        }
        Comparison::measure(&mut machines, 32 << 20)
    }

    #[test]
    fn section_9_strided_remote_ratios() {
        // 22 (8400) vs 55 (T3D, factor ~2.5) vs 140 (T3E, factor ~6.5).
        let c = comparison();
        let dec = c.row(MachineId::Dec8400).unwrap().remote_strided;
        let t3d = c.row(MachineId::CrayT3d).unwrap().remote_strided;
        let t3e = c.row(MachineId::CrayT3e).unwrap().remote_strided;
        let r_t3d = t3d / dec;
        let r_t3e = t3e / dec;
        assert!(
            r_t3d > 1.8 && r_t3d < 4.0,
            "T3D/8400 strided remote ratio {r_t3d} (paper 2.5)"
        );
        assert!(
            r_t3e > 4.5 && r_t3e < 9.0,
            "T3E/8400 strided remote ratio {r_t3e} (paper 6.5)"
        );
    }

    #[test]
    fn section_9_contiguous_exception() {
        // "contiguous accesses ... where T3D and DEC 8400 perform alike —
        // but still a factor 2 below the T3E."
        let c = comparison();
        let dec = c.row(MachineId::Dec8400).unwrap().remote_contig;
        let t3d = c.row(MachineId::CrayT3d).unwrap().remote_contig;
        let t3e = c.row(MachineId::CrayT3e).unwrap().remote_contig;
        let alike = t3d / dec;
        assert!(
            alike > 0.6 && alike < 1.5,
            "T3D ≈ 8400 contiguous remote: {alike}"
        );
        assert!(t3e / t3d > 1.8, "T3E factor ~2 above: {}", t3e / t3d);
    }

    #[test]
    fn remote_copies_never_slower_than_local_copies() {
        // §9: "On all three machines, the straight remote memory copy
        // bandwidth ... is equal to or higher than the local copy
        // performance."
        for r in &comparison().rows {
            assert!(r.remote_at_least_local_copy(), "{:?}: {r:?}", r.machine);
        }
    }

    #[test]
    fn gather_never_beats_strided() {
        for r in &comparison().rows {
            assert!(
                r.gather <= r.local_load_strided * 1.1,
                "{:?}: gather {} vs strided {}",
                r.machine,
                r.gather,
                r.local_load_strided
            );
        }
    }

    #[test]
    fn render_has_one_row_per_machine() {
        let c = comparison();
        let text = c.render();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("t3e"));
    }
}
