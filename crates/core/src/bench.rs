//! The micro-benchmarks of §4.2, swept over a grid.
//!
//! "Two different basic memory operations are examined, all of them operate
//! on 64 bit double words. **Load Sum** — a load operation and an
//! add-summing operation … **Load/Store copy** — all data of the working
//! set is copied by either loading it with a fixed stride and storing it
//! contiguously, or by loading it contiguously and storing it with a fixed
//! stride." A third **Store Constant** benchmark evaluates store
//! performance.

use gasnub_machines::{
    dispatch, Machine, ProbeOp, ProbeRequest, ProbeTier, SpawnEngine, WarmState,
};
use gasnub_memsim::SimError;

use crate::pool::run_indexed;
use crate::surface::Surface;
use crate::sweep::Grid;

/// Which side of a copy is strided (the legend of figs 9-11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyVariant {
    /// Strided loads, contiguous stores (the `o` series).
    StridedLoads,
    /// Contiguous loads, strided stores (the `◆`/`x` series).
    StridedStores,
}

/// One sweepable benchmark, as a value: the operation the CLI names on the
/// command line and the parallel sweep dispatches per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepOp {
    /// Load-Sum (figs 1/3/6).
    LocalLoad,
    /// Store-Constant.
    LocalStore,
    /// Copy with strided loads / contiguous stores.
    CopyStridedLoads,
    /// Copy with contiguous loads / strided stores.
    CopyStridedStores,
    /// Pure remote loads (fig 2's pull).
    RemoteLoad,
    /// Fetch transfers (figs 4/7).
    RemoteFetch,
    /// Deposit transfers (figs 5/8).
    RemoteDeposit,
}

impl SweepOp {
    /// Every operation, in the order reports list them.
    pub fn all() -> [SweepOp; 7] {
        [
            SweepOp::LocalLoad,
            SweepOp::LocalStore,
            SweepOp::CopyStridedLoads,
            SweepOp::CopyStridedStores,
            SweepOp::RemoteLoad,
            SweepOp::RemoteFetch,
            SweepOp::RemoteDeposit,
        ]
    }

    /// Parses the CLI label of an operation.
    pub fn parse(label: &str) -> Option<SweepOp> {
        match label {
            "load" => Some(SweepOp::LocalLoad),
            "store" => Some(SweepOp::LocalStore),
            "copy-loads" => Some(SweepOp::CopyStridedLoads),
            "copy-stores" => Some(SweepOp::CopyStridedStores),
            "pull" => Some(SweepOp::RemoteLoad),
            "fetch" => Some(SweepOp::RemoteFetch),
            "deposit" => Some(SweepOp::RemoteDeposit),
            _ => None,
        }
    }

    /// The CLI label of this operation.
    pub fn label(self) -> &'static str {
        match self {
            SweepOp::LocalLoad => "load",
            SweepOp::LocalStore => "store",
            SweepOp::CopyStridedLoads => "copy-loads",
            SweepOp::CopyStridedStores => "copy-stores",
            SweepOp::RemoteLoad => "pull",
            SweepOp::RemoteFetch => "fetch",
            SweepOp::RemoteDeposit => "deposit",
        }
    }

    /// The surface title for a machine called `name` — identical to the
    /// titles the per-surface sweep functions use, so checkpoints written
    /// by either path interoperate.
    pub fn title_for(self, name: &str) -> String {
        match self {
            SweepOp::LocalLoad => format!("{name} local loads"),
            SweepOp::LocalStore => format!("{name} local stores"),
            SweepOp::CopyStridedLoads => {
                format!("{name} local copy (strided loads/contiguous stores)")
            }
            SweepOp::CopyStridedStores => {
                format!("{name} local copy (contiguous loads/strided stores)")
            }
            SweepOp::RemoteLoad => format!("{name} remote loads (pull)"),
            SweepOp::RemoteFetch => format!("{name} remote fetch"),
            SweepOp::RemoteDeposit => format!("{name} remote deposit"),
        }
    }

    /// The checkpoint title of one `(machine, health, op, tier)` surface —
    /// the single spelling shared by the offline `sweep` subcommand and the
    /// serving layer. The title is embedded in the durable checkpoint
    /// payload (a foreign title refuses to resume), and served sweep bodies
    /// are required to be byte-identical to offline checkpoints, so both
    /// sides must build it from the same function. `name` is the engine's
    /// full [`Machine::name`]; the tier rides in a ` [tier …]` marker
    /// except for the default `sim` tier, which stays unmarked for
    /// compatibility with pre-tier checkpoints.
    pub fn checkpoint_title(self, name: &str, degraded: bool, tier: ProbeTier) -> String {
        let marker = match tier {
            ProbeTier::Simulate => String::new(),
            other => format!(" [tier {}]", other.label()),
        };
        format!(
            "{name} {} {}{marker}",
            if degraded { "degraded" } else { "healthy" },
            self.label()
        )
    }

    /// The [`ProbeOp`] this benchmark drives.
    pub fn probe_op(self) -> ProbeOp {
        match self {
            SweepOp::LocalLoad => ProbeOp::LocalLoad,
            SweepOp::LocalStore => ProbeOp::LocalStore,
            SweepOp::CopyStridedLoads | SweepOp::CopyStridedStores => ProbeOp::LocalCopy,
            SweepOp::RemoteLoad => ProbeOp::RemoteLoad,
            SweepOp::RemoteFetch => ProbeOp::RemoteFetch,
            SweepOp::RemoteDeposit => ProbeOp::RemoteDeposit,
        }
    }

    /// The [`ProbeRequest`] for one grid cell of this benchmark — the
    /// single place the grid's `stride` maps onto an operation's stride
    /// pair (strided-load copies stride the load side, strided-store
    /// copies the store side). Tier and measurement caps are left at
    /// their defaults; chain [`ProbeRequest::with_tier`] /
    /// [`ProbeRequest::with_limits`] to set them.
    pub fn request(self, ws_bytes: u64, stride: u64) -> ProbeRequest {
        match self {
            SweepOp::CopyStridedStores => {
                ProbeRequest::new(ProbeOp::LocalCopy, ws_bytes, 1).with_stride2(stride)
            }
            SweepOp::CopyStridedLoads => {
                ProbeRequest::new(ProbeOp::LocalCopy, ws_bytes, stride).with_stride2(1)
            }
            other => ProbeRequest::new(other.probe_op(), ws_bytes, stride),
        }
    }

    /// Measures one cell on `machine` through the unified probe API.
    /// `None` when the operation is unsupported there.
    pub fn measure(self, machine: &mut dyn Machine, ws_bytes: u64, stride: u64) -> Option<f64> {
        dispatch(machine, &self.request(ws_bytes, stride)).mb_s()
    }

    /// Measures one cell on `machine`. `None` when the operation is
    /// unsupported there.
    #[deprecated(
        since = "0.1.0",
        note = "use `measure`, or build a `ProbeRequest` via `request` and hand it to a \
                `ProbeBackend` / `gasnub_machines::dispatch`"
    )]
    pub fn probe(self, machine: &mut dyn Machine, ws_bytes: u64, stride: u64) -> Option<f64> {
        self.measure(machine, ws_bytes, stride)
    }
}

/// Sweeps `op` over `grid` on `threads` workers using the warm execution
/// path: the grid is partitioned into *runs* (chains of working sets at
/// fixed stride, [`Grid::runs_of`]), each worker claims whole runs and
/// reuses one spawned engine ([`WarmState`]) across a run's cells. Results
/// are scattered back into grid order, and every probe starts from flushed
/// state (≡ just-constructed state), so the surface is bit-identical to a
/// sequential fresh-engine-per-cell sweep of the same spec for any thread
/// count.
///
/// Returns `Ok(None)` when the machine does not support `op`.
///
/// # Errors
///
/// Returns [`SimError`] when the spec fails to build an engine.
pub fn sweep_surface_par<S: SpawnEngine>(
    spawner: &S,
    op: SweepOp,
    grid: &Grid,
    threads: usize,
) -> Result<Option<Surface>, SimError> {
    let title = op.title_for(&spawner.spawn_engine()?.name());
    let cells: Vec<(u64, u64)> = (0..grid.cells()).map(|i| grid.cell(i)).collect();
    let runs = Grid::runs_of(&cells);
    let per_run = run_indexed(threads, runs.len(), |r| {
        let mut warm = WarmState::new();
        let mut column = Vec::with_capacity(runs[r].len());
        for &(ws, stride) in &runs[r] {
            column.push(op.measure(warm.engine(spawner)?, ws, stride));
        }
        Ok::<Vec<Option<f64>>, SimError>(column)
    });
    // Run r is stride column r; its k-th cell sits in working-set row k.
    let mut values = vec![vec![0.0; grid.strides.len()]; grid.working_sets.len()];
    for (r, column) in per_run.into_iter().enumerate() {
        for (k, cell) in column?.into_iter().enumerate() {
            match cell {
                Some(mb_s) => values[k][r] = mb_s,
                None => return Ok(None),
            }
        }
    }
    Ok(Some(Surface::new(
        title,
        grid.strides.clone(),
        grid.working_sets.clone(),
        values,
    )))
}

fn sweep(
    title: String,
    grid: &Grid,
    mut probe: impl FnMut(u64, u64) -> Option<f64>,
) -> Option<Surface> {
    let mut values = Vec::with_capacity(grid.working_sets.len());
    for &ws in &grid.working_sets {
        let mut row = Vec::with_capacity(grid.strides.len());
        for &stride in &grid.strides {
            row.push(probe(ws, stride)?);
        }
        values.push(row);
    }
    Some(Surface::new(
        title,
        grid.strides.clone(),
        grid.working_sets.clone(),
        values,
    ))
}

/// Sweeps the Load-Sum benchmark (figs 1, 3, 6).
pub fn local_load_surface(machine: &mut dyn Machine, grid: &Grid) -> Surface {
    let title = format!("{} local loads", machine.name());
    sweep(title, grid, |ws, stride| {
        Some(machine.local_load(ws, stride).mb_s)
    })
    .expect("local loads are always supported")
}

/// Sweeps the Store-Constant benchmark.
pub fn local_store_surface(machine: &mut dyn Machine, grid: &Grid) -> Surface {
    let title = format!("{} local stores", machine.name());
    sweep(title, grid, |ws, stride| {
        Some(machine.local_store(ws, stride).mb_s)
    })
    .expect("local stores are always supported")
}

/// Sweeps the Load/Store copy benchmark (figs 9-11 fix the working set;
/// the full surface also covers the cache-blocked regimes of §6.1).
pub fn local_copy_surface(machine: &mut dyn Machine, grid: &Grid, variant: CopyVariant) -> Surface {
    let title = format!(
        "{} local copy ({})",
        machine.name(),
        match variant {
            CopyVariant::StridedLoads => "strided loads/contiguous stores",
            CopyVariant::StridedStores => "contiguous loads/strided stores",
        }
    );
    sweep(title, grid, |ws, stride| {
        let (ls, ss) = match variant {
            CopyVariant::StridedLoads => (stride, 1),
            CopyVariant::StridedStores => (1, stride),
        };
        Some(machine.local_copy(ws, ls, ss).mb_s)
    })
    .expect("local copies are always supported")
}

/// Sweeps pure remote loads (fig 2). `None` if unsupported.
pub fn remote_load_surface(machine: &mut dyn Machine, grid: &Grid) -> Option<Surface> {
    let title = format!("{} remote loads (pull)", machine.name());
    sweep(title, grid, |ws, stride| {
        machine.remote_load(ws, stride).map(|m| m.mb_s)
    })
}

/// Sweeps fetch transfers (figs 4, 7). `None` if unsupported.
pub fn remote_fetch_surface(machine: &mut dyn Machine, grid: &Grid) -> Option<Surface> {
    let title = format!("{} remote fetch", machine.name());
    sweep(title, grid, |ws, stride| {
        machine.remote_fetch(ws, stride).map(|m| m.mb_s)
    })
}

/// Sweeps deposit transfers (figs 5, 8). `None` if unsupported.
pub fn remote_deposit_surface(machine: &mut dyn Machine, grid: &Grid) -> Option<Surface> {
    let title = format!("{} remote deposit", machine.name());
    sweep(title, grid, |ws, stride| {
        machine.remote_deposit(ws, stride).map(|m| m.mb_s)
    })
}

/// Sweeps the indexed (gather) benchmark along the working-set axis — a 1D
/// curve, since a random permutation has no stride parameter.
pub fn local_gather_curve(machine: &mut dyn Machine, working_sets: &[u64]) -> Vec<(u64, f64)> {
    working_sets
        .iter()
        .map(|&ws| (ws, machine.local_gather(ws).mb_s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_machines::{Dec8400, MeasureLimits, T3d, T3e};

    fn fast<M: Machine>(mut m: M) -> M {
        m.set_limits(MeasureLimits::fast());
        m
    }

    #[test]
    fn t3d_load_surface_has_two_plateaus() {
        let mut m = fast(T3d::new());
        let grid = Grid {
            strides: vec![1, 16],
            working_sets: vec![4 << 10, 4 << 20],
        };
        let s = local_load_surface(&mut m, &grid);
        let l1 = s.value(4 << 10, 1).unwrap();
        let dram_contig = s.value(4 << 20, 1).unwrap();
        let dram_strided = s.value(4 << 20, 16).unwrap();
        assert!(l1 > 2.0 * dram_contig, "{l1} vs {dram_contig}");
        assert!(
            dram_contig > 3.0 * dram_strided,
            "{dram_contig} vs {dram_strided}"
        );
    }

    #[test]
    fn dec8400_remote_surfaces() {
        let mut m = fast(Dec8400::new());
        let grid = Grid {
            strides: vec![1, 16],
            working_sets: vec![8 << 20],
        };
        assert!(remote_load_surface(&mut m, &grid).is_some());
        assert!(remote_fetch_surface(&mut m, &grid).is_some());
        assert!(
            remote_deposit_surface(&mut m, &grid).is_none(),
            "8400 cannot push"
        );
    }

    #[test]
    fn t3e_deposit_surface_shows_ripples() {
        let mut m = fast(T3e::new());
        let grid = Grid {
            strides: vec![15, 16],
            working_sets: vec![4 << 20],
        };
        let s = remote_deposit_surface(&mut m, &grid).unwrap();
        let odd = s.value(4 << 20, 15).unwrap();
        let even = s.value(4 << 20, 16).unwrap();
        assert!(odd > 1.5 * even, "ripples: odd {odd} vs even {even}");
    }

    #[test]
    fn copy_variants_differ_on_the_t3d() {
        let mut m = fast(T3d::new());
        let grid = Grid {
            strides: vec![16],
            working_sets: vec![4 << 20],
        };
        let loads = local_copy_surface(&mut m, &grid, CopyVariant::StridedLoads);
        let stores = local_copy_surface(&mut m, &grid, CopyVariant::StridedStores);
        assert!(
            stores.value(4 << 20, 16).unwrap() > loads.value(4 << 20, 16).unwrap(),
            "T3D strided stores must beat strided loads"
        );
    }

    #[test]
    fn gather_curve_falls_with_working_set() {
        let mut m = fast(T3d::new());
        let curve = local_gather_curve(&mut m, &[4 << 10, 4 << 20]);
        assert_eq!(curve.len(), 2);
        assert!(
            curve[0].1 > 3.0 * curve[1].1,
            "cache-resident gathers must be far faster: {curve:?}"
        );
    }

    #[test]
    fn measured_surface_reveals_the_cache_sizes() {
        // Working-set spectroscopy on the simulated T3D finds its 8 KB L1.
        let mut m = fast(T3d::new());
        let grid = Grid {
            strides: vec![1],
            working_sets: vec![2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10],
        };
        let s = local_load_surface(&mut m, &grid);
        let caches = s.inferred_cache_bytes();
        assert_eq!(
            caches,
            vec![8 << 10],
            "the T3D has exactly one 8 KB cache, got {caches:?}"
        );
    }

    #[test]
    fn store_surface_runs() {
        let mut m = fast(T3e::new());
        let grid = Grid {
            strides: vec![1],
            working_sets: vec![64 << 10],
        };
        let s = local_store_surface(&mut m, &grid);
        assert!(s.peak() > 0.0);
    }

    #[test]
    fn sweep_op_labels_round_trip() {
        for op in SweepOp::all() {
            assert_eq!(SweepOp::parse(op.label()), Some(op));
        }
        assert_eq!(SweepOp::parse("teleport"), None);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        use gasnub_machines::MachineSpec;
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let grid = Grid {
            strides: vec![1, 8, 16],
            working_sets: vec![32 << 10, 4 << 20],
        };
        let mut m = fast(T3d::new());
        let sequential = remote_deposit_surface(&mut m, &grid).unwrap();
        let parallel = sweep_surface_par(&spec, SweepOp::RemoteDeposit, &grid, 4)
            .unwrap()
            .unwrap();
        assert_eq!(parallel.title(), sequential.title());
        for &ws in &grid.working_sets {
            for &stride in &grid.strides {
                let a = sequential.value(ws, stride).unwrap().to_bits();
                let b = parallel.value(ws, stride).unwrap().to_bits();
                assert_eq!(a, b, "cell ({ws}, {stride})");
            }
        }
    }

    #[test]
    fn parallel_sweep_of_unsupported_op_is_none() {
        use gasnub_machines::MachineSpec;
        let spec = MachineSpec::dec8400().with_limits(MeasureLimits::fast());
        let grid = Grid {
            strides: vec![1],
            working_sets: vec![32 << 10],
        };
        let got = sweep_surface_par(&spec, SweepOp::RemoteDeposit, &grid, 2).unwrap();
        assert!(got.is_none(), "the 8400 cannot push");
    }

    #[test]
    fn parallel_sweep_titles_match_sequential_titles() {
        let mut m = fast(T3d::new());
        let name = m.name();
        let grid = Grid {
            strides: vec![1],
            working_sets: vec![32 << 10],
        };
        assert_eq!(
            local_load_surface(&mut m, &grid).title(),
            SweepOp::LocalLoad.title_for(&name)
        );
        assert_eq!(
            local_copy_surface(&mut m, &grid, CopyVariant::StridedStores).title(),
            SweepOp::CopyStridedStores.title_for(&name)
        );
        assert_eq!(
            remote_fetch_surface(&mut m, &grid).unwrap().title(),
            SweepOp::RemoteFetch.title_for(&name)
        );
    }
}
