//! A complete characterization report for one machine, in markdown.
//!
//! This is what a compiler team would generate per target: inferred cache
//! structure (working-set spectroscopy), the bandwidth plateaus, the full
//! surfaces, and the transfer-strategy rankings — the paper's whole
//! methodology in one document.

use gasnub_machines::Machine;

use crate::bench::local_load_surface;
use crate::cost::CostModel;
use crate::profile::MachineProfile;
use crate::sweep::Grid;

/// Options controlling the report's measurement effort.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Grid for the local surfaces.
    pub local_grid: Grid,
    /// Grid for the remote surfaces.
    pub remote_grid: Grid,
    /// Strides for the cost-model rankings.
    pub ranking_strides: Vec<u64>,
    /// Working set for the cost-model rankings (DRAM-resident).
    pub ranking_ws: u64,
}

impl ReportOptions {
    /// Fast defaults suitable for examples and tests.
    pub fn quick() -> Self {
        ReportOptions {
            local_grid: Grid {
                strides: vec![1, 2, 4, 8, 16, 64],
                working_sets: Grid::paper_working_sets(16 << 20),
            },
            remote_grid: Grid {
                strides: vec![1, 2, 8, 16, 64],
                working_sets: vec![512 << 10, 8 << 20],
            },
            ranking_strides: vec![1, 8, 16, 64],
            ranking_ws: 32 << 20,
        }
    }
}

/// Generates the full markdown report for `machine`.
pub fn machine_report(machine: &mut dyn Machine, options: &ReportOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Memory system characterization — {}\n\n",
        machine.name()
    ));

    // 1. Working-set spectroscopy.
    let loads = local_load_surface(machine, &options.local_grid);
    let caches = loads.inferred_cache_bytes();
    out.push_str("## Inferred cache structure\n\n");
    if caches.is_empty() {
        out.push_str("No capacity knees detected on this grid.\n\n");
    } else {
        out.push_str("Working-set knees of the contiguous load column imply caches of:\n\n");
        for c in &caches {
            let human = if *c >= 1 << 20 {
                format!("{} MB", c >> 20)
            } else {
                format!("{} KB", c >> 10)
            };
            out.push_str(&format!("* ~{human}\n"));
        }
        out.push('\n');
    }

    // 2. Plateau summary.
    out.push_str("## Plateaus (MB/s)\n\n| working set | stride 1 | stride 16 |\n|---|---:|---:|\n");
    for &ws in &options.local_grid.working_sets {
        let s1 = loads.value(ws, 1).unwrap_or(0.0);
        let s16 = loads.value(ws, 16).unwrap_or_else(|| {
            // Grid may not include stride 16: fall back to the largest.
            let last = *options.local_grid.strides.last().expect("non-empty grid");
            loads.value(ws, last).unwrap_or(0.0)
        });
        let human = if ws >= 1 << 20 {
            format!("{} MB", ws >> 20)
        } else if ws >= 1 << 10 {
            format!("{} KB", ws >> 10)
        } else {
            format!("{ws} B")
        };
        out.push_str(&format!("| {human} | {s1:.0} | {s16:.0} |\n"));
    }
    out.push('\n');

    // 3. Full surfaces.
    out.push_str("## Surfaces\n\n```text\n");
    let profile = MachineProfile::measure(machine, &options.local_grid, &options.remote_grid);
    for s in profile.surfaces() {
        out.push_str(&s.render());
        out.push('\n');
    }
    out.push_str("```\n\n");

    // 4. Transfer strategy rankings (only when the machine has remote paths).
    if profile.remote_fetch.is_some() || profile.remote_deposit.is_some() {
        out.push_str("## Transfer strategy rankings\n\n");
        let model = CostModel::characterize(machine, &options.ranking_strides, options.ranking_ws);
        out.push_str("| stride | best | MB/s |\n|---:|---|---:|\n");
        for &s in &options.ranking_strides {
            let best = model.best(1 << 20, s);
            out.push_str(&format!("| {s} | {} | {:.0} |\n", best.strategy, best.mb_s));
        }
        out.push('\n');
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_machines::custom::CustomMachineBuilder;
    use gasnub_machines::{MeasureLimits, T3d};
    use gasnub_memsim::config::presets;

    #[test]
    fn t3d_report_contains_all_sections() {
        let mut m = T3d::new();
        m.set_limits(MeasureLimits::fast());
        let report = machine_report(&mut m, &ReportOptions::quick());
        assert!(report.contains("# Memory system characterization — Cray T3D"));
        assert!(report.contains("## Inferred cache structure"));
        assert!(
            report.contains("8 KB"),
            "the T3D's 8 KB L1 must be inferred:\n{report}"
        );
        assert!(report.contains("## Plateaus"));
        assert!(report.contains("## Surfaces"));
        assert!(report.contains("## Transfer strategy rankings"));
        assert!(
            report.contains("deposit"),
            "T3D rankings must mention deposits"
        );
    }

    #[test]
    fn custom_machine_report_omits_remote_sections() {
        let mut m = CustomMachineBuilder::new("toy", presets::tiny_test_node())
            .limits(MeasureLimits::fast())
            .build()
            .unwrap();
        let report = machine_report(&mut m, &ReportOptions::quick());
        assert!(report.contains("toy"));
        assert!(!report.contains("## Transfer strategy rankings"));
    }
}
