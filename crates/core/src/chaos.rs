//! Seeded chaos injection for checkpoint storage.
//!
//! The durability claims of [`crate::storage`] are only worth what the
//! tests that attack them are worth. This module provides the attacker: a
//! [`FaultInjector`] that implements [`crate::storage::WriteFaults`] and,
//! on a deterministic seeded schedule, makes checkpoint writes go wrong in
//! the three ways disks actually fail:
//!
//! * **short write** — the tail of the file is missing (crash mid-write);
//! * **bit flip** — one bit somewhere in the file differs (media rot,
//!   RAM-to-disk corruption);
//! * **rename failure** — the atomic publish step itself errors.
//!
//! Short writes and bit flips *report success* to the writer — exactly like
//! a real disk — so the corruption is only discoverable at the next
//! verified read. Rename failures surface immediately as
//! [`crate::storage::CheckpointError::Io`].
//!
//! Every decision the injector makes is appended to a log
//! ([`FaultInjector::log`]); when a chaos proptest fails, the harness
//! writes [`FaultInjector::render_log`] to disk so CI can upload the exact
//! failing schedule as an artifact.

use std::fmt;

use gasnub_memsim::rng::Rng;

use crate::storage::WriteFaults;

/// One way a checkpoint write can be sabotaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Drop this many bytes from the end of the file (crash mid-write).
    ShortWrite {
        /// Bytes removed from the tail.
        dropped: u64,
    },
    /// Flip exactly one bit at this absolute bit offset.
    BitFlip {
        /// Bit index into the file (`byte * 8 + bit`).
        bit: u64,
    },
    /// Make the temp→final rename fail.
    FailRename,
}

impl fmt::Display for StorageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageFault::ShortWrite { dropped } => write!(f, "short-write dropped={dropped}"),
            StorageFault::BitFlip { bit } => write!(f, "bit-flip bit={bit}"),
            StorageFault::FailRename => write!(f, "fail-rename"),
        }
    }
}

/// A fault the injector actually applied, tagged with which write it hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedFault {
    /// Zero-based index of the checkpoint write this fault corrupted.
    pub write_index: u64,
    /// What was done to it.
    pub fault: StorageFault,
}

/// A seeded schedule of storage faults.
///
/// Each checkpoint write independently suffers a fault with probability
/// `fault_pct`/100; the fault kind and its parameters come from a
/// [`Rng`] forked off `seed`, so the same `(seed, fault_pct)` pair always
/// produces the same schedule against the same write sequence — a failing
/// chaos run is replayable from two numbers.
#[derive(Debug)]
pub struct FaultInjector {
    rng: Rng,
    fault_pct: u32,
    writes: u64,
    rename_pending: bool,
    log: Vec<AppliedFault>,
}

impl FaultInjector {
    /// A new injector faulting roughly `fault_pct`% of writes.
    pub fn new(seed: u64, fault_pct: u32) -> Self {
        FaultInjector {
            rng: Rng::new(seed).fork(0xC4A0),
            fault_pct: fault_pct.min(100),
            writes: 0,
            rename_pending: false,
            log: Vec::new(),
        }
    }

    /// An injector that never faults (for differential runs).
    pub fn clean(seed: u64) -> Self {
        FaultInjector::new(seed, 0)
    }

    /// How many writes have passed through the injector.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Every fault applied so far, in write order.
    pub fn log(&self) -> &[AppliedFault] {
        &self.log
    }

    /// Renders the applied-fault schedule as one line per fault —
    /// the artifact CI uploads when a chaos test goes red.
    pub fn render_log(&self) -> String {
        let mut out = format!(
            "# chaos schedule: {} writes, {} faults\n",
            self.writes,
            self.log.len()
        );
        for f in &self.log {
            out.push_str(&format!("write {}: {}\n", f.write_index, f.fault));
        }
        out
    }

    fn draw_fault(&mut self, file_len: u64) -> Option<StorageFault> {
        if self.fault_pct == 0 || !self.rng.gen_bool(self.fault_pct as f64 / 100.0) {
            return None;
        }
        Some(match self.rng.gen_range(0, 3) {
            0 => StorageFault::ShortWrite {
                // At least one byte, at most the whole footer and change —
                // enough to tear the tail without always emptying the file.
                dropped: self.rng.gen_range(1, file_len.clamp(2, 80)),
            },
            1 => StorageFault::BitFlip {
                bit: self.rng.gen_range(0, (file_len * 8).max(1)),
            },
            _ => StorageFault::FailRename,
        })
    }
}

impl WriteFaults for FaultInjector {
    fn corrupt_file_bytes(&mut self, mut bytes: Vec<u8>) -> Vec<u8> {
        let idx = self.writes;
        self.writes += 1;
        let Some(fault) = self.draw_fault(bytes.len() as u64) else {
            return bytes;
        };
        self.log.push(AppliedFault {
            write_index: idx,
            fault,
        });
        match fault {
            StorageFault::ShortWrite { dropped } => {
                let keep = bytes.len().saturating_sub(dropped as usize);
                bytes.truncate(keep);
            }
            StorageFault::BitFlip { bit } => {
                let byte = (bit / 8) as usize;
                if byte < bytes.len() {
                    bytes[byte] ^= 1 << (bit % 8);
                }
            }
            StorageFault::FailRename => self.rename_pending = true,
        }
        bytes
    }

    fn fail_rename(&mut self) -> bool {
        std::mem::take(&mut self.rename_pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{read_verified, write_durable_with, CheckpointError};
    use std::path::PathBuf;

    fn tdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gasnub-chaos-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn same_seed_same_schedule() {
        let payload = vec![0u8; 400];
        let mut a = FaultInjector::new(7, 50);
        let mut b = FaultInjector::new(7, 50);
        for _ in 0..32 {
            let fa = a.corrupt_file_bytes(payload.clone());
            let fb = b.corrupt_file_bytes(payload.clone());
            assert_eq!(fa, fb);
            assert_eq!(a.fail_rename(), b.fail_rename());
        }
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn clean_injector_never_faults() {
        let mut inj = FaultInjector::clean(99);
        for _ in 0..64 {
            let bytes = inj.corrupt_file_bytes(vec![1, 2, 3, 4]);
            assert_eq!(bytes, vec![1, 2, 3, 4]);
            assert!(!inj.fail_rename());
        }
        assert!(inj.log().is_empty());
        assert_eq!(inj.writes(), 64);
    }

    #[test]
    fn every_applied_fault_is_detected_or_errors() {
        // Drive real writes through an aggressive injector: each write
        // either (a) errors immediately (rename), or (b) succeeds and then
        // read_verified either verifies clean bytes or names the corruption.
        let dir = tdir("detect");
        let path = dir.join("ck.json");
        let payload = "{\"version\":2,\"cells\":[[0,0,4607182418800017408]]}";
        let mut inj = FaultInjector::new(12345, 100);
        let mut detected = 0;
        for i in 0..40 {
            let faults_before = inj.log().len();
            match write_durable_with(&path, payload, false, &mut inj) {
                Err(CheckpointError::Io { op, .. }) => assert_eq!(op, "rename"),
                Err(other) => panic!("write {i}: unexpected error {other}"),
                Ok(()) => {
                    let faulted = inj.log().len() > faults_before
                        && !matches!(inj.log().last().unwrap().fault, StorageFault::FailRename);
                    match read_verified(&path) {
                        Ok(Some(p)) => {
                            // Only a clean write may verify: CRC32 catches
                            // every single-bit flip, and the mandatory
                            // trailing newline catches every short write.
                            assert!(!faulted, "write {i}: corruption went undetected");
                            assert_eq!(p, payload);
                        }
                        Ok(None) => panic!("write {i}: file vanished"),
                        Err(CheckpointError::Corrupt { .. }) => {
                            assert!(faulted, "write {i}: clean write reported corrupt");
                            detected += 1;
                        }
                        Err(other) => panic!("write {i}: unexpected error {other}"),
                    }
                }
            }
            // Reset for the next round so each write is independent.
            let _ = std::fs::remove_file(&path);
        }
        assert!(detected > 5, "injector too tame: {detected} detections");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_log_lists_each_fault() {
        let mut inj = FaultInjector::new(3, 100);
        let _ = inj.corrupt_file_bytes(vec![0u8; 200]);
        let _ = inj.fail_rename();
        let log = inj.render_log();
        assert!(log.starts_with("# chaos schedule"));
        assert!(log.contains("write 0:"), "{log}");
    }
}
