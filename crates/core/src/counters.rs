//! Per-cell counter reports: *why* each bandwidth number is what it is.
//!
//! A bandwidth surface says a cell runs at 57 MB/s; a counter report says
//! the same cell missed L1 4096 times, crossed the bus once per cache line,
//! and stalled 1200 cycles in the write buffer. This module sweeps a grid
//! with an event recorder installed on each engine, harvests the component
//! counters every probe leaves behind, and packages them per cell —
//! deterministically, in grid order, so a `--threads 4` report is
//! byte-identical to a sequential one.
//!
//! Reports render to canonical JSON (sorted keys, unsigned integers only;
//! bandwidths stored as `f64::to_bits` so they round-trip exactly — the
//! golden-trace test fixtures in `tests/golden/` are these bytes) and to
//! CSV with one column per counter, annotating a figure's cells with the
//! mechanism behind them.

use gasnub_machines::{CounterSet, Machine, RingRecorder, SpawnEngine};
use gasnub_memsim::SimError;

use crate::bench::SweepOp;
use crate::json::Json;
use crate::pool::run_indexed;
use crate::sweep::Grid;

/// Events buffered per probe. Counter collection drains the recorder after
/// every cell, so a small ring suffices.
const RING_CAPACITY: usize = 8;

/// One grid cell's measurement plus the harvested component counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Working set in bytes.
    pub ws_bytes: u64,
    /// Stride in 64-bit words.
    pub stride: u64,
    /// Measured bandwidth as IEEE-754 bits (`f64::to_bits`), which
    /// round-trips through JSON exactly.
    pub mb_s_bits: u64,
    /// The counters the probe harvested (cache hits/misses, bus
    /// transactions, NI packets, MESI transitions, ...).
    pub counters: CounterSet,
}

impl CellReport {
    /// The measured bandwidth in MB/s.
    pub fn mb_s(&self) -> f64 {
        f64::from_bits(self.mb_s_bits)
    }
}

/// A full counter sweep of one operation on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterReport {
    /// Machine label (`dec8400` / `t3d` / `t3e` / `custom`).
    pub machine: String,
    /// Operation label (as [`SweepOp::label`]).
    pub op: String,
    /// Human-readable title, matching the bandwidth surface's title.
    pub title: String,
    /// Cells in grid order (working sets outer, strides inner).
    pub cells: Vec<CellReport>,
    /// Run-level robustness counters (retries, quarantines, timeouts,
    /// force-restart recoveries — the [`gasnub_trace::robustness`] names),
    /// filled in by the resilient sweep runner's outcome. Omitted from the
    /// JSON rendering when empty, so reports from untroubled runs keep
    /// their historical bytes.
    pub robustness: CounterSet,
}

impl CounterReport {
    /// Builds the canonical JSON value of this report.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|cell| {
                let counters = Json::Object(
                    cell.counters
                        .iter()
                        .map(|(name, value)| (name.to_string(), Json::U64(value)))
                        .collect(),
                );
                Json::object([
                    ("ws_bytes", Json::U64(cell.ws_bytes)),
                    ("stride", Json::U64(cell.stride)),
                    ("mb_s_bits", Json::U64(cell.mb_s_bits)),
                    ("counters", counters),
                ])
            })
            .collect();
        let mut pairs = vec![
            ("machine", Json::Str(self.machine.clone())),
            ("op", Json::Str(self.op.clone())),
            ("title", Json::Str(self.title.clone())),
            ("cells", Json::Array(cells)),
        ];
        if !self.robustness.is_empty() {
            pairs.push((
                "robustness",
                Json::Object(
                    self.robustness
                        .iter()
                        .map(|(name, value)| (name.to_string(), Json::U64(value)))
                        .collect(),
                ),
            ));
        }
        Json::object(pairs)
    }

    /// Renders the report as one line of canonical JSON plus a trailing
    /// newline. Identical reports render to identical bytes — this is the
    /// golden-trace fixture format and the `--counters` output format.
    pub fn render_json(&self) -> String {
        let mut out = self.to_json().render();
        out.push('\n');
        out
    }

    /// Reads a report back from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Malformed`] on syntax errors or a document of
    /// the wrong shape.
    pub fn parse(text: &str) -> Result<CounterReport, SimError> {
        let doc = Json::parse(text)?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| SimError::malformed(format!("missing '{key}'")))
        };
        let string = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| SimError::malformed(format!("'{key}' is not a string")))
        };
        let mut cells = Vec::new();
        for cell in field("cells")?
            .as_array()
            .ok_or_else(|| SimError::malformed("'cells' is not an array"))?
        {
            let number = |key: &str| {
                cell.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| SimError::malformed(format!("cell '{key}' is not a number")))
            };
            let mut counters = CounterSet::new();
            match cell.get("counters") {
                Some(Json::Object(map)) => {
                    for (name, value) in map {
                        let value = value.as_u64().ok_or_else(|| {
                            SimError::malformed(format!("counter '{name}' is not a number"))
                        })?;
                        counters.set(name, value);
                    }
                }
                _ => return Err(SimError::malformed("cell 'counters' is not an object")),
            }
            cells.push(CellReport {
                ws_bytes: number("ws_bytes")?,
                stride: number("stride")?,
                mb_s_bits: number("mb_s_bits")?,
                counters,
            });
        }
        let mut robustness = CounterSet::new();
        match doc.get("robustness") {
            None => {}
            Some(Json::Object(map)) => {
                for (name, value) in map {
                    let value = value.as_u64().ok_or_else(|| {
                        SimError::malformed(format!("robustness '{name}' is not a number"))
                    })?;
                    robustness.set(name, value);
                }
            }
            Some(_) => return Err(SimError::malformed("'robustness' is not an object")),
        }
        Ok(CounterReport {
            machine: string("machine")?,
            op: string("op")?,
            title: string("title")?,
            cells,
            robustness,
        })
    }

    /// Renders the report as CSV: `ws_bytes,stride,mb_s` followed by one
    /// column per counter (the sorted union across all cells; absent
    /// counters print 0). This is the "annotated figure" form — each cell
    /// of a bandwidth plot alongside the mechanism counts explaining it.
    pub fn to_csv(&self) -> String {
        let mut names: Vec<&str> = Vec::new();
        for cell in &self.cells {
            for (name, _) in cell.counters.iter() {
                if let Err(at) = names.binary_search(&name) {
                    names.insert(at, name);
                }
            }
        }
        let names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        let mut out = String::from("ws_bytes,stride,mb_s");
        for name in &names {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for cell in &self.cells {
            out.push_str(&format!(
                "{},{},{:.1}",
                cell.ws_bytes,
                cell.stride,
                cell.mb_s()
            ));
            for name in &names {
                out.push_str(&format!(",{}", cell.counters.get(name)));
            }
            out.push('\n');
        }
        out
    }
}

/// Sweeps `op` over `grid` with counters on: one fresh engine per cell,
/// each with its own [`RingRecorder`], cells spread across `threads`
/// workers and gathered in grid order — so the report (and its rendered
/// bytes) is identical however many threads run it.
///
/// Returns `Ok(None)` when the machine does not support `op` (mirroring
/// [`crate::bench::sweep_surface_par`]).
///
/// # Errors
///
/// Returns [`SimError`] when the spec fails to build an engine.
pub fn collect_counters<S: SpawnEngine>(
    spawner: &S,
    op: SweepOp,
    grid: &Grid,
    threads: usize,
) -> Result<Option<CounterReport>, SimError> {
    let probe = spawner.spawn_engine()?;
    let (machine, title) = (probe.label(), op.title_for(&probe.name()));
    drop(probe);
    let cells = run_indexed(threads, grid.cells(), |idx| {
        let (ws, stride) = grid.cell(idx);
        let mut engine = spawner.spawn_engine()?;
        engine.set_recorder(Box::new(RingRecorder::new(RING_CAPACITY)));
        let mb_s = match op.measure(&mut engine, ws, stride) {
            Some(mb_s) => mb_s,
            None => return Ok(None),
        };
        let counters = engine.take_counters().unwrap_or_default();
        Ok::<Option<CellReport>, SimError>(Some(CellReport {
            ws_bytes: ws,
            stride,
            mb_s_bits: mb_s.to_bits(),
            counters,
        }))
    });
    let mut report = CounterReport {
        machine,
        op: op.label().to_string(),
        title,
        cells: Vec::with_capacity(grid.cells()),
        robustness: CounterSet::new(),
    };
    for cell in cells {
        match cell? {
            Some(cell) => report.cells.push(cell),
            None => return Ok(None),
        }
    }
    Ok(Some(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_machines::{MachineSpec, MeasureLimits};

    fn small_grid() -> Grid {
        Grid {
            strides: vec![1, 16],
            working_sets: vec![32 << 10, 4 << 20],
        }
    }

    #[test]
    fn collects_cells_in_grid_order_with_counters() {
        let spec = MachineSpec::t3d().with_limits(MeasureLimits::fast());
        let report = collect_counters(&spec, SweepOp::LocalLoad, &small_grid(), 1)
            .unwrap()
            .expect("local loads are always supported");
        assert_eq!(report.machine, "t3d");
        assert_eq!(report.op, "load");
        assert_eq!(report.cells.len(), 4);
        let first = &report.cells[0];
        assert_eq!((first.ws_bytes, first.stride), (32 << 10, 1));
        assert!(first.counters.get("accesses") > 0);
        assert!(first.mb_s() > 0.0);
    }

    #[test]
    fn unsupported_op_reports_none() {
        let spec = MachineSpec::dec8400().with_limits(MeasureLimits::fast());
        let got = collect_counters(&spec, SweepOp::RemoteDeposit, &small_grid(), 1).unwrap();
        assert!(got.is_none(), "the 8400 cannot push");
    }

    #[test]
    fn parallel_report_renders_identically_to_sequential() {
        let spec = MachineSpec::t3e().with_limits(MeasureLimits::fast());
        let sequential = collect_counters(&spec, SweepOp::RemoteFetch, &small_grid(), 1)
            .unwrap()
            .unwrap();
        let parallel = collect_counters(&spec, SweepOp::RemoteFetch, &small_grid(), 4)
            .unwrap()
            .unwrap();
        assert_eq!(sequential.render_json(), parallel.render_json());
    }

    #[test]
    fn json_round_trips() {
        let spec = MachineSpec::dec8400().with_limits(MeasureLimits::fast());
        let report = collect_counters(&spec, SweepOp::RemoteLoad, &small_grid(), 1)
            .unwrap()
            .unwrap();
        let text = report.render_json();
        let back = CounterReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.render_json(), text);
    }

    #[test]
    fn csv_has_one_column_per_counter() {
        let report = CounterReport {
            machine: "t3d".into(),
            op: "load".into(),
            title: "t".into(),
            robustness: CounterSet::new(),
            cells: vec![
                CellReport {
                    ws_bytes: 1024,
                    stride: 1,
                    mb_s_bits: 800.0f64.to_bits(),
                    counters: {
                        let mut c = CounterSet::new();
                        c.set("beta", 2);
                        c
                    },
                },
                CellReport {
                    ws_bytes: 1024,
                    stride: 8,
                    mb_s_bits: 100.0f64.to_bits(),
                    counters: {
                        let mut c = CounterSet::new();
                        c.set("alpha", 7);
                        c
                    },
                },
            ],
        };
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ws_bytes,stride,mb_s,alpha,beta");
        assert_eq!(lines[1], "1024,1,800.0,0,2");
        assert_eq!(lines[2], "1024,8,100.0,7,0");
    }

    #[test]
    fn robustness_counters_render_only_when_present_and_round_trip() {
        let mut report = CounterReport {
            machine: "t3d".into(),
            op: "load".into(),
            title: "t".into(),
            cells: Vec::new(),
            robustness: CounterSet::new(),
        };
        // Empty: the key is omitted, preserving pre-robustness bytes.
        assert!(!report.render_json().contains("robustness"));
        let back = CounterReport::parse(&report.render_json()).unwrap();
        assert!(back.robustness.is_empty());
        // Non-empty: rendered and round-tripped.
        report.robustness.add("sweep.retries", 3);
        report.robustness.add("sweep.quarantines", 1);
        let text = report.render_json();
        assert!(text.contains("\"robustness\":{\"sweep.quarantines\":1,\"sweep.retries\":3}"));
        let back = CounterReport::parse(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn malformed_reports_are_rejected() {
        for text in [
            "",
            "{}",
            "{\"machine\":\"t3d\",\"op\":\"load\",\"title\":\"t\"}",
            "{\"machine\":\"t3d\",\"op\":\"load\",\"title\":\"t\",\"cells\":[{}]}",
            "{\"machine\":1,\"op\":\"load\",\"title\":\"t\",\"cells\":[]}",
        ] {
            assert!(CounterReport::parse(text).is_err(), "{text:?} should fail");
        }
    }
}
