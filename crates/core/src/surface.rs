//! The 2D bandwidth surface: MB/s over (working set, stride).

/// A measured bandwidth surface (one of the paper's figs 1-8).
///
/// Rows are working sets (ascending), columns are strides (ascending);
/// `values[ws_idx][stride_idx]` is MB/s. Cells may be `NaN`-free by
/// construction: the sweep driver only stores finite bandwidths.
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    title: String,
    strides: Vec<u64>,
    working_sets: Vec<u64>,
    values: Vec<Vec<f64>>,
}

impl Surface {
    /// Builds a surface from its axes and row-major values.
    ///
    /// # Panics
    ///
    /// Panics if the value matrix does not match the axes.
    pub fn new(
        title: impl Into<String>,
        strides: Vec<u64>,
        working_sets: Vec<u64>,
        values: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(values.len(), working_sets.len(), "one row per working set");
        for row in &values {
            assert_eq!(row.len(), strides.len(), "one column per stride");
        }
        Surface {
            title: title.into(),
            strides,
            working_sets,
            values,
        }
    }

    /// The surface's title (e.g. `"Cray T3E local loads"`).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The stride axis.
    pub fn strides(&self) -> &[u64] {
        &self.strides
    }

    /// The working-set axis (bytes).
    pub fn working_sets(&self) -> &[u64] {
        &self.working_sets
    }

    /// Bandwidth at an exact grid point, if it exists.
    pub fn value(&self, ws_bytes: u64, stride: u64) -> Option<f64> {
        let r = self.working_sets.iter().position(|&w| w == ws_bytes)?;
        let c = self.strides.iter().position(|&s| s == stride)?;
        Some(self.values[r][c])
    }

    /// The maximum bandwidth anywhere on the surface.
    pub fn peak(&self) -> f64 {
        self.values.iter().flatten().cloned().fold(0.0, f64::max)
    }

    /// One row (fixed working set) as `(stride, MB/s)` pairs — the shape of
    /// figs 9-14, which fix a large working set and vary the stride.
    pub fn row(&self, ws_bytes: u64) -> Option<Vec<(u64, f64)>> {
        let r = self.working_sets.iter().position(|&w| w == ws_bytes)?;
        Some(
            self.strides
                .iter()
                .cloned()
                .zip(self.values[r].iter().cloned())
                .collect(),
        )
    }

    /// One column (fixed stride) as `(working set, MB/s)` pairs.
    pub fn column(&self, stride: u64) -> Option<Vec<(u64, f64)>> {
        let c = self.strides.iter().position(|&s| s == stride)?;
        Some(
            self.working_sets
                .iter()
                .cloned()
                .zip(self.values.iter().map(|row| row[c]))
                .collect(),
        )
    }

    /// Working-set spectroscopy: the knees of one stride's column.
    ///
    /// Returns the working sets at which bandwidth first drops below
    /// `(1 - drop)` of the running plateau — i.e. where the working set has
    /// just exceeded a level of the memory hierarchy. With the paper's
    /// power-of-two axis the knee at `w` implies a cache of roughly `w / 2`
    /// bytes, which [`Surface::inferred_cache_bytes`] reports directly.
    pub fn knees(&self, stride: u64, drop: f64) -> Option<Vec<u64>> {
        let column = self.column(stride)?;
        let mut knees = Vec::new();
        let mut plateau = column.first()?.1;
        for &(ws, v) in column.iter().skip(1) {
            if v < plateau * (1.0 - drop) {
                knees.push(ws);
            }
            plateau = v.min(plateau);
        }
        Some(knees)
    }

    /// The cache capacities a contiguous-load column implies: half of each
    /// knee working set (the largest measured set that still fit).
    pub fn inferred_cache_bytes(&self) -> Vec<u64> {
        self.knees(1, 0.2)
            .unwrap_or_default()
            .iter()
            .map(|w| w / 2)
            .collect()
    }

    /// Cell-wise ratio of two surfaces measured on the same grid: the shape
    /// of the paper's cross-machine comparisons ("Contiguous loads from
    /// local DRAM memory on the Cray T3D are about 30% faster than in the
    /// DEC 8400", §5.3). Returns `None` if the grids differ.
    pub fn ratio(&self, denominator: &Surface) -> Option<Surface> {
        if self.strides != denominator.strides || self.working_sets != denominator.working_sets {
            return None;
        }
        let values = self
            .values
            .iter()
            .zip(&denominator.values)
            .map(|(a, b)| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| if *y > 0.0 { x / y } else { 0.0 })
                    .collect()
            })
            .collect();
        Some(Surface::new(
            format!("{} / {}", self.title, denominator.title),
            self.strides.clone(),
            self.working_sets.clone(),
            values,
        ))
    }

    /// Renders the surface as CSV: header `ws_bytes,<stride>,...`, one line
    /// per working set.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ws_bytes");
        for s in &self.strides {
            out.push_str(&format!(",s{s}"));
        }
        out.push('\n');
        for (ws, row) in self.working_sets.iter().zip(&self.values) {
            out.push_str(&ws.to_string());
            for v in row {
                out.push_str(&format!(",{v:.1}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders an aligned text table (MB/s, integers) for terminals: the
    /// repository's replacement for the paper's 3D plots.
    pub fn render(&self) -> String {
        fn human(ws: u64) -> String {
            if ws >= 1 << 20 {
                format!("{}M", ws >> 20)
            } else if ws >= 1 << 10 {
                format!("{}K", ws >> 10)
            } else {
                format!("{ws}B")
            }
        }
        let mut out = format!("{} (MB/s; rows = working set, cols = stride)\n", self.title);
        out.push_str(&format!("{:>8}", "ws"));
        for s in &self.strides {
            out.push_str(&format!("{s:>7}"));
        }
        out.push('\n');
        for (ws, row) in self.working_sets.iter().zip(&self.values) {
            out.push_str(&format!("{:>8}", human(*ws)));
            for v in row {
                out.push_str(&format!("{:>7.0}", v));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Surface {
        Surface::new(
            "test",
            vec![1, 8],
            vec![1024, 1 << 20],
            vec![vec![800.0, 790.0], vec![150.0, 30.0]],
        )
    }

    #[test]
    fn value_lookup() {
        let s = sample();
        assert_eq!(s.value(1024, 1), Some(800.0));
        assert_eq!(s.value(1 << 20, 8), Some(30.0));
        assert_eq!(s.value(2048, 1), None);
        assert_eq!(s.value(1024, 3), None);
    }

    #[test]
    fn peak_row_column() {
        let s = sample();
        assert_eq!(s.peak(), 800.0);
        assert_eq!(s.row(1 << 20).unwrap(), vec![(1, 150.0), (8, 30.0)]);
        assert_eq!(s.column(8).unwrap(), vec![(1024, 790.0), (1 << 20, 30.0)]);
    }

    #[test]
    fn csv_round_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "ws_bytes,s1,s8");
        assert!(lines[1].starts_with("1024,800.0"));
    }

    #[test]
    fn render_contains_axes() {
        let text = sample().render();
        assert!(text.contains("1K"));
        assert!(text.contains("1M"));
        assert!(text.contains("800"));
    }

    #[test]
    #[should_panic(expected = "one row per working set")]
    fn mismatched_matrix_panics() {
        Surface::new("bad", vec![1], vec![1, 2], vec![vec![1.0]]);
    }

    #[test]
    fn knees_mark_hierarchy_boundaries() {
        // Synthetic three-plateau column: 800 (cache) / 400 (L2) / 100 (DRAM).
        let s = Surface::new(
            "knees",
            vec![1],
            vec![4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10],
            vec![
                vec![800.0],
                vec![800.0],
                vec![400.0],
                vec![400.0],
                vec![100.0],
                vec![100.0],
            ],
        );
        assert_eq!(s.knees(1, 0.2).unwrap(), vec![16 << 10, 64 << 10]);
        assert_eq!(s.inferred_cache_bytes(), vec![8 << 10, 32 << 10]);
        assert_eq!(s.knees(3, 0.2), None, "unknown stride");
    }

    #[test]
    fn ratio_divides_cell_wise() {
        let a = sample();
        let b = Surface::new(
            "other",
            vec![1, 8],
            vec![1024, 1 << 20],
            vec![vec![400.0, 395.0], vec![75.0, 0.0]],
        );
        let r = a.ratio(&b).unwrap();
        assert_eq!(r.value(1024, 1), Some(2.0));
        assert_eq!(r.value(1 << 20, 1), Some(2.0));
        assert_eq!(
            r.value(1 << 20, 8),
            Some(0.0),
            "division by zero maps to zero"
        );
        assert!(r.title().contains('/'));
        // Mismatched grids refuse.
        let c = Surface::new("tiny", vec![1], vec![1024], vec![vec![1.0]]);
        assert!(a.ratio(&c).is_none());
    }

    #[test]
    fn flat_column_has_no_knees() {
        let s = Surface::new(
            "flat",
            vec![1],
            vec![1024, 2048],
            vec![vec![500.0], vec![495.0]],
        );
        assert!(s.knees(1, 0.2).unwrap().is_empty());
    }
}
