//! The compiler-facing transfer cost model.
//!
//! "If a given platform allows more than one way to implement a
//! communication step, the modeled bandwidth metric is used to determine the
//! best way to implement this communication step" (§4.1). This module is
//! that decision procedure: it measures the candidate implementations of a
//! strided remote transfer on a machine and picks the cheapest.
//!
//! The candidate strategies for moving `n` words whose remote side has a
//! given stride:
//!
//! * **Deposit** — strided remote stores (T3D's preferred style);
//! * **Fetch** — strided remote loads (8400's only style, T3E's preferred
//!   style for even strides);
//! * **PackAndDeposit / PackAndFetch** — first rearrange locally into a
//!   contiguous buffer, then send contiguously. The paper's §9 finding is
//!   that this "never pays off" on these machines because remote bandwidth
//!   is at least local copy bandwidth.

use gasnub_machines::{Machine, MachineId};
use gasnub_memsim::WORD_BYTES;

/// A candidate implementation of a strided remote transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Strided remote stores (push).
    Deposit,
    /// Strided remote loads (pull).
    Fetch,
    /// Local strided-to-contiguous copy, then contiguous push.
    PackAndDeposit,
    /// Local strided-to-contiguous copy, then contiguous pull.
    PackAndFetch,
    /// Partition the transfer into cache-resident sub-blocks pulled
    /// cache-to-cache: §6.2's "strided remote transfers can be done faster
    /// from L3 cache if a global communication operation can be blocked".
    BlockedFetch,
}

impl Strategy {
    /// All candidate strategies.
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::Deposit,
            Strategy::Fetch,
            Strategy::PackAndDeposit,
            Strategy::PackAndFetch,
            Strategy::BlockedFetch,
        ]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::Deposit => "deposit (strided remote stores)",
            Strategy::Fetch => "fetch (strided remote loads)",
            Strategy::PackAndDeposit => "pack locally + contiguous deposit",
            Strategy::PackAndFetch => "pack locally + contiguous fetch",
            Strategy::BlockedFetch => "cache-blocked fetch (cache-to-cache sub-blocks)",
        };
        f.write_str(s)
    }
}

/// A priced strategy for a concrete transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEstimate {
    /// The strategy priced.
    pub strategy: Strategy,
    /// Estimated time in microseconds.
    pub us: f64,
    /// Effective bandwidth in MB/s.
    pub mb_s: f64,
}

/// Bandwidths (MB/s) measured for one stride.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StrideRates {
    stride: u64,
    deposit: Option<f64>,
    fetch: Option<f64>,
    local_pack: f64,
    /// Fetch rate with a cache-resident working set (the blocked regime),
    /// when the machine supports fetch.
    blocked_fetch: Option<f64>,
}

/// Per-sub-block synchronization cost of the blocked strategy, in
/// microseconds (the producer and consumer must hand off each block).
const BLOCK_SYNC_US: f64 = 20.0;

/// A measured per-machine cost model over a set of strides.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    machine: MachineId,
    clock_mhz: f64,
    ws_bytes: u64,
    block_bytes: u64,
    deposit_contig: Option<f64>,
    fetch_contig: Option<f64>,
    rates: Vec<StrideRates>,
}

impl CostModel {
    /// Measures the candidate implementations on `machine` for the given
    /// strides, using a working set of `ws_bytes` (large working sets give
    /// the asymptotic model of §6; figs 12-14 use 65 MB). The blocked
    /// strategy is priced at a 2 MB sub-block (half the 8400's L3).
    pub fn characterize(machine: &mut dyn Machine, strides: &[u64], ws_bytes: u64) -> Self {
        Self::characterize_with_block(machine, strides, ws_bytes, 2 << 20)
    }

    /// [`CostModel::characterize`] with an explicit blocked sub-block size.
    pub fn characterize_with_block(
        machine: &mut dyn Machine,
        strides: &[u64],
        ws_bytes: u64,
        block_bytes: u64,
    ) -> Self {
        let deposit_contig = machine.remote_deposit(ws_bytes, 1).map(|m| m.mb_s);
        let fetch_contig = machine.remote_fetch(ws_bytes, 1).map(|m| m.mb_s);
        let rates = strides
            .iter()
            .map(|&stride| StrideRates {
                stride,
                deposit: machine.remote_deposit(ws_bytes, stride).map(|m| m.mb_s),
                fetch: machine.remote_fetch(ws_bytes, stride).map(|m| m.mb_s),
                // Packing rearranges with strided loads into a contiguous
                // buffer.
                local_pack: machine.local_copy(ws_bytes, stride, 1).mb_s,
                blocked_fetch: machine.remote_fetch(block_bytes, stride).map(|m| m.mb_s),
            })
            .collect();
        CostModel {
            machine: machine.id(),
            clock_mhz: machine.clock_mhz(),
            ws_bytes,
            block_bytes,
            deposit_contig,
            fetch_contig,
            rates,
        }
    }

    /// Which machine this model describes.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The strides the model covers.
    pub fn strides(&self) -> Vec<u64> {
        self.rates.iter().map(|r| r.stride).collect()
    }

    fn rate_for(&self, stride: u64) -> Option<&StrideRates> {
        self.rates.iter().find(|r| r.stride == stride)
    }

    /// Prices one strategy for moving `words` words at `stride`, or `None`
    /// when the machine does not support it (or the stride was not
    /// characterized).
    pub fn estimate(
        &self,
        strategy: Strategy,
        words: u64,
        stride: u64,
    ) -> Option<TransferEstimate> {
        let r = self.rate_for(stride)?;
        let bytes = (words * WORD_BYTES) as f64;
        let us_at = |mb_s: f64| bytes / mb_s; // bytes / (MB/s) = µs
        let us = match strategy {
            Strategy::Deposit => us_at(r.deposit?),
            Strategy::Fetch => us_at(r.fetch?),
            Strategy::PackAndDeposit => us_at(r.local_pack) + us_at(self.deposit_contig?),
            Strategy::PackAndFetch => us_at(r.local_pack) + us_at(self.fetch_contig?),
            Strategy::BlockedFetch => {
                let blocks = ((words * WORD_BYTES) as f64 / self.block_bytes as f64).ceil();
                us_at(r.blocked_fetch?) + blocks * BLOCK_SYNC_US
            }
        };
        Some(TransferEstimate {
            strategy,
            us,
            mb_s: bytes / us,
        })
    }

    /// Prices every supported strategy, cheapest first.
    pub fn rank(&self, words: u64, stride: u64) -> Vec<TransferEstimate> {
        let mut out: Vec<TransferEstimate> = Strategy::all()
            .iter()
            .filter_map(|&s| self.estimate(s, words, stride))
            .collect();
        out.sort_by(|a, b| a.us.partial_cmp(&b.us).expect("estimates are finite"));
        out
    }

    /// The cheapest supported strategy.
    ///
    /// # Panics
    ///
    /// Panics if no strategy is supported for `stride` (stride not in the
    /// characterized set).
    pub fn best(&self, words: u64, stride: u64) -> TransferEstimate {
        self.rank(words, stride)
            .into_iter()
            .next()
            .expect("at least one strategy must be supported")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_machines::{Dec8400, MeasureLimits, T3d, T3e};

    // Large enough to be DRAM-resident even past the 8400's 4 MB L3 — the
    // cost model's asymptotic regime (the paper's figs 12-14 use 65 MB).
    const WS: u64 = 32 << 20;

    fn model<M: Machine>(mut m: M) -> CostModel {
        m.set_limits(MeasureLimits::fast());
        CostModel::characterize(&mut m, &[1, 15, 16], WS)
    }

    #[test]
    fn t3d_prefers_deposit() {
        // §9: "On the T3D, pulling data (fetch model) proves to be
        // consistently inferior than pushing data (deposit model)."
        let m = model(T3d::new());
        for stride in [1, 15, 16] {
            let best = m.best(100_000, stride);
            assert_eq!(
                best.strategy,
                Strategy::Deposit,
                "stride {stride}: {best:?}"
            );
        }
    }

    #[test]
    fn t3e_prefers_fetch_for_even_strides() {
        // §9: "On the T3E, pulling data seems to work equally well (odd
        // strides) or better (even strides) than pushing data."
        let m = model(T3e::new());
        let best = m.best(100_000, 16);
        assert_eq!(best.strategy, Strategy::Fetch);
        // Odd strides: roughly equal; neither should dominate by 2x.
        let dep = m.estimate(Strategy::Deposit, 100_000, 15).unwrap();
        let fetch = m.estimate(Strategy::Fetch, 100_000, 15).unwrap();
        let ratio = dep.us / fetch.us;
        assert!(ratio < 2.0 && ratio > 0.5, "odd-stride ratio {ratio}");
    }

    #[test]
    fn dec8400_only_pulls() {
        let m = model(Dec8400::new());
        let best = m.best(100_000, 16);
        assert!(
            matches!(
                best.strategy,
                Strategy::Fetch | Strategy::PackAndFetch | Strategy::BlockedFetch
            ),
            "the 8400 cannot deposit: {best:?}"
        );
        assert!(m.estimate(Strategy::Deposit, 100_000, 16).is_none());
    }

    #[test]
    fn blocked_fetch_wins_strided_transfers_on_the_8400() {
        // §6.2/§9: "strided remote transfers can be done faster from L3
        // cache if a global communication operation can be blocked" — the
        // L3-resident supplier beats the DRAM-resident one.
        let m = model(Dec8400::new());
        let blocked = m.estimate(Strategy::BlockedFetch, 1 << 20, 16).unwrap();
        let straight = m.estimate(Strategy::Fetch, 1 << 20, 16).unwrap();
        assert!(
            blocked.us < straight.us,
            "blocked {blocked:?} must beat straight {straight:?} on the 8400"
        );
    }

    #[test]
    fn blocked_fetch_does_not_help_the_crays() {
        // The Crays' remote rates do not depend on the producer's caches
        // (E-registers and the deposit circuitry read/write memory
        // directly), so blocking only adds synchronization.
        for m in [model(T3d::new()), model(T3e::new())] {
            let best = m.best(1 << 20, 16);
            assert_ne!(
                best.strategy,
                Strategy::BlockedFetch,
                "{:?}: {best:?}",
                m.machine()
            );
        }
    }

    #[test]
    fn packing_never_pays_off() {
        // §9: "using local memory copies to rearrange access patterns, or
        // pack communication buffers or blocks, never pays off."
        for m in [model(T3d::new()), model(T3e::new()), model(Dec8400::new())] {
            for stride in [15, 16] {
                let best = m.best(100_000, stride);
                assert!(
                    !matches!(
                        best.strategy,
                        Strategy::PackAndDeposit | Strategy::PackAndFetch
                    ),
                    "{:?}: packing won at stride {stride}: {best:?}",
                    m.machine()
                );
            }
        }
    }

    #[test]
    fn rank_is_sorted_and_estimates_scale_linearly() {
        let m = model(T3d::new());
        let ranked = m.rank(10_000, 16);
        assert!(ranked.windows(2).all(|w| w[0].us <= w[1].us));
        let one = m.estimate(Strategy::Deposit, 10_000, 16).unwrap();
        let ten = m.estimate(Strategy::Deposit, 100_000, 16).unwrap();
        assert!((ten.us / one.us - 10.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_stride_is_none() {
        let m = model(T3d::new());
        assert!(m.estimate(Strategy::Deposit, 10, 7).is_none());
    }
}
