//! A minimal JSON reader/writer for sweep checkpoints.
//!
//! The repository builds without external crates, so the resilient sweep
//! runner persists its checkpoints through this small, dependency-free
//! module. It covers exactly the JSON subset the checkpoints use — objects,
//! arrays, strings, booleans, `null`, and *unsigned integers* — and nothing
//! more. Floating-point bandwidths are stored as their IEEE-754 bit
//! patterns (`f64::to_bits`), which round-trip exactly where a decimal
//! rendering would not; that is what makes resumed sweeps bit-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gasnub_memsim::SimError;

/// A JSON value (checkpoint subset: numbers are unsigned integers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers counts, axes, and `f64::to_bits`).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), so rendering is canonical:
    /// the same value always serializes to the same bytes.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value of an object's field, if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to canonical (sorted-key, no-whitespace) JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Malformed`] on any syntax error, trailing
    /// garbage, or a number outside the supported unsigned-integer subset.
    pub fn parse(text: &str) -> Result<Json, SimError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(SimError::malformed(format!("trailing data at byte {pos}")));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), SimError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(SimError::malformed(format!(
            "expected '{}' at byte {}",
            b as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, SimError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() => parse_number(bytes, pos),
        _ => Err(SimError::malformed(format!(
            "unexpected input at byte {}",
            *pos
        ))),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, SimError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(SimError::malformed(format!(
            "expected '{word}' at byte {}",
            *pos
        )))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, SimError> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if let Some(b'.' | b'e' | b'E' | b'-' | b'+') = bytes.get(*pos) {
        return Err(SimError::malformed(format!(
            "only unsigned integers are supported (byte {start})"
        )));
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| SimError::malformed("non-utf8 number"))?;
    text.parse::<u64>()
        .map(Json::U64)
        .map_err(|_| SimError::malformed(format!("number out of range at byte {start}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, SimError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(SimError::malformed("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| SimError::malformed("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| SimError::malformed("non-utf8 \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| SimError::malformed("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| SimError::malformed("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(SimError::malformed("unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one (possibly multi-byte) UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| SimError::malformed("non-utf8 string"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| SimError::malformed("empty char"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, SimError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => {
                return Err(SimError::malformed(format!(
                    "expected ',' or ']' at byte {}",
                    *pos
                )))
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, SimError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => {
                return Err(SimError::malformed(format!(
                    "expected ',' or '}}' at byte {}",
                    *pos
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "18446744073709551615",
            "\"hi\"",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text);
            assert_eq!(Json::parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for x in [0.0, -0.0, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, f64::NAN] {
            let v = Json::U64(x.to_bits());
            let back = Json::parse(&v.render()).unwrap().as_u64().unwrap();
            assert_eq!(back, x.to_bits());
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::object([
            (
                "title",
                Json::Str("T3E remote deposit (\"fig 8\")\n".into()),
            ),
            ("axes", Json::Array(vec![Json::U64(1), Json::U64(2)])),
            ("done", Json::Bool(false)),
            ("gap", Json::Null),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn canonical_rendering_sorts_keys() {
        let a = Json::object([("b", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(a.render(), "{\"a\":2,\"b\":1}");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] , \"s\" : \"x\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "1.5",
            "-3",
            "1e9",
            "true false",
            "{]",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        let v = Json::U64(3);
        assert!(v.get("x").is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_array().is_none());
        assert_eq!(v.as_u64(), Some(3));
    }
}
