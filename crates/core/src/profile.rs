//! One-call characterization of a machine: every surface the paper draws
//! for it, bundled with a text report.

use gasnub_machines::{Machine, MachineId, SpawnEngine};
use gasnub_memsim::SimError;

use crate::bench::{
    local_copy_surface, local_load_surface, remote_deposit_surface, remote_fetch_surface,
    remote_load_surface, sweep_surface_par, CopyVariant, SweepOp,
};
use crate::surface::Surface;
use crate::sweep::Grid;

/// The full characterization of one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Which machine was profiled.
    pub machine: MachineId,
    /// Human-readable machine name.
    pub name: String,
    /// Local Load-Sum surface (figs 1/3/6).
    pub local_loads: Surface,
    /// Local copy, strided loads (figs 9-11, `o` series).
    pub copy_strided_loads: Surface,
    /// Local copy, strided stores (figs 9-11, `◆`/`x` series).
    pub copy_strided_stores: Surface,
    /// Pure remote loads (fig 2), when supported.
    pub remote_loads: Option<Surface>,
    /// Fetch transfers (figs 4/7/12-14), when supported.
    pub remote_fetch: Option<Surface>,
    /// Deposit transfers (figs 5/8/13-14), when supported.
    pub remote_deposit: Option<Surface>,
}

impl MachineProfile {
    /// Measures every supported surface of `machine` over `local_grid`
    /// (local benchmarks) and `remote_grid` (remote benchmarks).
    pub fn measure(machine: &mut dyn Machine, local_grid: &Grid, remote_grid: &Grid) -> Self {
        MachineProfile {
            machine: machine.id(),
            name: machine.name(),
            local_loads: local_load_surface(machine, local_grid),
            copy_strided_loads: local_copy_surface(machine, local_grid, CopyVariant::StridedLoads),
            copy_strided_stores: local_copy_surface(
                machine,
                local_grid,
                CopyVariant::StridedStores,
            ),
            remote_loads: remote_load_surface(machine, remote_grid),
            remote_fetch: remote_fetch_surface(machine, remote_grid),
            remote_deposit: remote_deposit_surface(machine, remote_grid),
        }
    }

    /// Measures the same profile as [`MachineProfile::measure`], but with
    /// every surface's cells grouped into same-stride runs, each run walked
    /// on a warm engine spawned from `spawner` ([`gasnub_machines::WarmState`])
    /// and the runs spread across `threads` workers. Because a flushed
    /// engine is indistinguishable from a fresh one, the profile is
    /// bit-identical to the sequential one for any thread count.
    ///
    /// # Errors
    ///
    /// Returns any [`SimError`] from `spawner`.
    pub fn measure_parallel<S: SpawnEngine>(
        spawner: &S,
        local_grid: &Grid,
        remote_grid: &Grid,
        threads: usize,
    ) -> Result<Self, SimError> {
        let probe = spawner.spawn_engine()?;
        let surface = |op: SweepOp, grid: &Grid| sweep_surface_par(spawner, op, grid, threads);
        Ok(MachineProfile {
            machine: probe.id(),
            name: probe.name(),
            local_loads: surface(SweepOp::LocalLoad, local_grid)?
                .expect("local loads are supported everywhere"),
            copy_strided_loads: surface(SweepOp::CopyStridedLoads, local_grid)?
                .expect("local copies are supported everywhere"),
            copy_strided_stores: surface(SweepOp::CopyStridedStores, local_grid)?
                .expect("local copies are supported everywhere"),
            remote_loads: surface(SweepOp::RemoteLoad, remote_grid)?,
            remote_fetch: surface(SweepOp::RemoteFetch, remote_grid)?,
            remote_deposit: surface(SweepOp::RemoteDeposit, remote_grid)?,
        })
    }

    /// All surfaces present in this profile, in a stable order.
    pub fn surfaces(&self) -> Vec<&Surface> {
        let mut out = vec![
            &self.local_loads,
            &self.copy_strided_loads,
            &self.copy_strided_stores,
        ];
        out.extend(self.remote_loads.iter());
        out.extend(self.remote_fetch.iter());
        out.extend(self.remote_deposit.iter());
        out
    }

    /// Renders every surface as one text report.
    pub fn report(&self) -> String {
        let mut out = format!("==== {} ====\n\n", self.name);
        for s in self.surfaces() {
            out.push_str(&s.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasnub_machines::{Dec8400, MeasureLimits, T3d};

    #[test]
    fn t3d_profile_has_both_remote_directions() {
        let mut m = T3d::new();
        m.set_limits(MeasureLimits::fast());
        let grid = Grid {
            strides: vec![1, 16],
            working_sets: vec![1 << 20],
        };
        let p = MachineProfile::measure(&mut m, &grid, &grid);
        assert!(p.remote_fetch.is_some());
        assert!(p.remote_deposit.is_some());
        assert!(p.remote_loads.is_none());
        assert_eq!(p.surfaces().len(), 5);
        assert!(p.report().contains("local loads"));
    }

    #[test]
    fn parallel_profile_is_bit_identical_to_sequential() {
        use gasnub_machines::MachineSpec;
        let spec = MachineSpec::t3e().with_limits(MeasureLimits::fast());
        let grid = Grid {
            strides: vec![1, 16],
            working_sets: vec![1 << 20],
        };
        let mut m = gasnub_machines::T3e::new();
        m.set_limits(MeasureLimits::fast());
        let sequential = MachineProfile::measure(&mut m, &grid, &grid);
        let parallel = MachineProfile::measure_parallel(&spec, &grid, &grid, 4).unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn dec8400_profile_has_pull_only() {
        let mut m = Dec8400::new();
        m.set_limits(MeasureLimits::fast());
        let grid = Grid {
            strides: vec![1],
            working_sets: vec![1 << 20],
        };
        let p = MachineProfile::measure(&mut m, &grid, &grid);
        assert!(p.remote_loads.is_some());
        assert!(p.remote_deposit.is_none());
        assert_eq!(p.machine, MachineId::Dec8400);
    }
}
