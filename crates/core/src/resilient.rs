//! A resilient sweep runner: checkpointed, resumable, panic-isolating.
//!
//! The paper's surfaces are thousands of simulated measurements; on a
//! degraded machine model (or a buggy experimental one) a single cell can
//! panic, and a long sweep can outlive a batch-queue time slot. This runner
//! makes the sweep loop of [`crate::bench`] robust:
//!
//! * **Checkpointing** — after every measured cell the partial surface is
//!   written to a JSON checkpoint (atomically: temp file + rename), so an
//!   interrupted sweep loses at most one cell.
//! * **Resume** — re-running with the same checkpoint path skips every cell
//!   already recorded and produces a surface *bit-identical* to an
//!   uninterrupted run: bandwidths are persisted as `f64::to_bits`.
//! * **Panic isolation** — a cell that panics is caught with
//!   `catch_unwind`, recorded as failed (its cell renders as `NaN`), and
//!   the sweep moves on.
//! * **Wall-clock budget** — an optional time budget stops the sweep
//!   between cells and reports the remainder as pending instead of running
//!   past a deadline.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gasnub_machines::SpawnEngine;
use gasnub_memsim::SimError;

use crate::json::Json;
use crate::surface::Surface;
use crate::sweep::Grid;

/// A cell whose probe panicked or reported the operation unsupported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// The cell's working set in bytes.
    pub ws_bytes: u64,
    /// The cell's stride in words.
    pub stride: u64,
    /// The panic message or failure reason.
    pub error: String,
}

/// The result of a resilient sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The (possibly partial) surface. Failed and pending cells are `NaN`.
    pub surface: Surface,
    /// Cells measured during *this* run.
    pub measured: usize,
    /// Cells restored from the checkpoint instead of re-measured.
    pub resumed: usize,
    /// Cells whose probe panicked or was unsupported (never retried).
    pub failed: Vec<FailedCell>,
    /// Cells not attempted because the budget or cell cap ran out.
    pub pending: usize,
}

impl SweepOutcome {
    /// Whether every cell was either measured or recorded as failed.
    pub fn is_complete(&self) -> bool {
        self.pending == 0
    }
}

/// Checkpointed sweep driver; see the module docs.
#[derive(Debug, Clone)]
pub struct ResilientSweep {
    checkpoint: PathBuf,
    budget: Option<Duration>,
    max_cells: Option<usize>,
}

impl ResilientSweep {
    /// Creates a runner persisting its checkpoint at `checkpoint`.
    pub fn new(checkpoint: impl Into<PathBuf>) -> Self {
        ResilientSweep {
            checkpoint: checkpoint.into(),
            budget: None,
            max_cells: None,
        }
    }

    /// Limits the wall-clock time spent measuring. The budget is checked
    /// *between* cells: a sweep never abandons a cell mid-measurement.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Limits how many cells this run may measure (useful for slot-sized
    /// chunks of a long sweep, and for testing resume).
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// The checkpoint path.
    pub fn checkpoint_path(&self) -> &Path {
        &self.checkpoint
    }

    /// Removes the checkpoint, so the next run starts from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] if the file exists but cannot be removed.
    pub fn clear_checkpoint(&self) -> Result<(), SimError> {
        match std::fs::remove_file(&self.checkpoint) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(SimError::io(format!(
                "removing {}: {e}",
                self.checkpoint.display()
            ))),
        }
    }

    /// Runs (or resumes) the sweep of `grid` with `probe`.
    ///
    /// `probe` returns the cell's bandwidth in MB/s, or `None` when the
    /// operation is unsupported on this machine (recorded as failed).
    /// The checkpoint is rewritten after every attempted cell.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Malformed`] when an existing checkpoint does not
    /// parse or belongs to a different sweep (title or axes differ), and
    /// [`SimError::Io`] when the checkpoint cannot be read or written.
    pub fn run(
        &self,
        title: &str,
        grid: &Grid,
        mut probe: impl FnMut(u64, u64) -> Option<f64>,
    ) -> Result<SweepOutcome, SimError> {
        let mut state = self.load_state(title, grid)?;
        let resumed = state.done.len();
        let started = Instant::now();
        let mut measured = 0usize;
        let mut pending = 0usize;

        for &ws in &grid.working_sets {
            for &stride in &grid.strides {
                let key = (ws, stride);
                if state.done.contains_key(&key) || state.failed.contains_key(&key) {
                    continue;
                }
                let over_budget = self.budget.is_some_and(|b| started.elapsed() >= b);
                let over_cells = self.max_cells.is_some_and(|m| measured >= m);
                if over_budget || over_cells {
                    pending += 1;
                    continue;
                }
                match catch_unwind(AssertUnwindSafe(|| probe(ws, stride))) {
                    Ok(Some(mb_s)) => {
                        state.done.insert(key, mb_s.to_bits());
                    }
                    Ok(None) => {
                        state.failed.insert(key, UNSUPPORTED.to_string());
                    }
                    Err(panic) => {
                        state.failed.insert(key, panic_text(panic.as_ref()));
                    }
                }
                measured += 1;
                self.save_state(title, grid, &state)?;
            }
        }

        Ok(self.outcome(title, grid, state, measured, resumed, pending))
    }

    /// Runs (or resumes) the sweep of `grid` across `threads` workers, each
    /// cell on a fresh engine spawned from `spawner`.
    ///
    /// Because every cell gets its own engine and each probe is
    /// deterministic, the outcome — surface values, checkpoint bytes, failed
    /// cells — is bit-identical to [`ResilientSweep::run`] with the
    /// equivalent probe, regardless of thread count or completion order:
    /// the checkpoint keeps cells in a `BTreeMap` and the surface is
    /// assembled in grid order after the pool drains. `threads <= 1` still
    /// measures every cell on a fresh engine, sequentially.
    ///
    /// A wall-clock budget is checked when a worker *claims* a cell, so an
    /// over-budget sweep finishes only the cells already in flight; a cell
    /// cap bounds the cells claimed in total across all workers.
    ///
    /// # Errors
    ///
    /// Everything [`ResilientSweep::run`] returns, plus any [`SimError`]
    /// from `spawner` — a spawn failure stops the pool and fails the sweep
    /// (the checkpoint keeps all cells finished before the failure).
    pub fn run_parallel<S, P>(
        &self,
        title: &str,
        grid: &Grid,
        threads: usize,
        spawner: &S,
        probe: P,
    ) -> Result<SweepOutcome, SimError>
    where
        S: SpawnEngine,
        P: Fn(&mut S::Engine, u64, u64) -> Option<f64> + Sync,
    {
        let state = self.load_state(title, grid)?;
        let resumed = state.done.len();
        let started = Instant::now();

        // The cells left to measure, in grid order. The cell cap splits off
        // the tail up front — unlike the budget, it is deterministic.
        let work: Vec<(u64, u64)> = (0..grid.cells())
            .map(|i| grid.cell(i))
            .filter(|key| !state.done.contains_key(key) && !state.failed.contains_key(key))
            .collect();
        let allowed = work.len().min(self.max_cells.unwrap_or(usize::MAX));
        let (attempt, capped) = work.split_at(allowed);

        let state = Mutex::new(state);
        let fatal: Mutex<Option<SimError>> = Mutex::new(None);
        let stop = AtomicBool::new(false);
        let next = AtomicUsize::new(0);
        // Cells claimed after the budget expired: pending, not measured.
        let deferred = AtomicUsize::new(0);

        let workers = threads.max(1).min(attempt.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= attempt.len() {
                        break;
                    }
                    if self.budget.is_some_and(|b| started.elapsed() >= b) {
                        // Keep claiming so every remaining cell is counted.
                        deferred.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let (ws, stride) = attempt[i];
                    let mut engine = match spawner.spawn_engine() {
                        Ok(engine) => engine,
                        Err(err) => {
                            *fatal.lock().unwrap() = Some(err);
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| probe(&mut engine, ws, stride)));
                    let mut state = state.lock().unwrap();
                    match result {
                        Ok(Some(mb_s)) => {
                            state.done.insert((ws, stride), mb_s.to_bits());
                        }
                        Ok(None) => {
                            state.failed.insert((ws, stride), UNSUPPORTED.to_string());
                        }
                        Err(panic) => {
                            state
                                .failed
                                .insert((ws, stride), panic_text(panic.as_ref()));
                        }
                    }
                    if let Err(err) = self.save_state(title, grid, &state) {
                        drop(state);
                        *fatal.lock().unwrap() = Some(err);
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                });
            }
        });

        if let Some(err) = fatal.into_inner().unwrap() {
            return Err(err);
        }
        let deferred = deferred.into_inner();
        let measured = attempt.len() - deferred;
        let pending = capped.len() + deferred;
        let state = state.into_inner().unwrap();
        Ok(self.outcome(title, grid, state, measured, resumed, pending))
    }

    /// Assembles the surface and outcome from the final checkpoint state.
    fn outcome(
        &self,
        title: &str,
        grid: &Grid,
        state: SweepState,
        measured: usize,
        resumed: usize,
        pending: usize,
    ) -> SweepOutcome {
        let values = grid
            .working_sets
            .iter()
            .map(|&ws| {
                grid.strides
                    .iter()
                    .map(|&stride| {
                        state
                            .done
                            .get(&(ws, stride))
                            .map_or(f64::NAN, |&bits| f64::from_bits(bits))
                    })
                    .collect()
            })
            .collect();
        let surface = Surface::new(
            title,
            grid.strides.clone(),
            grid.working_sets.clone(),
            values,
        );
        let failed = state
            .failed
            .iter()
            .map(|(&(ws_bytes, stride), error)| FailedCell {
                ws_bytes,
                stride,
                error: error.clone(),
            })
            .collect();
        SweepOutcome {
            surface,
            measured,
            resumed,
            failed,
            pending,
        }
    }

    fn load_state(&self, title: &str, grid: &Grid) -> Result<SweepState, SimError> {
        let text = match std::fs::read_to_string(&self.checkpoint) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SweepState::default());
            }
            Err(e) => {
                return Err(SimError::io(format!(
                    "reading {}: {e}",
                    self.checkpoint.display()
                )))
            }
        };
        let doc = Json::parse(&text)?;
        let stored_title = doc.get("title").and_then(Json::as_str);
        if stored_title != Some(title) {
            return Err(SimError::malformed(format!(
                "checkpoint {} belongs to sweep {:?}, not {title:?}",
                self.checkpoint.display(),
                stored_title.unwrap_or("<missing>")
            )));
        }
        let axis = |key: &str| -> Result<Vec<u64>, SimError> {
            doc.get(key)
                .and_then(Json::as_array)
                .map(|items| items.iter().filter_map(Json::as_u64).collect::<Vec<_>>())
                .ok_or_else(|| SimError::malformed(format!("checkpoint missing axis {key:?}")))
        };
        if axis("strides")? != grid.strides || axis("working_sets")? != grid.working_sets {
            return Err(SimError::malformed(format!(
                "checkpoint {} was taken on a different grid",
                self.checkpoint.display()
            )));
        }
        let mut state = SweepState::default();
        for cell in doc.get("cells").and_then(Json::as_array).unwrap_or(&[]) {
            let (ws, stride, bits) = (
                cell.get("ws").and_then(Json::as_u64),
                cell.get("stride").and_then(Json::as_u64),
                cell.get("bits").and_then(Json::as_u64),
            );
            match (ws, stride, bits) {
                (Some(ws), Some(stride), Some(bits)) => {
                    state.done.insert((ws, stride), bits);
                }
                _ => {
                    return Err(SimError::malformed(
                        "checkpoint cell missing ws/stride/bits",
                    ))
                }
            }
        }
        for cell in doc.get("failed").and_then(Json::as_array).unwrap_or(&[]) {
            let (ws, stride, error) = (
                cell.get("ws").and_then(Json::as_u64),
                cell.get("stride").and_then(Json::as_u64),
                cell.get("error").and_then(Json::as_str),
            );
            match (ws, stride, error) {
                (Some(ws), Some(stride), Some(error)) => {
                    state.failed.insert((ws, stride), error.to_string());
                }
                _ => {
                    return Err(SimError::malformed(
                        "checkpoint failure missing ws/stride/error",
                    ))
                }
            }
        }
        Ok(state)
    }

    fn save_state(&self, title: &str, grid: &Grid, state: &SweepState) -> Result<(), SimError> {
        let cells = state
            .done
            .iter()
            .map(|(&(ws, stride), &bits)| {
                Json::object([
                    ("ws", Json::U64(ws)),
                    ("stride", Json::U64(stride)),
                    ("bits", Json::U64(bits)),
                ])
            })
            .collect();
        let failed = state
            .failed
            .iter()
            .map(|(&(ws, stride), error)| {
                Json::object([
                    ("ws", Json::U64(ws)),
                    ("stride", Json::U64(stride)),
                    ("error", Json::Str(error.clone())),
                ])
            })
            .collect();
        let doc = Json::object([
            ("title", Json::Str(title.to_string())),
            (
                "strides",
                Json::Array(grid.strides.iter().map(|&s| Json::U64(s)).collect()),
            ),
            (
                "working_sets",
                Json::Array(grid.working_sets.iter().map(|&w| Json::U64(w)).collect()),
            ),
            ("cells", Json::Array(cells)),
            ("failed", Json::Array(failed)),
        ]);
        let tmp = self.checkpoint.with_extension("tmp");
        std::fs::write(&tmp, doc.render())
            .map_err(|e| SimError::io(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &self.checkpoint)
            .map_err(|e| SimError::io(format!("renaming into {}: {e}", self.checkpoint.display())))
    }
}

/// The failure reason recorded for a probe returning `None`.
const UNSUPPORTED: &str = "operation unsupported on this machine";

/// In-memory checkpoint state: measured bandwidths (as bits) and failures.
#[derive(Debug, Default)]
struct SweepState {
    done: BTreeMap<(u64, u64), u64>,
    failed: BTreeMap<(u64, u64), String>,
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique checkpoint path per test (tests run concurrently).
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gasnub-ckpt-{}-{tag}-{n}.json", std::process::id()))
    }

    fn grid() -> Grid {
        Grid {
            strides: vec![1, 2, 4],
            working_sets: vec![1024, 2048],
        }
    }

    /// A deterministic synthetic probe.
    fn model(ws: u64, stride: u64) -> f64 {
        (ws as f64).sqrt() / stride as f64 + 1.0 / 3.0
    }

    #[test]
    fn complete_run_matches_direct_sweep() {
        let runner = ResilientSweep::new(scratch("complete"));
        let out = runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.measured, grid().cells());
        assert_eq!(out.resumed, 0);
        assert!(out.failed.is_empty());
        assert_eq!(out.surface.value(2048, 4), Some(model(2048, 4)));
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn interrupted_then_resumed_is_bit_identical() {
        let path = scratch("resume");
        let uninterrupted = ResilientSweep::new(scratch("direct"))
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();

        let first = ResilientSweep::new(&path)
            .with_max_cells(3)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(first.measured, 3);
        assert_eq!(first.pending, grid().cells() - 3);
        assert!(!first.is_complete());

        let second = ResilientSweep::new(&path)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(second.resumed, 3);
        assert_eq!(second.measured, grid().cells() - 3);
        assert!(second.is_complete());
        // Bit-identical: compare the stored bit patterns cell by cell.
        for &ws in &grid().working_sets {
            for &s in &grid().strides {
                let a = uninterrupted.surface.value(ws, s).unwrap().to_bits();
                let b = second.surface.value(ws, s).unwrap().to_bits();
                assert_eq!(a, b, "cell ({ws}, {s})");
            }
        }
        ResilientSweep::new(&path).clear_checkpoint().unwrap();
    }

    #[test]
    fn panicking_cell_is_recorded_and_isolated() {
        let runner = ResilientSweep::new(scratch("panic"));
        // Silence the default panic hook's backtrace chatter for this test.
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = runner
            .run("t", &grid(), |ws, s| {
                assert!(!(ws == 2048 && s == 2), "injected failure");
                Some(model(ws, s))
            })
            .unwrap();
        std::panic::set_hook(prior);
        assert!(out.is_complete());
        assert_eq!(out.failed.len(), 1);
        assert_eq!((out.failed[0].ws_bytes, out.failed[0].stride), (2048, 2));
        assert!(
            out.failed[0].error.contains("injected failure"),
            "got {:?}",
            out.failed[0].error
        );
        assert!(out.surface.value(2048, 2).unwrap().is_nan());
        assert_eq!(out.surface.value(2048, 4), Some(model(2048, 4)));
        // A resumed run does not retry the failed cell.
        let again = runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(again.failed.len(), 1);
        assert_eq!(again.measured, 0);
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn unsupported_cells_fail_rather_than_abort() {
        let runner = ResilientSweep::new(scratch("unsupported"));
        let out = runner.run("t", &grid(), |_, _| None).unwrap();
        assert_eq!(out.failed.len(), grid().cells());
        assert!(out.failed.iter().all(|f| f.error.contains("unsupported")));
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn zero_budget_attempts_nothing() {
        let runner = ResilientSweep::new(scratch("budget")).with_budget(Duration::ZERO);
        let out = runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(out.measured, 0);
        assert_eq!(out.pending, grid().cells());
        runner.clear_checkpoint().unwrap();
    }

    use gasnub_machines::{Machine, MachineId, MeasureLimits, Measurement};

    /// A trivial deterministic machine whose every probe reports the
    /// synthetic [`model`] bandwidth; lets the parallel tests exercise the
    /// pool without simulating a real hierarchy.
    struct Synthetic;

    impl Synthetic {
        fn meas(ws: u64, stride: u64) -> Measurement {
            Measurement {
                bytes: ws,
                cycles: 1.0,
                mb_s: model(ws, stride),
            }
        }
    }

    impl Machine for Synthetic {
        fn id(&self) -> MachineId {
            MachineId::Custom
        }
        fn clock_mhz(&self) -> f64 {
            100.0
        }
        fn limits(&self) -> MeasureLimits {
            MeasureLimits::fast()
        }
        fn set_limits(&mut self, _limits: MeasureLimits) {}
        fn local_load(&mut self, ws: u64, stride: u64) -> Measurement {
            Self::meas(ws, stride)
        }
        fn local_store(&mut self, ws: u64, stride: u64) -> Measurement {
            Self::meas(ws, stride)
        }
        fn local_copy(&mut self, ws: u64, load_stride: u64, _store_stride: u64) -> Measurement {
            Self::meas(ws, load_stride)
        }
        fn local_gather(&mut self, ws: u64) -> Measurement {
            Self::meas(ws, 1)
        }
        fn remote_load(&mut self, _ws: u64, _stride: u64) -> Option<Measurement> {
            None
        }
        fn remote_fetch(&mut self, ws: u64, stride: u64) -> Option<Measurement> {
            Some(Self::meas(ws, stride))
        }
        fn remote_deposit(&mut self, ws: u64, stride: u64) -> Option<Measurement> {
            Some(Self::meas(ws, stride))
        }
    }

    fn synthetic_probe(m: &mut Synthetic, ws: u64, stride: u64) -> Option<f64> {
        Some(m.local_load(ws, stride).mb_s)
    }

    #[test]
    fn parallel_run_writes_the_same_checkpoint_bytes_as_sequential() {
        let seq_path = scratch("par-seq");
        let par_path = scratch("par-par");
        let sequential = ResilientSweep::new(&seq_path)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        for threads in [1, 4] {
            let parallel = ResilientSweep::new(&par_path)
                .run_parallel("t", &grid(), threads, &(|| Synthetic), synthetic_probe)
                .unwrap();
            assert_eq!(parallel.measured, sequential.measured, "threads={threads}");
            assert_eq!(
                std::fs::read(&seq_path).unwrap(),
                std::fs::read(&par_path).unwrap(),
                "threads={threads}"
            );
            ResilientSweep::new(&par_path).clear_checkpoint().unwrap();
        }
        ResilientSweep::new(&seq_path).clear_checkpoint().unwrap();
    }

    #[test]
    fn parallel_run_resumes_a_sequential_checkpoint() {
        let path = scratch("par-resume");
        let first = ResilientSweep::new(&path)
            .with_max_cells(2)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(first.measured, 2);
        let second = ResilientSweep::new(&path)
            .run_parallel("t", &grid(), 4, &(|| Synthetic), synthetic_probe)
            .unwrap();
        assert_eq!(second.resumed, 2);
        assert_eq!(second.measured, grid().cells() - 2);
        assert!(second.is_complete());
        for &ws in &grid().working_sets {
            for &s in &grid().strides {
                assert_eq!(second.surface.value(ws, s), Some(model(ws, s)));
            }
        }
        ResilientSweep::new(&path).clear_checkpoint().unwrap();
    }

    #[test]
    fn parallel_panics_are_isolated_per_cell() {
        let runner = ResilientSweep::new(scratch("par-panic"));
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = runner
            .run_parallel(
                "t",
                &grid(),
                3,
                &(|| Synthetic),
                |m: &mut Synthetic, ws, s| {
                    assert!(!(ws == 2048 && s == 2), "injected parallel failure");
                    synthetic_probe(m, ws, s)
                },
            )
            .unwrap();
        std::panic::set_hook(prior);
        assert!(out.is_complete());
        assert_eq!(out.failed.len(), 1);
        assert_eq!((out.failed[0].ws_bytes, out.failed[0].stride), (2048, 2));
        assert!(out.surface.value(2048, 2).unwrap().is_nan());
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn parallel_unsupported_cells_are_recorded() {
        let runner = ResilientSweep::new(scratch("par-unsupported"));
        let out = runner
            .run_parallel(
                "t",
                &grid(),
                2,
                &(|| Synthetic),
                |m: &mut Synthetic, ws, s| m.remote_load(ws, s).map(|r| r.mb_s),
            )
            .unwrap();
        assert_eq!(out.failed.len(), grid().cells());
        assert!(out.failed.iter().all(|f| f.error.contains("unsupported")));
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn parallel_zero_budget_attempts_nothing() {
        let runner = ResilientSweep::new(scratch("par-budget")).with_budget(Duration::ZERO);
        let out = runner
            .run_parallel("t", &grid(), 4, &(|| Synthetic), synthetic_probe)
            .unwrap();
        assert_eq!(out.measured, 0);
        assert_eq!(out.pending, grid().cells());
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn parallel_spawn_failures_stop_the_sweep() {
        struct FailingSpawner;
        impl SpawnEngine for FailingSpawner {
            type Engine = Synthetic;
            fn spawn_engine(&self) -> Result<Synthetic, SimError> {
                Err(SimError::malformed("no engines today"))
            }
        }
        let runner = ResilientSweep::new(scratch("par-spawn-fail"));
        let got = runner.run_parallel("t", &grid(), 2, &FailingSpawner, synthetic_probe);
        assert!(matches!(got, Err(SimError::Malformed { .. })));
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn foreign_checkpoints_are_rejected() {
        let path = scratch("foreign");
        let runner = ResilientSweep::new(&path);
        runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        // Different title.
        assert!(matches!(
            runner.run("other", &grid(), |ws, s| Some(model(ws, s))),
            Err(SimError::Malformed { .. })
        ));
        // Different grid.
        let other = Grid {
            strides: vec![1],
            working_sets: vec![1024],
        };
        assert!(matches!(
            runner.run("t", &other, |ws, s| Some(model(ws, s))),
            Err(SimError::Malformed { .. })
        ));
        // Corrupt file.
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(
            runner.run("t", &grid(), |ws, s| Some(model(ws, s))),
            Err(SimError::Malformed { .. })
        ));
        runner.clear_checkpoint().unwrap();
    }
}
