//! A self-healing sweep runner: checkpointed, resumable, panic-isolating,
//! with durable checksummed checkpoints and per-cell retry / timeout /
//! quarantine policies.
//!
//! The paper's surfaces are thousands of simulated measurements; on a
//! degraded machine model (or a buggy experimental one) a single cell can
//! panic or hang, and a long sweep can outlive a batch-queue time slot.
//! This runner makes the sweep loop of [`crate::bench`] robust:
//!
//! * **Durable checkpointing** — after every attempted cell the partial
//!   surface is written through [`crate::storage`]: atomically (temp file +
//!   rename) and with a CRC32 checksum footer, so a torn or bit-rotted
//!   file is *detected*, never silently treated as empty. Fsyncs are
//!   batched ([`ResilientSweep::with_fsync_every`]): the final write of a
//!   run always syncs, so a completed run is fully durable, and an OS
//!   crash mid-run costs at most the last batch of cells.
//! * **Resume** — re-running with the same checkpoint path verifies the
//!   file's integrity and identity (schema version, title, grid axes),
//!   skips every cell already recorded, and produces a surface
//!   *bit-identical* to an uninterrupted run: bandwidths are persisted as
//!   `f64::to_bits`. A checkpoint that fails verification is a structured
//!   [`CheckpointError`] — the `--force-restart` escape hatch
//!   ([`ResilientSweep::with_force_restart`]) moves it aside to
//!   `<path>.corrupt` and starts fresh, preserving the evidence.
//! * **Retry with seeded backoff** — a panicking cell is re-attempted up to
//!   [`ResilientSweep::with_retries`] times with exponential, seeded-jitter
//!   backoff; a cell that exhausts its budget is **quarantined**: recorded
//!   as a [`FailureKind::Panic`] hole (its cell renders as `NaN`), skipped
//!   on resume, never aborting the run.
//! * **Per-cell wall-clock budgets** — [`ResilientSweep::with_cell_timeout`]
//!   derives a [`CancelToken`] per attempt and installs it on the cell's
//!   engine; instrumented engines bail out of their probe loops
//!   cooperatively and the cell is recorded as [`FailureKind::Timeout`].
//! * **Robustness counters** — retries, quarantines, timeouts and
//!   force-restart recoveries accumulate into the
//!   [`gasnub_trace::CounterSet`] on [`SweepOutcome::robustness`], under
//!   the canonical [`gasnub_trace::robustness`] names. Because each cell's
//!   verdict depends only on its own (deterministic) probe, the counts are
//!   identical across thread counts.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use gasnub_machines::{CancelToken, CellCancelled, Machine, SpawnEngine, WarmState};
use gasnub_memsim::rng::Rng;
use gasnub_memsim::SimError;
use gasnub_trace::{robustness, CounterSet};

use crate::json::Json;
use crate::storage::{self, CheckpointError, WriteFaults};
use crate::surface::Surface;
use crate::sweep::Grid;

/// The checkpoint schema version this binary reads and writes.
pub const SCHEMA_VERSION: u64 = 2;

/// Default checkpoint fsync batch ([`ResilientSweep::with_fsync_every`]):
/// every cell's write is still atomically renamed into place, but only one
/// write in this many — plus the final write of a run — pays the fsync.
pub const FSYNC_BATCH_DEFAULT: u64 = 16;

/// Why a sweep run failed outright (as opposed to individual cells, which
/// degrade to holes in the surface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The checkpoint could not be read, verified, or written.
    Checkpoint(CheckpointError),
    /// The engine factory failed; no cells can run without engines.
    Spawn(SimError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Checkpoint(e) => e.fmt(f),
            SweepError::Spawn(e) => write!(f, "spawning an engine failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<CheckpointError> for SweepError {
    fn from(e: CheckpointError) -> Self {
        SweepError::Checkpoint(e)
    }
}

impl From<SweepError> for SimError {
    fn from(e: SweepError) -> Self {
        match e {
            SweepError::Checkpoint(c) => c.into(),
            SweepError::Spawn(s) => s,
        }
    }
}

/// How a cell failed. Serialized into the checkpoint (`kind` field), so a
/// resumed run knows which holes were timeouts vs. quarantined panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The probe reported the operation unsupported on this machine
    /// (deterministic — never retried).
    Unsupported,
    /// The probe panicked on every allowed attempt; the cell is
    /// quarantined.
    Panic,
    /// The cell's wall-clock budget expired before the probe finished.
    Timeout,
}

impl FailureKind {
    /// The checkpoint serialization of this kind.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Unsupported => "unsupported",
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
        }
    }

    /// Parses [`FailureKind::label`] output.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "unsupported" => Some(FailureKind::Unsupported),
            "panic" => Some(FailureKind::Panic),
            "timeout" => Some(FailureKind::Timeout),
            _ => None,
        }
    }
}

/// A cell recorded as a hole in the surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// The cell's working set in bytes.
    pub ws_bytes: u64,
    /// The cell's stride in words.
    pub stride: u64,
    /// How the cell failed.
    pub kind: FailureKind,
    /// Probe attempts spent on the cell (1 = no retries).
    pub attempts: u32,
    /// The panic message or failure reason.
    pub error: String,
}

/// The result of a resilient sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The (possibly partial) surface. Failed and pending cells are `NaN`.
    pub surface: Surface,
    /// Cells attempted during *this* run (measured, quarantined, timed out
    /// or unsupported — everything that got a verdict).
    pub measured: usize,
    /// Cells restored from the checkpoint instead of re-measured.
    pub resumed: usize,
    /// Cells recorded as holes: quarantined panics, timeouts, unsupported.
    pub failed: Vec<FailedCell>,
    /// Cells not attempted because the budget or cell cap ran out.
    pub pending: usize,
    /// Robustness counters for this run (retries, quarantines, timeouts,
    /// force-restart recoveries), under [`gasnub_trace::robustness`] names.
    /// Empty when nothing went wrong.
    pub robustness: CounterSet,
}

impl SweepOutcome {
    /// Whether every cell was either measured or recorded as failed.
    pub fn is_complete(&self) -> bool {
        self.pending == 0
    }
}

/// Checkpointed sweep driver; see the module docs.
#[derive(Clone)]
pub struct ResilientSweep {
    checkpoint: PathBuf,
    budget: Option<Duration>,
    max_cells: Option<usize>,
    retries: u32,
    retry_backoff: Duration,
    retry_seed: u64,
    cell_timeout: Option<Duration>,
    force_restart: bool,
    fsync: bool,
    fsync_every: u64,
    spec_hash: Option<u64>,
    faults: Option<Arc<Mutex<dyn WriteFaults + Send>>>,
}

impl std::fmt::Debug for ResilientSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientSweep")
            .field("checkpoint", &self.checkpoint)
            .field("budget", &self.budget)
            .field("max_cells", &self.max_cells)
            .field("retries", &self.retries)
            .field("cell_timeout", &self.cell_timeout)
            .field("force_restart", &self.force_restart)
            .field("fsync", &self.fsync)
            .field("fsync_every", &self.fsync_every)
            .field("faults", &self.faults.as_ref().map(|_| "<injected>"))
            .finish()
    }
}

/// One cell's verdict after the retry loop.
enum Verdict {
    Done(f64),
    Failed(FailureKind, String),
}

/// What a pool job — one whole run of same-stride cells — reports back.
enum RunDone {
    /// The run finished (possibly early): `recorded` cells got a verdict
    /// and a checkpoint write, `skipped` cells were left unattempted
    /// because the claim token was cancelled mid-run.
    Progress { recorded: usize, skipped: usize },
    /// A fatal error was raised; the run is over.
    Fatal,
}

impl ResilientSweep {
    /// Creates a runner persisting its checkpoint at `checkpoint`.
    pub fn new(checkpoint: impl Into<PathBuf>) -> Self {
        ResilientSweep {
            checkpoint: checkpoint.into(),
            budget: None,
            max_cells: None,
            retries: 0,
            retry_backoff: Duration::ZERO,
            retry_seed: 0x5EED,
            cell_timeout: None,
            force_restart: false,
            fsync: true,
            fsync_every: FSYNC_BATCH_DEFAULT,
            spec_hash: None,
            faults: None,
        }
    }

    /// Limits the wall-clock time spent measuring. Expiry stops workers
    /// from *claiming* new cells; with a cell timeout configured it also
    /// caps each in-flight cell's token, so instrumented engines wind down
    /// cooperatively.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Limits how many cells this run may measure (useful for slot-sized
    /// chunks of a long sweep, and for testing resume).
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// Re-attempts a panicking cell up to `retries` extra times before
    /// quarantining it. Unsupported cells and timeouts are never retried
    /// (the former is deterministic, the latter has already spent its
    /// budget).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Base delay of the exponential retry backoff (attempt `n` sleeps
    /// roughly `base * 2^(n-1)`, jittered). Zero (the default) retries
    /// immediately — right for deterministic simulations, where a retry
    /// only helps if the probe is flaky by construction.
    pub fn with_retry_backoff(mut self, base: Duration) -> Self {
        self.retry_backoff = base;
        self
    }

    /// Seeds the backoff jitter, so a replayed run sleeps the same
    /// schedule.
    pub fn with_retry_seed(mut self, seed: u64) -> Self {
        self.retry_seed = seed;
        self
    }

    /// Gives every cell attempt a wall-clock budget. The token is checked
    /// once *before* the attempt (so an expired budget is deterministic)
    /// and cooperatively inside instrumented probe loops; expiry records
    /// the cell as [`FailureKind::Timeout`].
    pub fn with_cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// When resume finds a corrupt, schema-mismatched or foreign
    /// checkpoint, move it aside to `<path>.corrupt` and start fresh
    /// instead of failing. I/O errors are never bulldozed.
    pub fn with_force_restart(mut self, force: bool) -> Self {
        self.force_restart = force;
        self
    }

    /// Ties the checkpoint to a machine description
    /// (`MachineSpec::spec_hash`). When set, the hash is written into
    /// every checkpoint and verified on resume: a checkpoint written by a
    /// different machine description — a different spec file, a different
    /// fault plan, an edited zoo entry — is rejected as a grid mismatch
    /// instead of silently mixing measurements. Unset (the default), the
    /// title/axes identity check alone applies, and checkpoints written
    /// without a hash stay loadable.
    pub fn with_spec_hash(mut self, hash: u64) -> Self {
        self.spec_hash = Some(hash);
        self
    }

    /// Whether checkpoint writes fsync before renaming (default `true`).
    /// Turning it off trades crash-durability for write latency — the
    /// checksum footer still catches the resulting torn files.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Batches checkpoint fsyncs: the checkpoint is still *written* (and
    /// atomically renamed) after every cell, but only every `n`-th write —
    /// and always the last write of a run — pays the fsync. On small sweeps
    /// the fsync dominates the per-cell cost, so batching buys most of the
    /// warm path's checkpoint speedup while keeping the durability
    /// guarantee that matters: a completed (or budget-expired) run is fully
    /// durable on return. A crash mid-run can lose at most the last `n - 1`
    /// cells of progress to the page cache; a torn rename is still caught
    /// by the checksum footer and re-measured on resume.
    ///
    /// `n` is clamped to at least 1; `with_fsync_every(1)` restores the
    /// fsync-per-cell behavior. The default is [`FSYNC_BATCH_DEFAULT`].
    pub fn with_fsync_every(mut self, n: u64) -> Self {
        self.fsync_every = n.max(1);
        self
    }

    /// Routes every checkpoint write through a fault-injection hook — the
    /// chaos harness' entry point ([`crate::chaos::FaultInjector`]).
    pub fn with_write_faults(mut self, faults: Arc<Mutex<dyn WriteFaults + Send>>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The checkpoint path.
    pub fn checkpoint_path(&self) -> &Path {
        &self.checkpoint
    }

    /// Removes the checkpoint, so the next run starts from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] if the file exists but cannot be removed.
    pub fn clear_checkpoint(&self) -> Result<(), SimError> {
        match std::fs::remove_file(&self.checkpoint) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(SimError::io(format!(
                "removing {}: {e}",
                self.checkpoint.display()
            ))),
        }
    }

    /// Runs (or resumes) the sweep of `grid` with `probe`.
    ///
    /// `probe` returns the cell's bandwidth in MB/s, or `None` when the
    /// operation is unsupported on this machine (recorded as failed).
    /// The checkpoint is rewritten after every attempted cell. Without an
    /// engine to install a token on, the cell timeout is only checked
    /// before each attempt — use [`ResilientSweep::run_parallel`] for
    /// cooperative mid-probe cancellation.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Checkpoint`] when an existing checkpoint fails
    /// verification (corrupt bytes, wrong schema version, foreign
    /// title/grid) or cannot be read or written.
    pub fn run(
        &self,
        title: &str,
        grid: &Grid,
        mut probe: impl FnMut(u64, u64) -> Option<f64>,
    ) -> Result<SweepOutcome, SweepError> {
        let (mut state, mut counters) = self.load_state(title, grid)?;
        let resumed = state.done.len();
        let started = Instant::now();
        let mut measured = 0usize;
        let mut pending = 0usize;

        for &ws in &grid.working_sets {
            for &stride in &grid.strides {
                let key = (ws, stride);
                if state.done.contains_key(&key) || state.failed.contains_key(&key) {
                    continue;
                }
                let over_budget = self.budget.is_some_and(|b| started.elapsed() >= b);
                let over_cells = self.max_cells.is_some_and(|m| measured >= m);
                if over_budget || over_cells {
                    pending += 1;
                    continue;
                }
                let mut rng = self.cell_rng(ws, stride);
                let mut attempts = 0u32;
                let verdict = loop {
                    attempts += 1;
                    if self
                        .cell_timeout
                        .is_some_and(|t| CancelToken::with_deadline(t).is_cancelled())
                    {
                        break Verdict::Failed(FailureKind::Timeout, CELL_TIMEOUT.to_string());
                    }
                    match catch_unwind(AssertUnwindSafe(|| probe(ws, stride))) {
                        Ok(Some(mb_s)) => break Verdict::Done(mb_s),
                        Ok(None) => {
                            break Verdict::Failed(
                                FailureKind::Unsupported,
                                UNSUPPORTED.to_string(),
                            )
                        }
                        Err(panic) => {
                            if panic.downcast_ref::<CellCancelled>().is_some() {
                                break Verdict::Failed(
                                    FailureKind::Timeout,
                                    CELL_TIMEOUT.to_string(),
                                );
                            }
                            if attempts > self.retries {
                                break Verdict::Failed(
                                    FailureKind::Panic,
                                    panic_text(panic.as_ref()),
                                );
                            }
                            self.backoff(&mut rng, attempts);
                        }
                    }
                };
                record_verdict(&mut state, &mut counters, key, attempts, verdict);
                measured += 1;
                let durable = self.durable_save(measured as u64);
                if self.save_state(title, grid, &state, durable)? {
                    counters.add(robustness::CHECKPOINT_WRITE_RETRIES, 1);
                }
            }
        }
        if self.final_flush(title, grid, &state, measured as u64)? {
            counters.add(robustness::CHECKPOINT_WRITE_RETRIES, 1);
        }

        Ok(self.outcome(title, grid, state, measured, resumed, pending, counters))
    }

    /// Runs (or resumes) the sweep of `grid` across `threads` workers,
    /// scheduling whole **runs** — same-stride chains of cells
    /// ([`Grid::runs_of`]) — as the unit of work. Each worker holds one
    /// warm engine ([`gasnub_machines::WarmState`]) per claimed run and
    /// walks the chain in ascending working-set order, so the engine's
    /// allocations (and the host's caches) stay hot across cells; the
    /// engine is re-spawned only after a state-incompatible transition
    /// (an unwound probe).
    ///
    /// Because every probe starts from the flushed (≡ just-constructed)
    /// engine state and each probe is deterministic, the outcome — surface
    /// values, checkpoint bytes, failed cells, robustness counters — is
    /// bit-identical to [`ResilientSweep::run`] with the equivalent probe,
    /// regardless of thread count or completion order: the checkpoint keeps
    /// cells in a `BTreeMap` and the surface is assembled in grid order
    /// after the pool drains. `threads <= 1` still walks the same runs with
    /// the same warm engines, sequentially.
    ///
    /// The run-wide budget stops workers from claiming new cells
    /// ([`crate::pool::run_indexed_while`]); the per-cell timeout is
    /// installed on each engine as a [`CancelToken`], so instrumented
    /// probes stop cooperatively mid-loop and the cell records as a
    /// [`FailureKind::Timeout`] hole.
    ///
    /// # Errors
    ///
    /// Everything [`ResilientSweep::run`] returns, plus
    /// [`SweepError::Spawn`] when `spawner` fails — a spawn failure cancels
    /// the pool's claim token and fails the sweep (the checkpoint keeps all
    /// cells finished before the failure).
    pub fn run_parallel<S, P>(
        &self,
        title: &str,
        grid: &Grid,
        threads: usize,
        spawner: &S,
        probe: P,
    ) -> Result<SweepOutcome, SweepError>
    where
        S: SpawnEngine,
        P: Fn(&mut S::Engine, u64, u64) -> Option<f64> + Sync,
    {
        let (state, counters) = self.load_state(title, grid)?;
        let resumed = state.done.len();

        // The cells left to measure, in grid order. The cell cap splits off
        // the tail up front — unlike the budget, it is deterministic.
        let work: Vec<(u64, u64)> = (0..grid.cells())
            .map(|i| grid.cell(i))
            .filter(|key| !state.done.contains_key(key) && !state.failed.contains_key(key))
            .collect();
        let allowed = work.len().min(self.max_cells.unwrap_or(usize::MAX));
        let (attempt, capped) = work.split_at(allowed);

        let state = Mutex::new(state);
        let counters = Mutex::new(counters);
        let fatal: Mutex<Option<SweepError>> = Mutex::new(None);
        // Budget expiry and fatal errors both stop further claims; cells
        // already in flight finish (and their tokens, derived from this
        // one, pick up the cancellation cooperatively).
        let claim = match self.budget {
            Some(b) => CancelToken::with_deadline(b),
            None => CancelToken::new(),
        };

        // Group the remaining cells into same-stride runs: the warm-path
        // scheduling unit. Workers steal whole runs, never single cells.
        let runs = Grid::runs_of(attempt);
        let saves = AtomicU64::new(0);

        let slots = crate::pool::run_indexed_while(threads, runs.len(), &claim, |r| {
            let mut warm = WarmState::new();
            let mut recorded = 0usize;
            let mut skipped = 0usize;
            for &(ws, stride) in &runs[r] {
                if claim.is_cancelled() {
                    // Budget expired mid-run: the rest of the chain stays
                    // pending, exactly as if the cells were never claimed.
                    skipped += 1;
                    continue;
                }
                let mut rng = self.cell_rng(ws, stride);
                let mut attempts = 0u32;
                let verdict = loop {
                    attempts += 1;
                    let token = match self.cell_timeout {
                        Some(t) => claim.child_with_deadline(t),
                        None => claim.clone(),
                    };
                    if token.is_cancelled() {
                        break Verdict::Failed(FailureKind::Timeout, CELL_TIMEOUT.to_string());
                    }
                    let engine = match warm.engine(spawner) {
                        Ok(engine) => engine,
                        Err(err) => {
                            *lock_or_recover(&fatal) = Some(SweepError::Spawn(err));
                            claim.cancel();
                            return RunDone::Fatal;
                        }
                    };
                    engine.set_cancel_token(token.clone());
                    match catch_unwind(AssertUnwindSafe(|| probe(engine, ws, stride))) {
                        Ok(Some(mb_s)) => break Verdict::Done(mb_s),
                        Ok(None) => {
                            break Verdict::Failed(
                                FailureKind::Unsupported,
                                UNSUPPORTED.to_string(),
                            )
                        }
                        Err(panic) => {
                            // An unwound probe is the one state-incompatible
                            // transition: drop the engine, re-spawn fresh.
                            warm.reset();
                            if panic.downcast_ref::<CellCancelled>().is_some() {
                                break Verdict::Failed(
                                    FailureKind::Timeout,
                                    CELL_TIMEOUT.to_string(),
                                );
                            }
                            if attempts > self.retries {
                                break Verdict::Failed(
                                    FailureKind::Panic,
                                    panic_text(panic.as_ref()),
                                );
                            }
                            self.backoff(&mut rng, attempts);
                        }
                    }
                };
                if matches!(verdict, Verdict::Failed(FailureKind::Timeout, _))
                    && lock_or_recover(&fatal).is_some()
                {
                    // The cell was cancelled by a fatal error, not its own
                    // budget — don't poison the checkpoint with a bogus
                    // timeout record.
                    return RunDone::Fatal;
                }
                let mut st = lock_or_recover(&state);
                let mut rc = lock_or_recover(&counters);
                record_verdict(&mut st, &mut rc, (ws, stride), attempts, verdict);
                // Saving under the state lock serializes checkpoint writes
                // (and keeps the batched-fsync cadence well-defined).
                let nth = saves.fetch_add(1, Ordering::Relaxed) + 1;
                match self.save_state(title, grid, &st, self.durable_save(nth)) {
                    Ok(retried) => {
                        if retried {
                            rc.add(robustness::CHECKPOINT_WRITE_RETRIES, 1);
                        }
                        recorded += 1;
                    }
                    Err(err) => {
                        drop(st);
                        drop(rc);
                        *lock_or_recover(&fatal) = Some(err.into());
                        claim.cancel();
                        return RunDone::Fatal;
                    }
                }
            }
            RunDone::Progress { recorded, skipped }
        });

        if let Some(err) = lock_or_recover(&fatal).take() {
            return Err(err);
        }
        let mut measured = 0usize;
        let mut pending = capped.len();
        for (slot, run) in slots.iter().zip(&runs) {
            match slot {
                Some(RunDone::Progress { recorded, skipped }) => {
                    measured += recorded;
                    pending += skipped;
                }
                // Fatal slots imply a fatal error, handled above.
                Some(RunDone::Fatal) => {}
                // The run was never claimed: all its cells stay pending.
                None => pending += run.len(),
            }
        }
        let state = state.into_inner().unwrap_or_else(|p| p.into_inner());
        let mut counters = counters.into_inner().unwrap_or_else(|p| p.into_inner());
        if self.final_flush(title, grid, &state, saves.into_inner())? {
            counters.add(robustness::CHECKPOINT_WRITE_RETRIES, 1);
        }
        Ok(self.outcome(title, grid, state, measured, resumed, pending, counters))
    }

    /// [`ResilientSweep::run_parallel`] with the probe closure derived
    /// from a [`SweepOp`] through the unified probe API — the common case
    /// for CLI sweeps, where the operation (not an arbitrary closure)
    /// names the work. Tier selection rides on the spawner: hand a
    /// `gasnub_analytic::TieredSpec` here and trusted cells take the
    /// analytic fast path while the rest simulate.
    ///
    /// # Errors
    ///
    /// Everything [`ResilientSweep::run_parallel`] returns.
    pub fn run_parallel_op<S>(
        &self,
        title: &str,
        grid: &Grid,
        threads: usize,
        spawner: &S,
        op: crate::bench::SweepOp,
    ) -> Result<SweepOutcome, SweepError>
    where
        S: SpawnEngine,
    {
        self.run_parallel(title, grid, threads, spawner, |machine, ws, stride| {
            op.measure(machine, ws, stride)
        })
    }

    /// A per-cell RNG for backoff jitter, independent of thread schedule.
    fn cell_rng(&self, ws: u64, stride: u64) -> Rng {
        Rng::new(self.retry_seed ^ ws.rotate_left(17) ^ stride)
    }

    /// Sleeps the exponential, jittered backoff before retry `attempt`.
    fn backoff(&self, rng: &mut Rng, attempt: u32) {
        if self.retry_backoff.is_zero() {
            return;
        }
        let exp = self
            .retry_backoff
            .saturating_mul(1 << (attempt - 1).min(10));
        let nanos = exp.as_nanos().min(u64::MAX as u128) as u64;
        // Jitter uniformly within [base/2, base]: decorrelates retry storms
        // without ever collapsing the delay to zero.
        let jittered = nanos / 2 + rng.gen_range(0, nanos / 2 + 1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }

    /// Assembles the surface and outcome from the final checkpoint state.
    #[allow(clippy::too_many_arguments)]
    fn outcome(
        &self,
        title: &str,
        grid: &Grid,
        state: SweepState,
        measured: usize,
        resumed: usize,
        pending: usize,
        robustness: CounterSet,
    ) -> SweepOutcome {
        let values = grid
            .working_sets
            .iter()
            .map(|&ws| {
                grid.strides
                    .iter()
                    .map(|&stride| {
                        state
                            .done
                            .get(&(ws, stride))
                            .map_or(f64::NAN, |&bits| f64::from_bits(bits))
                    })
                    .collect()
            })
            .collect();
        let surface = Surface::new(
            title,
            grid.strides.clone(),
            grid.working_sets.clone(),
            values,
        );
        let failed = state
            .failed
            .iter()
            .map(|(&(ws_bytes, stride), rec)| FailedCell {
                ws_bytes,
                stride,
                kind: rec.kind,
                attempts: rec.attempts,
                error: rec.error.clone(),
            })
            .collect();
        SweepOutcome {
            surface,
            measured,
            resumed,
            failed,
            pending,
            robustness,
        }
    }

    /// Loads and verifies the checkpoint; on failure, either recovers via
    /// `--force-restart` (quarantining the file, counting the recovery) or
    /// fails with the structured error.
    fn load_state(&self, title: &str, grid: &Grid) -> Result<(SweepState, CounterSet), SweepError> {
        let mut recovery = CounterSet::new();
        match self.try_load(title, grid) {
            Ok(state) => Ok((state, recovery)),
            Err(err) if self.force_restart && err.force_restart_recoverable() => {
                let torn = matches!(&err, CheckpointError::Corrupt { detail, .. }
                    if detail.contains("torn"));
                storage::quarantine_file(&self.checkpoint)?;
                recovery.add(robustness::FORCE_RESTARTS, 1);
                if torn {
                    recovery.add(robustness::TORN_TAIL_RECOVERIES, 1);
                }
                Ok((SweepState::default(), recovery))
            }
            Err(err) => Err(err.into()),
        }
    }

    /// The strict load path: verified bytes, schema check, identity check,
    /// structurally complete `cells`/`failed` arrays.
    fn try_load(&self, title: &str, grid: &Grid) -> Result<SweepState, CheckpointError> {
        let corrupt = |detail: String| CheckpointError::Corrupt {
            path: self.checkpoint.clone(),
            detail,
        };
        let payload = match storage::read_verified(&self.checkpoint)? {
            Some(payload) => payload,
            None => return Ok(SweepState::default()),
        };
        let doc = Json::parse(&payload)
            .map_err(|e| corrupt(format!("verified payload is not valid JSON: {e}")))?;
        let version = doc.get("version").and_then(Json::as_u64).unwrap_or(1);
        if version != SCHEMA_VERSION {
            return Err(CheckpointError::SchemaMismatch {
                path: self.checkpoint.clone(),
                found: version,
                expected: SCHEMA_VERSION,
            });
        }
        let stored_title = doc.get("title").and_then(Json::as_str);
        if stored_title != Some(title) {
            return Err(CheckpointError::GridMismatch {
                path: self.checkpoint.clone(),
                detail: format!(
                    "titled {:?}, not {title:?}",
                    stored_title.unwrap_or("<missing>")
                ),
            });
        }
        if let Some(expected) = self.spec_hash {
            let stored = doc.get("spec_hash").and_then(Json::as_u64);
            if stored != Some(expected) {
                return Err(CheckpointError::GridMismatch {
                    path: self.checkpoint.clone(),
                    detail: match stored {
                        Some(found) => format!(
                            "written by a different machine description \
                             (spec hash {found:#x}, expected {expected:#x})"
                        ),
                        None => "carries no machine spec hash".to_string(),
                    },
                });
            }
        }
        let axis = |key: &str| -> Result<Vec<u64>, CheckpointError> {
            doc.get(key)
                .and_then(Json::as_array)
                .map(|items| items.iter().filter_map(Json::as_u64).collect::<Vec<_>>())
                .ok_or_else(|| corrupt(format!("axis {key:?} missing or not an array")))
        };
        if axis("strides")? != grid.strides || axis("working_sets")? != grid.working_sets {
            return Err(CheckpointError::GridMismatch {
                path: self.checkpoint.clone(),
                detail: "taken on different grid axes".to_string(),
            });
        }
        let mut state = SweepState::default();
        let cells = doc
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("\"cells\" missing or not an array".to_string()))?;
        for cell in cells {
            let (ws, stride, bits) = (
                cell.get("ws").and_then(Json::as_u64),
                cell.get("stride").and_then(Json::as_u64),
                cell.get("bits").and_then(Json::as_u64),
            );
            match (ws, stride, bits) {
                (Some(ws), Some(stride), Some(bits)) => {
                    state.done.insert((ws, stride), bits);
                }
                _ => return Err(corrupt("cell entry missing ws/stride/bits".to_string())),
            }
        }
        let failed = doc
            .get("failed")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("\"failed\" missing or not an array".to_string()))?;
        for cell in failed {
            let (ws, stride, kind, attempts, error) = (
                cell.get("ws").and_then(Json::as_u64),
                cell.get("stride").and_then(Json::as_u64),
                cell.get("kind").and_then(Json::as_str),
                cell.get("attempts").and_then(Json::as_u64),
                cell.get("error").and_then(Json::as_str),
            );
            match (ws, stride, kind, attempts, error) {
                (Some(ws), Some(stride), Some(kind), Some(attempts), Some(error)) => {
                    let kind = FailureKind::from_label(kind).ok_or_else(|| {
                        corrupt(format!("failure entry has unknown kind {kind:?}"))
                    })?;
                    state.failed.insert(
                        (ws, stride),
                        FailureRecord {
                            kind,
                            attempts: attempts.min(u32::MAX as u64) as u32,
                            error: error.to_string(),
                        },
                    );
                }
                _ => {
                    return Err(corrupt(
                        "failure entry missing ws/stride/kind/attempts/error".to_string(),
                    ))
                }
            }
        }
        Ok(state)
    }

    /// Renders the canonical v2 checkpoint payload.
    fn render_state(&self, title: &str, grid: &Grid, state: &SweepState) -> String {
        let cells = state
            .done
            .iter()
            .map(|(&(ws, stride), &bits)| {
                Json::object([
                    ("ws", Json::U64(ws)),
                    ("stride", Json::U64(stride)),
                    ("bits", Json::U64(bits)),
                ])
            })
            .collect();
        let failed = state
            .failed
            .iter()
            .map(|(&(ws, stride), rec)| {
                Json::object([
                    ("ws", Json::U64(ws)),
                    ("stride", Json::U64(stride)),
                    ("kind", Json::Str(rec.kind.label().to_string())),
                    ("attempts", Json::U64(rec.attempts as u64)),
                    ("error", Json::Str(rec.error.clone())),
                ])
            })
            .collect();
        let mut fields = vec![
            ("version", Json::U64(SCHEMA_VERSION)),
            ("title", Json::Str(title.to_string())),
        ];
        if let Some(hash) = self.spec_hash {
            fields.push(("spec_hash", Json::U64(hash)));
        }
        fields.extend([
            (
                "strides",
                Json::Array(grid.strides.iter().map(|&s| Json::U64(s)).collect()),
            ),
            (
                "working_sets",
                Json::Array(grid.working_sets.iter().map(|&w| Json::U64(w)).collect()),
            ),
            ("cells", Json::Array(cells)),
            ("failed", Json::Array(failed)),
        ]);
        Json::object(fields).render()
    }

    /// Writes the checkpoint (fsyncing when `durable`); one immediate retry
    /// on failure (the temp+rename discipline makes a retry always safe).
    /// Returns whether the retry was needed.
    fn save_state(
        &self,
        title: &str,
        grid: &Grid,
        state: &SweepState,
        durable: bool,
    ) -> Result<bool, CheckpointError> {
        let payload = self.render_state(title, grid, state);
        match self.write_checkpoint(&payload, durable) {
            Ok(()) => Ok(false),
            Err(_first) => {
                self.write_checkpoint(&payload, durable)?;
                Ok(true)
            }
        }
    }

    /// Whether the `n`-th save of a run (1-based) pays the fsync.
    fn durable_save(&self, n: u64) -> bool {
        self.fsync && n.is_multiple_of(self.fsync_every)
    }

    /// Re-writes the final state durably when the last batched save did not
    /// fsync, so a completed (or budget-expired) run is fully durable on
    /// return. Returns whether the write needed a retry.
    fn final_flush(
        &self,
        title: &str,
        grid: &Grid,
        state: &SweepState,
        saves: u64,
    ) -> Result<bool, CheckpointError> {
        if self.fsync && saves > 0 && !self.durable_save(saves) {
            self.save_state(title, grid, state, true)
        } else {
            Ok(false)
        }
    }

    fn write_checkpoint(&self, payload: &str, durable: bool) -> Result<(), CheckpointError> {
        match &self.faults {
            Some(faults) => {
                let mut injector = faults.lock().unwrap_or_else(|p| p.into_inner());
                storage::write_durable_with(&self.checkpoint, payload, durable, &mut *injector)
            }
            None => storage::write_durable(&self.checkpoint, payload, durable),
        }
    }
}

/// Locks a mutex, recovering the data from a poisoned lock: a worker that
/// panicked while holding the state left it in a consistent snapshot (the
/// BTreeMaps are updated atomically per cell), so the sweep carries on
/// instead of cascading the panic into a runner abort.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Applies a cell's verdict to the state and counters.
fn record_verdict(
    state: &mut SweepState,
    counters: &mut CounterSet,
    key: (u64, u64),
    attempts: u32,
    verdict: Verdict,
) {
    if attempts > 1 {
        counters.add(robustness::RETRIES, (attempts - 1) as u64);
    }
    match verdict {
        Verdict::Done(mb_s) => {
            state.done.insert(key, mb_s.to_bits());
        }
        Verdict::Failed(kind, error) => {
            match kind {
                FailureKind::Panic => counters.add(robustness::QUARANTINES, 1),
                FailureKind::Timeout => counters.add(robustness::TIMEOUTS, 1),
                FailureKind::Unsupported => {}
            }
            state.failed.insert(
                key,
                FailureRecord {
                    kind,
                    attempts,
                    error,
                },
            );
        }
    }
}

/// The failure reason recorded for a probe returning `None`.
const UNSUPPORTED: &str = "operation unsupported on this machine";

/// The failure reason recorded for a cell stopped by its wall-clock budget.
const CELL_TIMEOUT: &str = "cell wall-clock budget expired";

/// One recorded failure: how, after how many attempts, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FailureRecord {
    kind: FailureKind,
    attempts: u32,
    error: String,
}

/// In-memory checkpoint state: measured bandwidths (as bits) and failures.
#[derive(Debug, Default)]
struct SweepState {
    done: BTreeMap<(u64, u64), u64>,
    failed: BTreeMap<(u64, u64), FailureRecord>,
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique checkpoint path per test (tests run concurrently).
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gasnub-ckpt-{}-{tag}-{n}.json", std::process::id()))
    }

    fn grid() -> Grid {
        Grid {
            strides: vec![1, 2, 4],
            working_sets: vec![1024, 2048],
        }
    }

    /// A deterministic synthetic probe.
    fn model(ws: u64, stride: u64) -> f64 {
        (ws as f64).sqrt() / stride as f64 + 1.0 / 3.0
    }

    /// Silences the default panic hook for the duration of `f`.
    fn quietly<T>(f: impl FnOnce() -> T) -> T {
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prior);
        out
    }

    #[test]
    fn complete_run_matches_direct_sweep() {
        let runner = ResilientSweep::new(scratch("complete"));
        let out = runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.measured, grid().cells());
        assert_eq!(out.resumed, 0);
        assert!(out.failed.is_empty());
        assert!(out.robustness.is_empty());
        assert_eq!(out.surface.value(2048, 4), Some(model(2048, 4)));
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn interrupted_then_resumed_is_bit_identical() {
        let path = scratch("resume");
        let uninterrupted = ResilientSweep::new(scratch("direct"))
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();

        let first = ResilientSweep::new(&path)
            .with_max_cells(3)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(first.measured, 3);
        assert_eq!(first.pending, grid().cells() - 3);
        assert!(!first.is_complete());

        let second = ResilientSweep::new(&path)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(second.resumed, 3);
        assert_eq!(second.measured, grid().cells() - 3);
        assert!(second.is_complete());
        // Bit-identical: compare the stored bit patterns cell by cell.
        for &ws in &grid().working_sets {
            for &s in &grid().strides {
                let a = uninterrupted.surface.value(ws, s).unwrap().to_bits();
                let b = second.surface.value(ws, s).unwrap().to_bits();
                assert_eq!(a, b, "cell ({ws}, {s})");
            }
        }
        ResilientSweep::new(&path).clear_checkpoint().unwrap();
    }

    #[test]
    fn panicking_cell_is_recorded_and_isolated() {
        let runner = ResilientSweep::new(scratch("panic"));
        let out = quietly(|| {
            runner
                .run("t", &grid(), |ws, s| {
                    assert!(!(ws == 2048 && s == 2), "injected failure");
                    Some(model(ws, s))
                })
                .unwrap()
        });
        assert!(out.is_complete());
        assert_eq!(out.failed.len(), 1);
        assert_eq!((out.failed[0].ws_bytes, out.failed[0].stride), (2048, 2));
        assert_eq!(out.failed[0].kind, FailureKind::Panic);
        assert_eq!(out.failed[0].attempts, 1);
        assert!(
            out.failed[0].error.contains("injected failure"),
            "got {:?}",
            out.failed[0].error
        );
        assert_eq!(out.robustness.get(gasnub_trace::robustness::QUARANTINES), 1);
        assert!(out.surface.value(2048, 2).unwrap().is_nan());
        assert_eq!(out.surface.value(2048, 4), Some(model(2048, 4)));
        // A resumed run does not retry the quarantined cell.
        let again = runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(again.failed.len(), 1);
        assert_eq!(again.failed[0].kind, FailureKind::Panic);
        assert_eq!(again.measured, 0);
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn retries_heal_a_transient_panic() {
        let runner = ResilientSweep::new(scratch("retry-heal")).with_retries(2);
        let flaky_calls = AtomicUsize::new(0);
        let out = quietly(|| {
            runner
                .run("t", &grid(), |ws, s| {
                    if ws == 2048 && s == 2 {
                        // Panic on the first two attempts, succeed on the
                        // third.
                        if flaky_calls.fetch_add(1, Ordering::Relaxed) < 2 {
                            panic!("transient failure");
                        }
                    }
                    Some(model(ws, s))
                })
                .unwrap()
        });
        assert!(out.is_complete());
        assert!(out.failed.is_empty());
        assert_eq!(out.surface.value(2048, 2), Some(model(2048, 2)));
        assert_eq!(out.robustness.get(gasnub_trace::robustness::RETRIES), 2);
        assert_eq!(out.robustness.get(gasnub_trace::robustness::QUARANTINES), 0);
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn persistent_panic_exhausts_retries_and_quarantines() {
        let runner = ResilientSweep::new(scratch("retry-exhaust")).with_retries(2);
        let out = quietly(|| {
            runner
                .run("t", &grid(), |ws, s| {
                    assert!(!(ws == 2048 && s == 2), "poison cell");
                    Some(model(ws, s))
                })
                .unwrap()
        });
        assert!(out.is_complete());
        assert_eq!(out.failed.len(), 1);
        assert_eq!(out.failed[0].kind, FailureKind::Panic);
        assert_eq!(out.failed[0].attempts, 3);
        assert_eq!(out.robustness.get(gasnub_trace::robustness::RETRIES), 2);
        assert_eq!(out.robustness.get(gasnub_trace::robustness::QUARANTINES), 1);
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn zero_cell_timeout_records_deterministic_timeouts() {
        let runner = ResilientSweep::new(scratch("cell-timeout")).with_cell_timeout(Duration::ZERO);
        let out = runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.failed.len(), grid().cells());
        assert!(out.failed.iter().all(|f| f.kind == FailureKind::Timeout));
        assert_eq!(
            out.robustness.get(gasnub_trace::robustness::TIMEOUTS),
            grid().cells() as u64
        );
        // Timed-out cells are holes, skipped on resume.
        let again = ResilientSweep::new(runner.checkpoint_path())
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(again.measured, 0);
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn unsupported_cells_fail_rather_than_abort() {
        let runner = ResilientSweep::new(scratch("unsupported"));
        let out = runner.run("t", &grid(), |_, _| None).unwrap();
        assert_eq!(out.failed.len(), grid().cells());
        assert!(out.failed.iter().all(|f| f.error.contains("unsupported")));
        assert!(out
            .failed
            .iter()
            .all(|f| f.kind == FailureKind::Unsupported));
        // Unsupported is not a robustness event: nothing to report.
        assert!(out.robustness.is_empty());
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn zero_budget_attempts_nothing() {
        let runner = ResilientSweep::new(scratch("budget")).with_budget(Duration::ZERO);
        let out = runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(out.measured, 0);
        assert_eq!(out.pending, grid().cells());
        runner.clear_checkpoint().unwrap();
    }

    use gasnub_machines::{MachineId, MeasureLimits, Measurement};

    /// A trivial deterministic machine whose every probe reports the
    /// synthetic [`model`] bandwidth; lets the parallel tests exercise the
    /// pool without simulating a real hierarchy.
    struct Synthetic;

    impl Synthetic {
        fn meas(ws: u64, stride: u64) -> Measurement {
            Measurement {
                bytes: ws,
                cycles: 1.0,
                mb_s: model(ws, stride),
            }
        }
    }

    impl Machine for Synthetic {
        fn id(&self) -> MachineId {
            MachineId::Custom
        }
        fn clock_mhz(&self) -> f64 {
            100.0
        }
        fn limits(&self) -> MeasureLimits {
            MeasureLimits::fast()
        }
        fn set_limits(&mut self, _limits: MeasureLimits) {}
        fn local_load(&mut self, ws: u64, stride: u64) -> Measurement {
            Self::meas(ws, stride)
        }
        fn local_store(&mut self, ws: u64, stride: u64) -> Measurement {
            Self::meas(ws, stride)
        }
        fn local_copy(&mut self, ws: u64, load_stride: u64, _store_stride: u64) -> Measurement {
            Self::meas(ws, load_stride)
        }
        fn local_gather(&mut self, ws: u64) -> Measurement {
            Self::meas(ws, 1)
        }
        fn remote_load(&mut self, _ws: u64, _stride: u64) -> Option<Measurement> {
            None
        }
        fn remote_fetch(&mut self, ws: u64, stride: u64) -> Option<Measurement> {
            Some(Self::meas(ws, stride))
        }
        fn remote_deposit(&mut self, ws: u64, stride: u64) -> Option<Measurement> {
            Some(Self::meas(ws, stride))
        }
    }

    fn synthetic_probe(m: &mut Synthetic, ws: u64, stride: u64) -> Option<f64> {
        Some(m.local_load(ws, stride).mb_s)
    }

    #[test]
    fn parallel_run_writes_the_same_checkpoint_bytes_as_sequential() {
        let seq_path = scratch("par-seq");
        let par_path = scratch("par-par");
        let sequential = ResilientSweep::new(&seq_path)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        for threads in [1, 4] {
            let parallel = ResilientSweep::new(&par_path)
                .run_parallel("t", &grid(), threads, &(|| Synthetic), synthetic_probe)
                .unwrap();
            assert_eq!(parallel.measured, sequential.measured, "threads={threads}");
            assert_eq!(
                std::fs::read(&seq_path).unwrap(),
                std::fs::read(&par_path).unwrap(),
                "threads={threads}"
            );
            ResilientSweep::new(&par_path).clear_checkpoint().unwrap();
        }
        ResilientSweep::new(&seq_path).clear_checkpoint().unwrap();
    }

    #[test]
    fn parallel_run_resumes_a_sequential_checkpoint() {
        let path = scratch("par-resume");
        let first = ResilientSweep::new(&path)
            .with_max_cells(2)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(first.measured, 2);
        let second = ResilientSweep::new(&path)
            .run_parallel("t", &grid(), 4, &(|| Synthetic), synthetic_probe)
            .unwrap();
        assert_eq!(second.resumed, 2);
        assert_eq!(second.measured, grid().cells() - 2);
        assert!(second.is_complete());
        for &ws in &grid().working_sets {
            for &s in &grid().strides {
                assert_eq!(second.surface.value(ws, s), Some(model(ws, s)));
            }
        }
        ResilientSweep::new(&path).clear_checkpoint().unwrap();
    }

    #[test]
    fn parallel_panics_are_isolated_per_cell() {
        let runner = ResilientSweep::new(scratch("par-panic"));
        let out = quietly(|| {
            runner
                .run_parallel(
                    "t",
                    &grid(),
                    3,
                    &(|| Synthetic),
                    |m: &mut Synthetic, ws, s| {
                        assert!(!(ws == 2048 && s == 2), "injected parallel failure");
                        synthetic_probe(m, ws, s)
                    },
                )
                .unwrap()
        });
        assert!(out.is_complete());
        assert_eq!(out.failed.len(), 1);
        assert_eq!((out.failed[0].ws_bytes, out.failed[0].stride), (2048, 2));
        assert_eq!(out.failed[0].kind, FailureKind::Panic);
        assert!(out.surface.value(2048, 2).unwrap().is_nan());
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn robustness_counters_are_identical_across_thread_counts() {
        let mut baseline: Option<CounterSet> = None;
        for threads in [1, 2, 4] {
            let runner = ResilientSweep::new(scratch("par-counters")).with_retries(1);
            let out = quietly(|| {
                runner
                    .run_parallel(
                        "t",
                        &grid(),
                        threads,
                        &(|| Synthetic),
                        |m: &mut Synthetic, ws, s| {
                            // Two poison cells that panic deterministically
                            // on every attempt.
                            assert!(s != 2, "poison stride");
                            synthetic_probe(m, ws, s)
                        },
                    )
                    .unwrap()
            });
            assert_eq!(
                out.robustness.get(gasnub_trace::robustness::RETRIES),
                2,
                "threads={threads}"
            );
            assert_eq!(
                out.robustness.get(gasnub_trace::robustness::QUARANTINES),
                2,
                "threads={threads}"
            );
            match &baseline {
                None => baseline = Some(out.robustness.clone()),
                Some(b) => assert_eq!(b, &out.robustness, "threads={threads}"),
            }
            runner.clear_checkpoint().unwrap();
        }
    }

    #[test]
    fn parallel_zero_cell_timeout_is_deterministic() {
        for threads in [1, 4] {
            let runner =
                ResilientSweep::new(scratch("par-cell-timeout")).with_cell_timeout(Duration::ZERO);
            let out = runner
                .run_parallel("t", &grid(), threads, &(|| Synthetic), synthetic_probe)
                .unwrap();
            assert!(out.is_complete());
            assert_eq!(
                out.robustness.get(gasnub_trace::robustness::TIMEOUTS),
                grid().cells() as u64,
                "threads={threads}"
            );
            assert!(out.failed.iter().all(|f| f.kind == FailureKind::Timeout));
            runner.clear_checkpoint().unwrap();
        }
    }

    #[test]
    fn parallel_unsupported_cells_are_recorded() {
        let runner = ResilientSweep::new(scratch("par-unsupported"));
        let out = runner
            .run_parallel(
                "t",
                &grid(),
                2,
                &(|| Synthetic),
                |m: &mut Synthetic, ws, s| m.remote_load(ws, s).map(|r| r.mb_s),
            )
            .unwrap();
        assert_eq!(out.failed.len(), grid().cells());
        assert!(out.failed.iter().all(|f| f.error.contains("unsupported")));
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn parallel_zero_budget_attempts_nothing() {
        let runner = ResilientSweep::new(scratch("par-budget")).with_budget(Duration::ZERO);
        let out = runner
            .run_parallel("t", &grid(), 4, &(|| Synthetic), synthetic_probe)
            .unwrap();
        assert_eq!(out.measured, 0);
        assert_eq!(out.pending, grid().cells());
        runner.clear_checkpoint().unwrap();
    }

    /// Counts writes and fsyncs flowing through the checkpoint path.
    #[derive(Default)]
    struct CountFsyncs {
        writes: usize,
        fsyncs: usize,
    }

    impl WriteFaults for CountFsyncs {
        fn corrupt_file_bytes(&mut self, bytes: Vec<u8>) -> Vec<u8> {
            bytes
        }
        fn fail_rename(&mut self) -> bool {
            false
        }
        fn observe_fsync(&mut self, durable: bool) {
            self.writes += 1;
            if durable {
                self.fsyncs += 1;
            }
        }
    }

    #[test]
    fn fsync_batching_syncs_the_final_write_and_keeps_bytes_identical() {
        let cells = grid().cells(); // 6
        let per_cell_path = scratch("fsync-per-cell");
        let per_cell_count: Arc<Mutex<CountFsyncs>> = Arc::default();
        ResilientSweep::new(&per_cell_path)
            .with_fsync_every(1)
            .with_write_faults(per_cell_count.clone())
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        {
            let c = per_cell_count.lock().unwrap();
            assert_eq!((c.writes, c.fsyncs), (cells, cells));
        }

        let batched_path = scratch("fsync-batched");
        let batched_count: Arc<Mutex<CountFsyncs>> = Arc::default();
        ResilientSweep::new(&batched_path)
            .with_fsync_every(4)
            .with_write_faults(batched_count.clone())
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        {
            // Write 4 syncs, plus the final durable flush (6 % 4 != 0):
            // one extra write, two fsyncs total instead of six.
            let c = batched_count.lock().unwrap();
            assert_eq!((c.writes, c.fsyncs), (cells + 1, 2));
        }
        assert_eq!(
            std::fs::read(&per_cell_path).unwrap(),
            std::fs::read(&batched_path).unwrap(),
            "batching must not change the checkpoint bytes"
        );

        // The parallel runner batches on the same cadence: with a batch
        // larger than the sweep, only the final flush syncs.
        let par_path = scratch("fsync-par");
        let par_count: Arc<Mutex<CountFsyncs>> = Arc::default();
        ResilientSweep::new(&par_path)
            .with_fsync_every(64)
            .with_write_faults(par_count.clone())
            .run_parallel("t", &grid(), 3, &(|| Synthetic), synthetic_probe)
            .unwrap();
        {
            let c = par_count.lock().unwrap();
            assert_eq!((c.writes, c.fsyncs), (cells + 1, 1));
        }
        assert_eq!(
            std::fs::read(&per_cell_path).unwrap(),
            std::fs::read(&par_path).unwrap()
        );

        // Disabling fsync entirely also disables the final flush.
        let nosync_path = scratch("fsync-off");
        let nosync_count: Arc<Mutex<CountFsyncs>> = Arc::default();
        ResilientSweep::new(&nosync_path)
            .with_fsync(false)
            .with_write_faults(nosync_count.clone())
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        {
            let c = nosync_count.lock().unwrap();
            assert_eq!((c.writes, c.fsyncs), (cells, 0));
        }

        for p in [&per_cell_path, &batched_path, &par_path, &nosync_path] {
            ResilientSweep::new(p).clear_checkpoint().unwrap();
        }
    }

    #[test]
    fn parallel_spawn_failures_stop_the_sweep() {
        struct FailingSpawner;
        impl SpawnEngine for FailingSpawner {
            type Engine = Synthetic;
            fn spawn_engine(&self) -> Result<Synthetic, SimError> {
                Err(SimError::malformed("no engines today"))
            }
        }
        let runner = ResilientSweep::new(scratch("par-spawn-fail"));
        let got = runner.run_parallel("t", &grid(), 2, &FailingSpawner, synthetic_probe);
        assert!(matches!(got, Err(SweepError::Spawn(_))));
        runner.clear_checkpoint().unwrap();
    }

    /// The corruption table of ISSUE 6: every way a checkpoint can be bad
    /// maps to a named error variant, and `--force-restart` recovers from
    /// each (preserving the evidence as `<path>.corrupt`).
    #[test]
    fn corruption_table_names_each_failure_and_force_restart_recovers() {
        let grid = grid();
        let complete =
            |runner: &ResilientSweep| runner.run("t", &grid, |ws, s| Some(model(ws, s))).unwrap();

        type Sabotage = Box<dyn Fn(&PathBuf)>;
        let cases: Vec<(&str, Sabotage, &str)> = vec![
            (
                "torn-tail",
                Box::new(|p: &PathBuf| {
                    // Chop mid-footer: the crash-mid-write signature.
                    let text = std::fs::read_to_string(p).unwrap();
                    std::fs::write(p, &text[..text.len() - 7]).unwrap();
                }),
                "corrupt",
            ),
            (
                "truncated-cell",
                Box::new(|p: &PathBuf| {
                    // Surgically remove a cell's "bits" field, then re-seal
                    // with a valid footer: structural damage the checksum
                    // cannot catch, only strict parsing can.
                    let payload = storage::read_verified(p).unwrap().unwrap();
                    let broken = payload.replacen("\"bits\":", "\"bots\":", 1);
                    storage::write_durable(p, &broken, false).unwrap();
                }),
                "corrupt",
            ),
            (
                "bad-checksum",
                Box::new(|p: &PathBuf| {
                    let mut bytes = std::fs::read(p).unwrap();
                    bytes[10] ^= 0x01;
                    std::fs::write(p, bytes).unwrap();
                }),
                "corrupt",
            ),
            (
                "wrong-schema",
                Box::new(|p: &PathBuf| {
                    let payload = storage::read_verified(p).unwrap().unwrap();
                    let old = payload.replacen("\"version\":2", "\"version\":7", 1);
                    storage::write_durable(p, &old, false).unwrap();
                }),
                "schema-mismatch",
            ),
        ];

        for (name, sabotage, expected_kind) in cases {
            let path = scratch(&format!("corrupt-{name}"));
            let runner = ResilientSweep::new(&path);
            complete(&runner);
            sabotage(&path);

            // Without force-restart: the named error, no silent restart.
            let err = runner
                .run("t", &grid, |ws, s| Some(model(ws, s)))
                .unwrap_err();
            let SweepError::Checkpoint(ck) = &err else {
                panic!("{name}: expected checkpoint error, got {err:?}");
            };
            assert_eq!(ck.kind(), expected_kind, "{name}: {ck}");

            // With force-restart: full recovery, evidence preserved,
            // recovery counted.
            let healed = ResilientSweep::new(&path)
                .with_force_restart(true)
                .run("t", &grid, |ws, s| Some(model(ws, s)))
                .unwrap();
            assert!(healed.is_complete(), "{name}");
            assert_eq!(healed.measured, grid.cells(), "{name}");
            assert_eq!(
                healed
                    .robustness
                    .get(gasnub_trace::robustness::FORCE_RESTARTS),
                1,
                "{name}"
            );
            assert!(
                storage::corrupt_path(&path).exists(),
                "{name}: corrupt file not preserved"
            );
            if name == "torn-tail" {
                assert_eq!(
                    healed
                        .robustness
                        .get(gasnub_trace::robustness::TORN_TAIL_RECOVERIES),
                    1
                );
            }
            let _ = std::fs::remove_file(storage::corrupt_path(&path));
            runner.clear_checkpoint().unwrap();
        }
    }

    #[test]
    fn wrong_grid_is_a_grid_mismatch() {
        let path = scratch("foreign");
        let runner = ResilientSweep::new(&path);
        runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        // Different title.
        let err = runner
            .run("other", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap_err();
        assert!(matches!(
            err,
            SweepError::Checkpoint(CheckpointError::GridMismatch { .. })
        ));
        // Different grid axes.
        let other = Grid {
            strides: vec![1],
            working_sets: vec![1024],
        };
        let err = runner
            .run("t", &other, |ws, s| Some(model(ws, s)))
            .unwrap_err();
        assert!(matches!(
            err,
            SweepError::Checkpoint(CheckpointError::GridMismatch { .. })
        ));
        // A pre-checksum (v1-era) file has no footer: corrupt, not silently
        // restarted.
        std::fs::write(&path, "not json").unwrap();
        let err = runner
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap_err();
        assert!(matches!(
            err,
            SweepError::Checkpoint(CheckpointError::Corrupt { .. })
        ));
        runner.clear_checkpoint().unwrap();
    }

    #[test]
    fn missing_cells_array_is_corrupt_not_empty() {
        // The regression at the heart of satellite (a): a verified payload
        // whose "cells" key is missing (or not an array) must be a named
        // Corrupt error, never an implicit restart-from-scratch.
        for broken in [
            r#"{"failed":[],"strides":[1,2,4],"title":"t","version":2,"working_sets":[1024,2048]}"#,
            r#"{"cells":7,"failed":[],"strides":[1,2,4],"title":"t","version":2,"working_sets":[1024,2048]}"#,
            r#"{"cells":[],"strides":[1,2,4],"title":"t","version":2,"working_sets":[1024,2048]}"#,
            r#"{"cells":[{"stride":1,"ws":1024}],"failed":[],"strides":[1,2,4],"title":"t","version":2,"working_sets":[1024,2048]}"#,
        ] {
            let path = scratch("missing-cells");
            storage::write_durable(&path, broken, false).unwrap();
            let runner = ResilientSweep::new(&path);
            let err = runner
                .run("t", &grid(), |ws, s| Some(model(ws, s)))
                .unwrap_err();
            assert!(
                matches!(err, SweepError::Checkpoint(CheckpointError::Corrupt { .. })),
                "payload {broken:?} gave {err:?}"
            );
            runner.clear_checkpoint().unwrap();
        }
    }

    #[test]
    fn force_restart_leaves_healthy_checkpoints_alone() {
        let path = scratch("force-noop");
        let first = ResilientSweep::new(&path)
            .with_max_cells(3)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(first.measured, 3);
        // force_restart on a *valid* checkpoint must still resume.
        let second = ResilientSweep::new(&path)
            .with_force_restart(true)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        assert_eq!(second.resumed, 3);
        assert!(second.robustness.is_empty());
        ResilientSweep::new(&path).clear_checkpoint().unwrap();
    }

    #[test]
    fn failure_kinds_round_trip_through_the_checkpoint() {
        let path = scratch("kind-roundtrip");
        let runner = ResilientSweep::new(&path).with_retries(1);
        let out = quietly(|| {
            runner
                .run("t", &grid(), |ws, s| match (ws, s) {
                    (1024, 1) => panic!("poison"),
                    (1024, 2) => None,
                    _ => Some(model(ws, s)),
                })
                .unwrap()
        });
        assert_eq!(out.failed.len(), 2);
        // Reload and verify kinds and attempts survived serialization.
        let again = ResilientSweep::new(&path)
            .run("t", &grid(), |ws, s| Some(model(ws, s)))
            .unwrap();
        let poison = again
            .failed
            .iter()
            .find(|f| (f.ws_bytes, f.stride) == (1024, 1))
            .unwrap();
        assert_eq!(poison.kind, FailureKind::Panic);
        assert_eq!(poison.attempts, 2);
        let unsup = again
            .failed
            .iter()
            .find(|f| (f.ws_bytes, f.stride) == (1024, 2))
            .unwrap();
        assert_eq!(unsup.kind, FailureKind::Unsupported);
        runner.clear_checkpoint().unwrap();
    }
}
