//! Durable, checksummed checkpoint storage.
//!
//! ROADMAP item 1 promotes [`crate::resilient`] checkpoints from test
//! conveniences to the cache backing store of a long-running
//! characterization server, so this module gives them service-level
//! durability semantics:
//!
//! * **Atomic writes** — payload goes to a `<path>.tmp` sibling, is
//!   `fsync`ed (optional, on by default), and is renamed over the target.
//!   Readers never observe a half-written file; a crash leaves either the
//!   old checkpoint or the new one.
//! * **Checksum footer** — every file ends with a one-line footer carrying
//!   a hand-rolled CRC32 (IEEE polynomial, zero-dep) and the payload byte
//!   length. [`read_verified`] recomputes both before handing the payload
//!   to the parser.
//! * **Torn-tail detection** — a file whose footer is missing, malformed,
//!   or inconsistent with the payload is reported as
//!   [`CheckpointError::Corrupt`] with a named cause, never silently
//!   treated as empty.
//!
//! The error taxonomy ([`CheckpointError`]) distinguishes the four ways a
//! resume can fail — I/O, corruption, schema version drift, and grid
//! mismatch — so callers (and the CLI) can decide which ones
//! `--force-restart` may bulldoze.
//!
//! Writes accept a [`WriteFaults`] hook so the chaos harness
//! ([`crate::chaos`]) can inject short writes, bit flips and rename
//! failures on a seeded schedule without this module knowing about it.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use gasnub_memsim::SimError;

/// Magic prefix of the checksum footer line.
pub const FOOTER_MAGIC: &str = "#gasnub-checkpoint";

/// Why a checkpoint could not be written or resumed.
///
/// Every variant names the file it concerns; `Display` output is what the
/// CLI prints before exiting, so the messages lead with the actionable
/// cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io {
        /// The checkpoint path involved.
        path: PathBuf,
        /// Which operation failed (`"write"`, `"fsync"`, `"rename"`, ...).
        op: String,
        /// The OS error text.
        detail: String,
    },
    /// The file's bytes fail integrity verification (torn tail, missing or
    /// malformed footer, checksum or length mismatch, unparseable payload,
    /// or structurally invalid state arrays).
    Corrupt {
        /// The checkpoint path involved.
        path: PathBuf,
        /// What exactly failed to verify.
        detail: String,
    },
    /// The file verifies but was written by a different checkpoint schema
    /// version.
    SchemaMismatch {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The version the file declares.
        found: u64,
        /// The version this binary writes.
        expected: u64,
    },
    /// The file verifies but belongs to a different sweep (different title,
    /// machine, op, or grid axes).
    GridMismatch {
        /// The checkpoint path involved.
        path: PathBuf,
        /// Which identity field differs and how.
        detail: String,
    },
}

impl CheckpointError {
    /// The checkpoint path the error concerns.
    pub fn path(&self) -> &Path {
        match self {
            CheckpointError::Io { path, .. }
            | CheckpointError::Corrupt { path, .. }
            | CheckpointError::SchemaMismatch { path, .. }
            | CheckpointError::GridMismatch { path, .. } => path,
        }
    }

    /// Short machine-readable name of the variant (`"io"`, `"corrupt"`,
    /// `"schema-mismatch"`, `"grid-mismatch"`), used in test tables and
    /// chaos schedule logs.
    pub fn kind(&self) -> &'static str {
        match self {
            CheckpointError::Io { .. } => "io",
            CheckpointError::Corrupt { .. } => "corrupt",
            CheckpointError::SchemaMismatch { .. } => "schema-mismatch",
            CheckpointError::GridMismatch { .. } => "grid-mismatch",
        }
    }

    /// Whether `--force-restart` is allowed to discard the file and start
    /// fresh. True for everything except I/O errors: when the disk itself
    /// is failing, restarting would lose work *and* likely fail again.
    pub fn force_restart_recoverable(&self) -> bool {
        !matches!(self, CheckpointError::Io { .. })
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, op, detail } => {
                write!(f, "checkpoint {}: {op} failed: {detail}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "checkpoint {} is corrupt: {detail}", path.display())
            }
            CheckpointError::SchemaMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {} has schema version {found}, this binary expects {expected}",
                path.display()
            ),
            CheckpointError::GridMismatch { path, detail } => {
                write!(
                    f,
                    "checkpoint {} belongs to a different sweep: {detail}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> Self {
        match &e {
            CheckpointError::Io { .. } => SimError::io(e.to_string()),
            _ => SimError::malformed(e.to_string()),
        }
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected), computed bytewise from a
/// lazily built lookup table. Standard test vector:
/// `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // const-evaluated once; no lazy_static / OnceLock needed.
    const TABLE: [u32; 256] = {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Renders the footer line for `payload` (without trailing newline).
fn footer_for(payload: &[u8]) -> String {
    format!(
        "{FOOTER_MAGIC} crc32={:08x} len={}",
        crc32(payload),
        payload.len()
    )
}

/// Fault-injection hook consulted by [`write_durable_with`].
///
/// The production implementation is [`NoFaults`]; the chaos harness
/// ([`crate::chaos::FaultInjector`]) substitutes seeded corruption.
pub trait WriteFaults {
    /// Possibly corrupts the exact bytes about to hit the temp file
    /// (footer included). Returning them unchanged means a clean write.
    fn corrupt_file_bytes(&mut self, bytes: Vec<u8>) -> Vec<u8>;

    /// Whether the rename step should fail this time.
    fn fail_rename(&mut self) -> bool;

    /// Observes whether this write will fsync before renaming. The
    /// fsync-batching tests count these; the default ignores them.
    fn observe_fsync(&mut self, _durable: bool) {}
}

/// The no-op fault hook: clean writes, renames always succeed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl WriteFaults for NoFaults {
    fn corrupt_file_bytes(&mut self, bytes: Vec<u8>) -> Vec<u8> {
        bytes
    }
    fn fail_rename(&mut self) -> bool {
        false
    }
}

/// Atomically writes `payload` + checksum footer to `path`.
///
/// Equivalent to [`write_durable_with`] with [`NoFaults`].
pub fn write_durable(path: &Path, payload: &str, fsync: bool) -> Result<(), CheckpointError> {
    write_durable_with(path, payload, fsync, &mut NoFaults)
}

/// Atomically writes `payload` + checksum footer to `path`, routing the
/// physical bytes and the rename decision through `faults`.
///
/// The sequence is write-temp → (optional) fsync → rename; a failure at
/// any step leaves the previous checkpoint (if any) untouched. Injected
/// *corruption* still reports success — that is the point: silent disk
/// corruption is only detectable at the next [`read_verified`].
pub fn write_durable_with(
    path: &Path,
    payload: &str,
    fsync: bool,
    faults: &mut dyn WriteFaults,
) -> Result<(), CheckpointError> {
    let io = |op: &str, e: std::io::Error| CheckpointError::Io {
        path: path.to_path_buf(),
        op: op.to_string(),
        detail: e.to_string(),
    };
    faults.observe_fsync(fsync);
    let mut bytes = Vec::with_capacity(payload.len() + 64);
    bytes.extend_from_slice(payload.as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(footer_for(payload.as_bytes()).as_bytes());
    bytes.push(b'\n');
    let bytes = faults.corrupt_file_bytes(bytes);

    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io("create temp", e))?;
        f.write_all(&bytes).map_err(|e| io("write", e))?;
        if fsync {
            f.sync_all().map_err(|e| io("fsync", e))?;
        }
    }
    if faults.fail_rename() {
        let _ = fs::remove_file(&tmp);
        return Err(CheckpointError::Io {
            path: path.to_path_buf(),
            op: "rename".to_string(),
            detail: "injected rename failure".to_string(),
        });
    }
    fs::rename(&tmp, path).map_err(|e| io("rename", e))
}

/// The temp sibling `write_durable` stages into before the rename.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Where [`quarantine_file`] moves a corrupt checkpoint.
pub fn corrupt_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".corrupt");
    path.with_file_name(name)
}

/// Moves a corrupt checkpoint aside to `<path>.corrupt` (overwriting any
/// previous quarantined file) so `--force-restart` preserves the evidence
/// instead of deleting it.
pub fn quarantine_file(path: &Path) -> Result<PathBuf, CheckpointError> {
    let dest = corrupt_path(path);
    fs::rename(path, &dest).map_err(|e| CheckpointError::Io {
        path: path.to_path_buf(),
        op: "quarantine rename".to_string(),
        detail: e.to_string(),
    })?;
    Ok(dest)
}

/// Reads `path` and verifies its checksum footer; returns the payload
/// (without footer) on success, `Ok(None)` when the file does not exist.
///
/// Every way the bytes can be wrong maps to [`CheckpointError::Corrupt`]
/// with a distinct detail string:
/// * no footer line at the tail → torn tail (the classic crash-mid-write
///   signature, or a pre-footer legacy file);
/// * footer present but unparseable → torn footer;
/// * declared length ≠ payload length → short write;
/// * declared CRC ≠ recomputed CRC → bit rot / flip.
pub fn read_verified(path: &Path) -> Result<Option<String>, CheckpointError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(CheckpointError::Io {
                path: path.to_path_buf(),
                op: "read".to_string(),
                detail: e.to_string(),
            })
        }
    };
    let corrupt = |detail: &str| CheckpointError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    };
    let text = String::from_utf8(bytes).map_err(|_| corrupt("file is not valid UTF-8"))?;
    // The trailing newline is part of the on-disk format: a file cut off
    // anywhere — even one byte short — fails this check.
    let Some(stripped) = text.strip_suffix('\n') else {
        return Err(corrupt("file does not end in a newline (torn tail)"));
    };
    let (payload, footer) = match stripped.rfind('\n') {
        Some(idx) => (&stripped[..idx], &stripped[idx + 1..]),
        None => (stripped, ""),
    };
    let Some(fields) = footer.strip_prefix(FOOTER_MAGIC) else {
        return Err(corrupt(
            "checksum footer missing (torn tail or pre-checksum file)",
        ));
    };
    let mut crc_decl: Option<u32> = None;
    let mut len_decl: Option<usize> = None;
    for field in fields.split_whitespace() {
        if let Some(v) = field.strip_prefix("crc32=") {
            crc_decl = u32::from_str_radix(v, 16).ok();
        } else if let Some(v) = field.strip_prefix("len=") {
            len_decl = v.parse().ok();
        }
    }
    let (Some(crc_decl), Some(len_decl)) = (crc_decl, len_decl) else {
        return Err(corrupt("checksum footer is malformed (torn footer)"));
    };
    if payload.len() != len_decl {
        return Err(corrupt(&format!(
            "payload is {} bytes but footer declares {len_decl} (short write)",
            payload.len()
        )));
    }
    let actual = crc32(payload.as_bytes());
    if actual != crc_decl {
        return Err(corrupt(&format!(
            "crc32 mismatch: computed {actual:08x}, footer declares {crc_decl:08x}"
        )));
    }
    Ok(Some(payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gasnub-storage-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_test_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = tdir("roundtrip");
        let path = dir.join("ck.json");
        write_durable(&path, "{\"a\":1}", true).unwrap();
        assert_eq!(read_verified(&path).unwrap().unwrap(), "{\"a\":1}");
        // No stray temp file.
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_ok_none() {
        let dir = tdir("missing");
        assert_eq!(read_verified(&dir.join("nope.json")).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn footerless_file_is_a_torn_tail() {
        let dir = tdir("torn");
        let path = dir.join("ck.json");
        fs::write(&path, "{\"a\":1}\n").unwrap();
        let err = read_verified(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }));
        assert!(err.to_string().contains("torn tail"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bit_is_a_crc_mismatch() {
        let dir = tdir("flip");
        let path = dir.join("ck.json");
        write_durable(&path, "{\"a\":1}", false).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[2] ^= 0x40;
        fs::write(&path, bytes).unwrap();
        let err = read_verified(&path).unwrap_err();
        assert!(err.to_string().contains("crc32 mismatch"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_payload_is_a_short_write() {
        let dir = tdir("trunc");
        let path = dir.join("ck.json");
        write_durable(&path, "{\"cells\":[1,2,3]}", false).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        // Drop bytes from the payload but keep the newline + footer line
        // intact, so the length check (not the footer parse) must catch it.
        let newline_at = text.rfind(FOOTER_MAGIC).unwrap() - 1;
        let torn = format!("{}{}", &text[..newline_at - 5], &text[newline_at..]);
        fs::write(&path, torn).unwrap();
        let err = read_verified(&path).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_rename_failure_keeps_the_old_checkpoint() {
        struct RenameBomb;
        impl WriteFaults for RenameBomb {
            fn corrupt_file_bytes(&mut self, b: Vec<u8>) -> Vec<u8> {
                b
            }
            fn fail_rename(&mut self) -> bool {
                true
            }
        }
        let dir = tdir("rename");
        let path = dir.join("ck.json");
        write_durable(&path, "old", false).unwrap();
        let err = write_durable_with(&path, "new", false, &mut RenameBomb).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(!err.force_restart_recoverable());
        assert_eq!(read_verified(&path).unwrap().unwrap(), "old");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_the_file_aside() {
        let dir = tdir("quarantine");
        let path = dir.join("ck.json");
        fs::write(&path, "garbage").unwrap();
        let dest = quarantine_file(&path).unwrap();
        assert!(!path.exists());
        assert_eq!(fs::read_to_string(dest).unwrap(), "garbage");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_convert_into_sim_errors() {
        let c = CheckpointError::Corrupt {
            path: PathBuf::from("x"),
            detail: "d".into(),
        };
        assert!(matches!(SimError::from(c), SimError::Malformed { .. }));
        let i = CheckpointError::Io {
            path: PathBuf::from("x"),
            op: "write".into(),
            detail: "d".into(),
        };
        assert!(matches!(SimError::from(i), SimError::Io { .. }));
    }

    #[test]
    fn kind_names_are_stable() {
        let p = PathBuf::from("x");
        assert_eq!(
            CheckpointError::SchemaMismatch {
                path: p.clone(),
                found: 1,
                expected: 2
            }
            .kind(),
            "schema-mismatch"
        );
        assert_eq!(
            CheckpointError::GridMismatch {
                path: p,
                detail: "t".into()
            }
            .kind(),
            "grid-mismatch"
        );
    }
}
