//! Generic per-message cost model.
//!
//! The T3D has "a 'per message' overhead for switching partners" (§3.2) and
//! every network interface pays a fixed cost per injected packet plus a
//! per-byte payload cost. This small model is shared by the NI
//! implementations.

use gasnub_memsim::ConfigError;

/// Per-message cost parameters, in CPU cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageCostModel {
    /// Fixed cycles per injected message/packet.
    pub per_message_cycles: f64,
    /// Cycles per payload byte.
    pub per_byte_cycles: f64,
    /// Extra cycles when the destination differs from the previous message's
    /// destination (the T3D's partner-switch cost).
    pub partner_switch_cycles: f64,
}

impl MessageCostModel {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any cost is negative.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.per_message_cycles < 0.0
            || self.per_byte_cycles < 0.0
            || self.partner_switch_cycles < 0.0
        {
            return Err(ConfigError::new(
                "message cost model",
                "cycle costs must be non-negative",
            ));
        }
        Ok(())
    }

    /// Cost of one message of `bytes` payload; `switched` marks a change of
    /// communication partner since the previous message.
    pub fn message_cycles(&self, bytes: u64, switched: bool) -> f64 {
        self.per_message_cycles
            + self.per_byte_cycles * bytes as f64
            + if switched {
                self.partner_switch_cycles
            } else {
                0.0
            }
    }

    /// Asymptotic bandwidth in MB/s for back-to-back messages of `bytes` to
    /// a fixed partner at a given clock.
    pub fn bandwidth_mb_s(&self, bytes: u64, clock_mhz: f64) -> f64 {
        let cycles = self.message_cycles(bytes, false);
        if cycles <= 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 * clock_mhz / cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MessageCostModel {
        MessageCostModel {
            per_message_cycles: 12.0,
            per_byte_cycles: 0.5,
            partner_switch_cycles: 100.0,
        }
    }

    #[test]
    fn validate_rejects_negative() {
        let mut m = model();
        m.per_byte_cycles = -1.0;
        assert!(m.validate().is_err());
        assert!(model().validate().is_ok());
    }

    #[test]
    fn coalesced_packets_amortize_overhead() {
        let m = model();
        // A 32-byte packet costs 12 + 16 = 28 cycles; four 8-byte packets
        // cost 4 * (12 + 4) = 64 cycles. Coalescing wins.
        assert!(m.message_cycles(32, false) < 4.0 * m.message_cycles(8, false));
    }

    #[test]
    fn partner_switch_is_charged() {
        let m = model();
        assert_eq!(
            m.message_cycles(8, true) - m.message_cycles(8, false),
            100.0
        );
    }

    #[test]
    fn bandwidth_grows_with_packet_size() {
        let m = model();
        assert!(m.bandwidth_mb_s(32, 150.0) > m.bandwidth_mb_s(8, 150.0));
    }
}
