#![warn(missing_docs)]

//! # gasnub-interconnect
//!
//! Interconnect substrates for the GASNUB reproduction of Stricker & Gross
//! (HPCA-3, 1997): the communication fabrics that make remote memory
//! bandwidth *non-uniform*.
//!
//! Three families of hardware are modelled:
//!
//! * [`bus`] — the DEC 8400's 256-bit, 75 MHz split-transaction system bus
//!   ("a peak transfer-rate of 2.4 GByte/s … reduced to a peak of
//!   1.6 GByte/s under the best burst transfer protocol", §3.1);
//! * [`topology`] — the Cray T3D/T3E 3D torus with dimension-order routing
//!   and per-PE or shared (T3D node-pair) network access;
//! * [`ni`] — the network interfaces: the T3D's fetch/deposit circuitry with
//!   its external prefetch FIFO, and the T3E's E-registers.
//!
//! All models are *cost models with state*: they translate transfer requests
//! into CPU cycles, tracking occupancy (bus, link, E-register pipeline) the
//! way [`gasnub_memsim::dram::Dram`] tracks bank busy windows.
//!
//! ## Example
//!
//! ```rust
//! use gasnub_interconnect::topology::{NodeId, Torus3d};
//!
//! // The paper's full-size machine: an 8 x 8 x 8 torus of 512 PEs.
//! let torus = Torus3d::new([8, 8, 8])?;
//! assert_eq!(torus.nodes(), 512);
//! // Dimension-order routes wrap the short way around each ring.
//! assert_eq!(torus.hops(NodeId(0), NodeId(7)), 1);
//! # Ok::<(), gasnub_memsim::ConfigError>(())
//! ```

pub mod bus;
pub mod link;
pub mod message;
pub mod netsim;
pub mod ni;
pub mod topology;

pub use bus::{Bus, BusConfig, BusJitterConfig};
pub use link::{Link, LinkConfig};
pub use message::MessageCostModel;
pub use netsim::{simulate, simulate_aapc, simulate_with_faults, Flow, NetSimResult};
pub use ni::{ERegisters, ERegistersConfig, NiLossConfig, NiLossModel, T3dNi, T3dNiConfig};
pub use topology::{ChannelFaults, NodeId, Torus3d};
