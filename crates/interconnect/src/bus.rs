//! The DEC 8400 split-transaction system bus.
//!
//! From the paper (§3.1): "The DEC 8400 is built around a high speed system
//! bus with 40-bit address and 256-bit data path. This bus is clocked at
//! 75 MHz, a quarter of the clock frequency of the microprocessor, yielding
//! a peak transfer-rate of 2.4 GByte/s across the system bus. This limit is
//! reduced to a peak of 1.6 GByte/s under the best burst transfer protocol."
//!
//! The model charges, per coherent bus transaction (one cache line):
//! arbitration + snoop bus cycles, then the data beats, all converted into
//! CPU cycles. Occupancy is tracked so that several processors sharing the
//! bus (the Fig. 15-17 four-processor runs) serialize.

use gasnub_memsim::rng::Rng;
use gasnub_memsim::ConfigError;
use gasnub_trace::CounterSet;

/// Deterministic arbitration-stall jitter: a degraded arbiter (or a bus
/// shared with unmodelled agents) adds a pseudo-random extra stall of up to
/// `amplitude_bus_cycles` bus cycles per transaction. The stall sequence is
/// a pure function of the seed and the transaction index, so cycle counts
/// stay reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct BusJitterConfig {
    /// Maximum extra arbitration stall per transaction, in bus cycles.
    pub amplitude_bus_cycles: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl BusJitterConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a negative or non-finite amplitude.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.amplitude_bus_cycles < 0.0 || !self.amplitude_bus_cycles.is_finite() {
            return Err(ConfigError::new(
                "bus jitter",
                "amplitude must be finite and non-negative",
            ));
        }
        Ok(())
    }

    /// The jitter of transaction number `index`, in bus cycles.
    fn stall_bus_cycles(&self, index: u64) -> f64 {
        Rng::new(self.seed ^ index).gen_f64() * self.amplitude_bus_cycles
    }
}

/// Static description of the shared bus (costs in *bus* cycles; the model
/// converts using the clock ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct BusConfig {
    /// Bus clock in MHz (75 for the 8400).
    pub bus_clock_mhz: f64,
    /// CPU clock in MHz (300 for the 8400's 21164).
    pub cpu_clock_mhz: f64,
    /// Data path width in bytes (32 for the 256-bit 8400 bus).
    pub width_bytes: u64,
    /// Bus cycles for arbitration + address phase per transaction.
    pub arbitration_bus_cycles: f64,
    /// Bus cycles for the snoop/response phase per transaction.
    pub snoop_bus_cycles: f64,
    /// Whether the burst transfer protocol is active. When disabled (the
    /// "bus burst off" ablation) every data beat pays an extra address
    /// phase, pushing the effective ceiling well below 1.6 GB/s.
    pub burst: bool,
}

impl BusConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when clocks or the width are not positive, or
    /// any overhead is negative.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = "bus";
        if [self.bus_clock_mhz, self.cpu_clock_mhz]
            .iter()
            .any(|c| c.is_nan() || *c <= 0.0)
        {
            return Err(ConfigError::new(c, "clocks must be positive"));
        }
        if self.width_bytes == 0 || !self.width_bytes.is_power_of_two() {
            return Err(ConfigError::new(c, "width must be a non-zero power of two"));
        }
        if self.arbitration_bus_cycles < 0.0 || self.snoop_bus_cycles < 0.0 {
            return Err(ConfigError::new(c, "overheads must be non-negative"));
        }
        Ok(())
    }

    /// CPU cycles per bus cycle.
    pub fn cpu_cycles_per_bus_cycle(&self) -> f64 {
        self.cpu_clock_mhz / self.bus_clock_mhz
    }

    /// Bus cycles one transaction of `bytes` occupies the bus.
    pub fn transaction_bus_cycles(&self, bytes: u64) -> f64 {
        let beats = bytes.div_ceil(self.width_bytes);
        let data = if self.burst {
            beats as f64
        } else {
            // Without bursting each beat re-arbitrates.
            beats as f64 * (1.0 + self.arbitration_bus_cycles)
        };
        self.arbitration_bus_cycles + self.snoop_bus_cycles + data
    }

    /// The same occupancy converted to CPU cycles.
    pub fn transaction_cpu_cycles(&self, bytes: u64) -> f64 {
        self.transaction_bus_cycles(bytes) * self.cpu_cycles_per_bus_cycle()
    }

    /// Peak raw data bandwidth in MB/s (width × bus clock).
    pub fn peak_mb_s(&self) -> f64 {
        self.width_bytes as f64 * self.bus_clock_mhz
    }

    /// Effective data bandwidth for back-to-back transactions of `bytes`.
    pub fn effective_mb_s(&self, bytes: u64) -> f64 {
        let bus_cycles = self.transaction_bus_cycles(bytes);
        if bus_cycles <= 0.0 {
            return f64::INFINITY;
        }
        bytes as f64 * self.bus_clock_mhz / bus_cycles
    }
}

/// Runtime occupancy state of the shared bus.
#[derive(Debug, Clone)]
pub struct Bus {
    config: BusConfig,
    busy_until: f64,
    stall_total: f64,
    transactions: u64,
    jitter: Option<BusJitterConfig>,
}

impl Bus {
    /// Builds a bus from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`BusConfig::validate`] errors.
    pub fn new(config: BusConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Bus {
            config,
            busy_until: 0.0,
            stall_total: 0.0,
            transactions: 0,
            jitter: None,
        })
    }

    /// Attaches (or removes) deterministic arbitration jitter.
    ///
    /// # Errors
    ///
    /// Propagates [`BusJitterConfig::validate`] errors.
    pub fn set_jitter(&mut self, jitter: Option<BusJitterConfig>) -> Result<(), ConfigError> {
        if let Some(j) = &jitter {
            j.validate()?;
        }
        self.jitter = jitter;
        Ok(())
    }

    /// The attached jitter model, if any.
    pub fn jitter(&self) -> Option<&BusJitterConfig> {
        self.jitter.as_ref()
    }

    /// The configuration this bus was built from.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Number of transactions granted.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total CPU cycles requesters spent waiting for the bus.
    pub fn total_stall_cycles(&self) -> f64 {
        self.stall_total
    }

    /// Resets occupancy and statistics.
    pub fn reset(&mut self) {
        self.busy_until = 0.0;
        self.stall_total = 0.0;
        self.transactions = 0;
    }

    /// Exports bus statistics into `out` (stall cycles rounded to whole
    /// cycles).
    pub fn export_counters(&self, out: &mut CounterSet) {
        out.add("bus_transactions", self.transactions);
        out.add("bus_stall_cycles", self.stall_total.round() as u64);
    }

    /// Performs one coherent transaction moving `bytes` at CPU time `now`,
    /// returning the CPU cycles the requester observes (attached jitter adds
    /// its deterministic arbitration stall).
    pub fn transaction(&mut self, bytes: u64, now: f64) -> f64 {
        let index = self.transactions;
        self.transactions += 1;
        let jitter_cpu = self.jitter.as_ref().map_or(0.0, |j| {
            j.stall_bus_cycles(index) * self.config.cpu_cycles_per_bus_cycle()
        });
        let stall = (self.busy_until - now).max(0.0) + jitter_cpu;
        self.stall_total += stall;
        let occupancy = self.config.transaction_cpu_cycles(bytes);
        self.busy_until = now + stall + occupancy;
        stall + occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's 8400 bus.
    fn dec8400_bus() -> BusConfig {
        BusConfig {
            bus_clock_mhz: 75.0,
            cpu_clock_mhz: 300.0,
            width_bytes: 32,
            arbitration_bus_cycles: 0.5,
            snoop_bus_cycles: 0.5,
            burst: true,
        }
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut c = dec8400_bus();
        c.bus_clock_mhz = 0.0;
        assert!(c.validate().is_err());
        let mut c = dec8400_bus();
        c.width_bytes = 24;
        assert!(c.validate().is_err());
        assert!(dec8400_bus().validate().is_ok());
    }

    #[test]
    fn peak_matches_paper() {
        // 32 B x 75 MHz = 2.4 GB/s.
        assert!((dec8400_bus().peak_mb_s() - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn burst_protocol_ceiling_near_paper_value() {
        // 64-byte lines: 2 data beats + 1 cycle overhead = 3 bus cycles,
        // 64 B * 75 MHz / 3 = 1.6 GB/s — the paper's burst ceiling.
        let eff = dec8400_bus().effective_mb_s(64);
        assert!((eff - 1600.0).abs() < 1.0, "got {eff}");
    }

    #[test]
    fn burst_off_is_slower() {
        let mut c = dec8400_bus();
        c.burst = false;
        assert!(c.effective_mb_s(64) < dec8400_bus().effective_mb_s(64));
    }

    #[test]
    fn clock_ratio_conversion() {
        assert_eq!(dec8400_bus().cpu_cycles_per_bus_cycle(), 4.0);
        // 3 bus cycles -> 12 CPU cycles for a 64-byte burst transaction.
        assert!((dec8400_bus().transaction_cpu_cycles(64) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn contention_serializes_requesters() {
        let mut bus = Bus::new(dec8400_bus()).unwrap();
        let a = bus.transaction(64, 0.0);
        let b = bus.transaction(64, 0.0);
        assert!(b > a, "second requester at the same instant must stall");
        assert_eq!(bus.transactions(), 2);
        assert!(bus.total_stall_cycles() > 0.0);
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut bus = Bus::new(dec8400_bus()).unwrap();
        bus.transaction(64, 0.0);
        let late = bus.transaction(64, 500.0);
        assert!((late - 12.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_config_validates() {
        assert!(BusJitterConfig {
            amplitude_bus_cycles: 2.0,
            seed: 1
        }
        .validate()
        .is_ok());
        assert!(BusJitterConfig {
            amplitude_bus_cycles: -1.0,
            seed: 1
        }
        .validate()
        .is_err());
        assert!(BusJitterConfig {
            amplitude_bus_cycles: f64::NAN,
            seed: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn jitter_slows_transactions_deterministically() {
        let run = |jitter: Option<BusJitterConfig>| {
            let mut bus = Bus::new(dec8400_bus()).unwrap();
            bus.set_jitter(jitter).unwrap();
            let mut now = 0.0;
            for _ in 0..256 {
                now += bus.transaction(64, now);
            }
            now
        };
        let clean = run(None);
        let jitter = BusJitterConfig {
            amplitude_bus_cycles: 3.0,
            seed: 7,
        };
        let jittered = run(Some(jitter.clone()));
        assert!(jittered > clean, "{jittered} vs {clean}");
        assert_eq!(
            jittered,
            run(Some(jitter)),
            "same seed must give the same cycle count"
        );
    }

    #[test]
    fn zero_amplitude_jitter_is_free() {
        let mut bus = Bus::new(dec8400_bus()).unwrap();
        bus.set_jitter(Some(BusJitterConfig {
            amplitude_bus_cycles: 0.0,
            seed: 3,
        }))
        .unwrap();
        let c = bus.transaction(64, 0.0);
        assert!((c - 12.0).abs() < 1e-9);
    }
}
