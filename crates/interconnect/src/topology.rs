//! 3D torus topology with dimension-order routing (Cray T3D/T3E fabric).

use serde::{Deserialize, Serialize};

use gasnub_memsim::ConfigError;

/// Identifies one processing element in a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// A 3D torus of `x * y * z` nodes, as used by the Cray T3D and T3E.
///
/// Nodes are numbered in x-major order: `id = x + dims.x * (y + dims.y * z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus3d {
    dims: [u32; 3],
}

impl Torus3d {
    /// Creates a torus with the given per-dimension extents.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero.
    pub fn new(dims: [u32; 3]) -> Result<Self, ConfigError> {
        if dims.contains(&0) {
            return Err(ConfigError::new("torus", "all dimensions must be non-zero"));
        }
        Ok(Torus3d { dims })
    }

    /// The per-dimension extents.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> u32 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// The (x, y, z) coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> [u32; 3] {
        assert!(node.0 < self.nodes(), "node {} out of range for {} nodes", node.0, self.nodes());
        let x = node.0 % self.dims[0];
        let y = (node.0 / self.dims[0]) % self.dims[1];
        let z = node.0 / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// The node at coordinates (x, y, z) (taken modulo the torus extents).
    pub fn node_at(&self, coords: [u32; 3]) -> NodeId {
        let x = coords[0] % self.dims[0];
        let y = coords[1] % self.dims[1];
        let z = coords[2] % self.dims[2];
        NodeId(x + self.dims[0] * (y + self.dims[1] * z))
    }

    /// Hop distance in one torus dimension (shorter way around).
    fn dim_distance(extent: u32, a: u32, b: u32) -> u32 {
        let d = a.abs_diff(b);
        d.min(extent - d)
    }

    /// Number of network hops between two nodes under dimension-order
    /// routing (the sum of per-dimension shortest torus distances).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        let a = self.coords(from);
        let b = self.coords(to);
        (0..3).map(|i| Self::dim_distance(self.dims[i], a[i], b[i])).sum()
    }

    /// The directed channels a packet traverses under dimension-order
    /// routing (x, then y, then z; shortest way around each ring).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<(NodeId, NodeId)> {
        let mut at = self.coords(from);
        let goal = self.coords(to);
        let mut channels = Vec::with_capacity(self.hops(from, to) as usize);
        for dim in 0..3 {
            let extent = self.dims[dim];
            while at[dim] != goal[dim] {
                let fwd = (goal[dim] + extent - at[dim]) % extent;
                let step_up = fwd <= extent - fwd;
                let here = self.node_at(at);
                at[dim] = if step_up { (at[dim] + 1) % extent } else { (at[dim] + extent - 1) % extent };
                channels.push((here, self.node_at(at)));
            }
        }
        channels
    }

    /// Maximum per-channel load of an all-to-all personalized communication
    /// (every node sends one unit to every other node) under
    /// dimension-order routing — the congestion metric behind the paper's
    /// remark that transposes scale "before bisection limits become
    /// visible" (§6.2).
    pub fn aapc_max_channel_load(&self) -> u32 {
        use std::collections::HashMap;
        let mut load: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        let n = self.nodes();
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                for ch in self.route(NodeId(from), NodeId(to)) {
                    *load.entry(ch).or_insert(0) += 1;
                }
            }
        }
        load.values().cloned().max().unwrap_or(0)
    }

    /// Bisection width in links: the number of links crossing a bisection of
    /// the largest dimension. For a torus each ring contributes two crossing
    /// links. Used for the paper's §8 AAPC scalability estimate.
    pub fn bisection_links(&self) -> u32 {
        // Cut perpendicular to the largest dimension.
        let (max_idx, _) = self
            .dims
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .expect("torus has three dimensions");
        let cross_section: u32 = self.dims.iter().enumerate().filter(|&(i, _)| i != max_idx).map(|(_, &d)| d).product();
        // Wrap-around means two links per ring cross the cut (if the
        // dimension has more than two nodes; a 2-ring's links coincide).
        let per_ring = if self.dims[max_idx] > 2 { 2 } else { 1 };
        cross_section * per_ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimension() {
        assert!(Torus3d::new([0, 2, 2]).is_err());
        assert!(Torus3d::new([2, 2, 2]).is_ok());
    }

    #[test]
    fn coords_round_trip() {
        let t = Torus3d::new([4, 3, 2]).unwrap();
        for id in 0..t.nodes() {
            let n = NodeId(id);
            assert_eq!(t.node_at(t.coords(n)), n);
        }
    }

    #[test]
    fn neighbor_hops() {
        let t = Torus3d::new([4, 4, 4]).unwrap();
        let origin = t.node_at([0, 0, 0]);
        assert_eq!(t.hops(origin, t.node_at([1, 0, 0])), 1);
        assert_eq!(t.hops(origin, t.node_at([1, 1, 0])), 2);
        assert_eq!(t.hops(origin, t.node_at([1, 1, 1])), 3);
        assert_eq!(t.hops(origin, origin), 0);
    }

    #[test]
    fn torus_wraps_around() {
        let t = Torus3d::new([8, 1, 1]).unwrap();
        // 0 -> 7 is one hop the short way around the ring.
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 4);
        assert_eq!(t.hops(NodeId(0), NodeId(5)), 3);
    }

    #[test]
    fn bisection_of_512_node_torus() {
        // The paper's full-size machine: 8 x 8 x 8 = 512 PEs.
        let t = Torus3d::new([8, 8, 8]).unwrap();
        assert_eq!(t.nodes(), 512);
        assert_eq!(t.bisection_links(), 8 * 8 * 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let t = Torus3d::new([2, 2, 2]).unwrap();
        let _ = t.coords(NodeId(8));
    }

    #[test]
    fn route_length_equals_hop_count() {
        let t = Torus3d::new([4, 3, 2]).unwrap();
        for from in 0..t.nodes() {
            for to in 0..t.nodes() {
                let route = t.route(NodeId(from), NodeId(to));
                assert_eq!(route.len() as u32, t.hops(NodeId(from), NodeId(to)), "{from}->{to}");
            }
        }
    }

    #[test]
    fn route_is_connected_and_ends_at_destination() {
        let t = Torus3d::new([4, 4, 2]).unwrap();
        let from = NodeId(1);
        let to = NodeId(29);
        let route = t.route(from, to);
        assert_eq!(route.first().unwrap().0, from);
        assert_eq!(route.last().unwrap().1, to);
        for pair in route.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "channels must chain");
        }
    }

    #[test]
    fn route_takes_the_short_way_around() {
        let t = Torus3d::new([8, 1, 1]).unwrap();
        // 0 -> 7 should go backwards through the wraparound, one hop.
        let route = t.route(NodeId(0), NodeId(7));
        assert_eq!(route, vec![(NodeId(0), NodeId(7))]);
    }

    #[test]
    fn self_route_is_empty() {
        let t = Torus3d::new([4, 4, 4]).unwrap();
        assert!(t.route(NodeId(9), NodeId(9)).is_empty());
    }

    #[test]
    fn aapc_congestion_grows_with_machine_size() {
        let small = Torus3d::new([2, 2, 1]).unwrap();
        let large = Torus3d::new([4, 4, 2]).unwrap();
        let s = small.aapc_max_channel_load();
        let l = large.aapc_max_channel_load();
        assert!(s >= 1);
        assert!(l > s, "AAPC congestion must grow: {s} vs {l}");
    }

    #[test]
    fn aapc_load_is_at_least_the_bisection_bound() {
        // Total cross-bisection traffic / bisection links lower-bounds the
        // maximum channel load.
        let t = Torus3d::new([4, 4, 1]).unwrap();
        let n = t.nodes();
        let cross_traffic = (n / 2) * (n / 2) * 2; // both directions
        let bound = cross_traffic / (2 * t.bisection_links());
        assert!(
            t.aapc_max_channel_load() >= bound,
            "{} >= {bound}",
            t.aapc_max_channel_load()
        );
    }
}
