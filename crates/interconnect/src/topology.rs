//! 3D torus topology with dimension-order routing (Cray T3D/T3E fabric),
//! plus fault-aware fallback routing around failed or degraded channels.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gasnub_memsim::{ConfigError, SimError};

/// Identifies one processing element in a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// The fault state of a torus fabric: which directed channels are dead and
/// which still work at a fraction of their healthy capacity.
///
/// Channels are directed `(from, to)` neighbor pairs, matching what
/// [`Torus3d::route`] emits. Collections are B-tree based so iteration order
/// (and therefore every downstream cycle count) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelFaults {
    failed: BTreeSet<(NodeId, NodeId)>,
    degraded: BTreeMap<(NodeId, NodeId), f64>,
}

impl ChannelFaults {
    /// A fabric with no faults.
    pub fn none() -> Self {
        ChannelFaults::default()
    }

    /// Marks a directed channel as completely failed (carries no traffic).
    pub fn fail_channel(&mut self, from: NodeId, to: NodeId) {
        self.degraded.remove(&(from, to));
        self.failed.insert((from, to));
    }

    /// Marks a directed channel as degraded to `factor` of its healthy
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `0 < factor <= 1`.
    pub fn degrade_channel(
        &mut self,
        from: NodeId,
        to: NodeId,
        factor: f64,
    ) -> Result<(), ConfigError> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(ConfigError::new(
                "channel faults",
                "degradation factor must be in (0, 1]",
            ));
        }
        if !self.failed.contains(&(from, to)) {
            self.degraded.insert((from, to), factor);
        }
        Ok(())
    }

    /// Whether a directed channel is completely failed.
    pub fn is_failed(&self, from: NodeId, to: NodeId) -> bool {
        self.failed.contains(&(from, to))
    }

    /// The fraction of healthy capacity this channel still delivers:
    /// 0 when failed, the degradation factor when degraded, 1 otherwise.
    pub fn capacity_factor(&self, from: NodeId, to: NodeId) -> f64 {
        if self.failed.contains(&(from, to)) {
            0.0
        } else {
            self.degraded.get(&(from, to)).copied().unwrap_or(1.0)
        }
    }

    /// True when no channel is failed or degraded.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty() && self.degraded.is_empty()
    }

    /// Number of failed channels.
    pub fn failed_count(&self) -> usize {
        self.failed.len()
    }

    /// Number of degraded (but live) channels.
    pub fn degraded_count(&self) -> usize {
        self.degraded.len()
    }

    /// Iterates the failed channels in deterministic order.
    pub fn failed_channels(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.failed.iter().copied()
    }

    /// Iterates `(channel, factor)` for the degraded channels in
    /// deterministic order.
    pub fn degraded_channels(&self) -> impl Iterator<Item = ((NodeId, NodeId), f64)> + '_ {
        self.degraded.iter().map(|(&ch, &f)| (ch, f))
    }
}

/// A 3D torus of `x * y * z` nodes, as used by the Cray T3D and T3E.
///
/// Nodes are numbered in x-major order: `id = x + dims.x * (y + dims.y * z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus3d {
    dims: [u32; 3],
}

impl Torus3d {
    /// Creates a torus with the given per-dimension extents.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero.
    pub fn new(dims: [u32; 3]) -> Result<Self, ConfigError> {
        if dims.contains(&0) {
            return Err(ConfigError::new("torus", "all dimensions must be non-zero"));
        }
        Ok(Torus3d { dims })
    }

    /// The per-dimension extents.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> u32 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// The (x, y, z) coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> [u32; 3] {
        assert!(
            node.0 < self.nodes(),
            "node {} out of range for {} nodes",
            node.0,
            self.nodes()
        );
        let x = node.0 % self.dims[0];
        let y = (node.0 / self.dims[0]) % self.dims[1];
        let z = node.0 / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// The node at coordinates (x, y, z) (taken modulo the torus extents).
    pub fn node_at(&self, coords: [u32; 3]) -> NodeId {
        let x = coords[0] % self.dims[0];
        let y = coords[1] % self.dims[1];
        let z = coords[2] % self.dims[2];
        NodeId(x + self.dims[0] * (y + self.dims[1] * z))
    }

    /// Hop distance in one torus dimension (shorter way around).
    fn dim_distance(extent: u32, a: u32, b: u32) -> u32 {
        let d = a.abs_diff(b);
        d.min(extent - d)
    }

    /// Number of network hops between two nodes under dimension-order
    /// routing (the sum of per-dimension shortest torus distances).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        let a = self.coords(from);
        let b = self.coords(to);
        (0..3)
            .map(|i| Self::dim_distance(self.dims[i], a[i], b[i]))
            .sum()
    }

    /// The directed channels a packet traverses under dimension-order
    /// routing (x, then y, then z; shortest way around each ring).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<(NodeId, NodeId)> {
        let mut at = self.coords(from);
        let goal = self.coords(to);
        let mut channels = Vec::with_capacity(self.hops(from, to) as usize);
        for dim in 0..3 {
            let extent = self.dims[dim];
            while at[dim] != goal[dim] {
                let fwd = (goal[dim] + extent - at[dim]) % extent;
                let step_up = fwd <= extent - fwd;
                let here = self.node_at(at);
                at[dim] = if step_up {
                    (at[dim] + 1) % extent
                } else {
                    (at[dim] + extent - 1) % extent
                };
                channels.push((here, self.node_at(at)));
            }
        }
        channels
    }

    /// The distinct torus neighbors of a node, in deterministic order
    /// (±x, ±y, ±z; duplicates collapse on extents of 1 or 2).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let c = self.coords(node);
        let mut out = Vec::with_capacity(6);
        for dim in 0..3 {
            let extent = self.dims[dim];
            for step in [1, extent - 1] {
                let mut n = c;
                n[dim] = (c[dim] + step) % extent;
                let id = self.node_at(n);
                if id != node && !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// The directed channels a packet traverses from `from` to `to` when the
    /// fabric carries `faults`: dimension-order routing when its route is
    /// intact, otherwise a deterministic breadth-first detour over the
    /// remaining live channels (degraded channels stay routable — only
    /// *failed* ones are avoided).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] when either node is outside the
    /// torus, and [`SimError::Unroutable`] when the failed channels
    /// disconnect `from` from `to`.
    pub fn route_avoiding(
        &self,
        from: NodeId,
        to: NodeId,
        faults: &ChannelFaults,
    ) -> Result<Vec<(NodeId, NodeId)>, SimError> {
        for n in [from, to] {
            if n.0 >= self.nodes() {
                return Err(SimError::out_of_range(
                    "torus",
                    format!("node {} with {} nodes", n.0, self.nodes()),
                ));
            }
        }
        if from == to {
            return Ok(Vec::new());
        }
        let preferred = self.route(from, to);
        if preferred.iter().all(|&(a, b)| !faults.is_failed(a, b)) {
            return Ok(preferred);
        }
        // Breadth-first search over live channels. Neighbor expansion order
        // is fixed, so the detour (and every cycle count derived from it) is
        // deterministic.
        let mut prev: Vec<Option<NodeId>> = vec![None; self.nodes() as usize];
        let mut seen = vec![false; self.nodes() as usize];
        seen[from.index()] = true;
        let mut queue = VecDeque::from([from]);
        'search: while let Some(here) = queue.pop_front() {
            for next in self.neighbors(here) {
                if seen[next.index()] || faults.is_failed(here, next) {
                    continue;
                }
                seen[next.index()] = true;
                prev[next.index()] = Some(here);
                if next == to {
                    break 'search;
                }
                queue.push_back(next);
            }
        }
        if !seen[to.index()] {
            return Err(SimError::unroutable(format!(
                "{from} -> {to}: {} failed channels disconnect the pair",
                faults.failed_count()
            )));
        }
        let mut channels = Vec::new();
        let mut at = to;
        while let Some(p) = prev[at.index()] {
            channels.push((p, at));
            at = p;
        }
        channels.reverse();
        Ok(channels)
    }

    /// Maximum per-channel load of an all-to-all personalized communication
    /// (every node sends one unit to every other node) under
    /// dimension-order routing — the congestion metric behind the paper's
    /// remark that transposes scale "before bisection limits become
    /// visible" (§6.2).
    pub fn aapc_max_channel_load(&self) -> u32 {
        use std::collections::HashMap;
        let mut load: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        let n = self.nodes();
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                for ch in self.route(NodeId(from), NodeId(to)) {
                    *load.entry(ch).or_insert(0) += 1;
                }
            }
        }
        load.values().cloned().max().unwrap_or(0)
    }

    /// Bisection width in links: the number of links crossing a bisection of
    /// the largest dimension. For a torus each ring contributes two crossing
    /// links. Used for the paper's §8 AAPC scalability estimate.
    pub fn bisection_links(&self) -> u32 {
        // Cut perpendicular to the largest dimension.
        let (max_idx, _) = self
            .dims
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .expect("torus has three dimensions");
        let cross_section: u32 = self
            .dims
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != max_idx)
            .map(|(_, &d)| d)
            .product();
        // Wrap-around means two links per ring cross the cut (if the
        // dimension has more than two nodes; a 2-ring's links coincide).
        let per_ring = if self.dims[max_idx] > 2 { 2 } else { 1 };
        cross_section * per_ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimension() {
        assert!(Torus3d::new([0, 2, 2]).is_err());
        assert!(Torus3d::new([2, 2, 2]).is_ok());
    }

    #[test]
    fn coords_round_trip() {
        let t = Torus3d::new([4, 3, 2]).unwrap();
        for id in 0..t.nodes() {
            let n = NodeId(id);
            assert_eq!(t.node_at(t.coords(n)), n);
        }
    }

    #[test]
    fn neighbor_hops() {
        let t = Torus3d::new([4, 4, 4]).unwrap();
        let origin = t.node_at([0, 0, 0]);
        assert_eq!(t.hops(origin, t.node_at([1, 0, 0])), 1);
        assert_eq!(t.hops(origin, t.node_at([1, 1, 0])), 2);
        assert_eq!(t.hops(origin, t.node_at([1, 1, 1])), 3);
        assert_eq!(t.hops(origin, origin), 0);
    }

    #[test]
    fn torus_wraps_around() {
        let t = Torus3d::new([8, 1, 1]).unwrap();
        // 0 -> 7 is one hop the short way around the ring.
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 4);
        assert_eq!(t.hops(NodeId(0), NodeId(5)), 3);
    }

    #[test]
    fn bisection_of_512_node_torus() {
        // The paper's full-size machine: 8 x 8 x 8 = 512 PEs.
        let t = Torus3d::new([8, 8, 8]).unwrap();
        assert_eq!(t.nodes(), 512);
        assert_eq!(t.bisection_links(), 8 * 8 * 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let t = Torus3d::new([2, 2, 2]).unwrap();
        let _ = t.coords(NodeId(8));
    }

    #[test]
    fn route_length_equals_hop_count() {
        let t = Torus3d::new([4, 3, 2]).unwrap();
        for from in 0..t.nodes() {
            for to in 0..t.nodes() {
                let route = t.route(NodeId(from), NodeId(to));
                assert_eq!(
                    route.len() as u32,
                    t.hops(NodeId(from), NodeId(to)),
                    "{from}->{to}"
                );
            }
        }
    }

    #[test]
    fn route_is_connected_and_ends_at_destination() {
        let t = Torus3d::new([4, 4, 2]).unwrap();
        let from = NodeId(1);
        let to = NodeId(29);
        let route = t.route(from, to);
        assert_eq!(route.first().unwrap().0, from);
        assert_eq!(route.last().unwrap().1, to);
        for pair in route.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "channels must chain");
        }
    }

    #[test]
    fn route_takes_the_short_way_around() {
        let t = Torus3d::new([8, 1, 1]).unwrap();
        // 0 -> 7 should go backwards through the wraparound, one hop.
        let route = t.route(NodeId(0), NodeId(7));
        assert_eq!(route, vec![(NodeId(0), NodeId(7))]);
    }

    #[test]
    fn self_route_is_empty() {
        let t = Torus3d::new([4, 4, 4]).unwrap();
        assert!(t.route(NodeId(9), NodeId(9)).is_empty());
    }

    #[test]
    fn aapc_congestion_grows_with_machine_size() {
        let small = Torus3d::new([2, 2, 1]).unwrap();
        let large = Torus3d::new([4, 4, 2]).unwrap();
        let s = small.aapc_max_channel_load();
        let l = large.aapc_max_channel_load();
        assert!(s >= 1);
        assert!(l > s, "AAPC congestion must grow: {s} vs {l}");
    }

    #[test]
    fn neighbors_of_interior_node() {
        let t = Torus3d::new([4, 4, 4]).unwrap();
        let n = t.neighbors(t.node_at([1, 1, 1]));
        assert_eq!(n.len(), 6);
        let t2 = Torus3d::new([2, 1, 1]).unwrap();
        // A 2-ring has a single distinct neighbor.
        assert_eq!(t2.neighbors(NodeId(0)), vec![NodeId(1)]);
    }

    #[test]
    fn route_avoiding_matches_dimension_order_when_healthy() {
        let t = Torus3d::new([4, 3, 2]).unwrap();
        let faults = ChannelFaults::none();
        for from in 0..t.nodes() {
            for to in 0..t.nodes() {
                let healthy = t.route(NodeId(from), NodeId(to));
                let routed = t.route_avoiding(NodeId(from), NodeId(to), &faults).unwrap();
                assert_eq!(healthy, routed, "{from}->{to}");
            }
        }
    }

    #[test]
    fn route_avoiding_detours_around_a_failed_channel() {
        let t = Torus3d::new([4, 4, 1]).unwrap();
        let from = t.node_at([0, 0, 0]);
        let to = t.node_at([2, 0, 0]);
        let healthy = t.route(from, to);
        let mut faults = ChannelFaults::none();
        let (a, b) = healthy[0];
        faults.fail_channel(a, b);
        let detour = t.route_avoiding(from, to, &faults).unwrap();
        assert_eq!(detour.first().unwrap().0, from);
        assert_eq!(detour.last().unwrap().1, to);
        for &(x, y) in &detour {
            assert!(
                !faults.is_failed(x, y),
                "detour uses failed channel {x}->{y}"
            );
        }
        for pair in detour.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "channels must chain");
        }
    }

    #[test]
    fn route_avoiding_reports_disconnection() {
        let t = Torus3d::new([2, 1, 1]).unwrap();
        let mut faults = ChannelFaults::none();
        faults.fail_channel(NodeId(0), NodeId(1));
        let err = t.route_avoiding(NodeId(0), NodeId(1), &faults).unwrap_err();
        assert!(matches!(err, SimError::Unroutable { .. }), "{err}");
        // The reverse direction is untouched.
        assert!(t.route_avoiding(NodeId(1), NodeId(0), &faults).is_ok());
    }

    #[test]
    fn route_avoiding_rejects_out_of_range_nodes() {
        let t = Torus3d::new([2, 2, 1]).unwrap();
        let err = t
            .route_avoiding(NodeId(0), NodeId(9), &ChannelFaults::none())
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfRange { .. }), "{err}");
    }

    #[test]
    fn degraded_channels_stay_routable() {
        let t = Torus3d::new([4, 1, 1]).unwrap();
        let mut faults = ChannelFaults::none();
        faults.degrade_channel(NodeId(0), NodeId(1), 0.25).unwrap();
        let route = t.route_avoiding(NodeId(0), NodeId(1), &faults).unwrap();
        assert_eq!(route, vec![(NodeId(0), NodeId(1))]);
        assert_eq!(faults.capacity_factor(NodeId(0), NodeId(1)), 0.25);
        assert_eq!(faults.capacity_factor(NodeId(1), NodeId(2)), 1.0);
    }

    #[test]
    fn channel_faults_validate_and_count() {
        let mut faults = ChannelFaults::none();
        assert!(faults.is_empty());
        assert!(faults.degrade_channel(NodeId(0), NodeId(1), 0.0).is_err());
        assert!(faults.degrade_channel(NodeId(0), NodeId(1), 1.5).is_err());
        faults.degrade_channel(NodeId(0), NodeId(1), 0.5).unwrap();
        faults.fail_channel(NodeId(2), NodeId(3));
        assert_eq!(faults.degraded_count(), 1);
        assert_eq!(faults.failed_count(), 1);
        assert_eq!(faults.capacity_factor(NodeId(2), NodeId(3)), 0.0);
        // Failing a degraded channel supersedes the degradation.
        faults.fail_channel(NodeId(0), NodeId(1));
        assert_eq!(faults.degraded_count(), 0);
        assert_eq!(faults.capacity_factor(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn aapc_load_is_at_least_the_bisection_bound() {
        // Total cross-bisection traffic / bisection links lower-bounds the
        // maximum channel load.
        let t = Torus3d::new([4, 4, 1]).unwrap();
        let n = t.nodes();
        let cross_traffic = (n / 2) * (n / 2) * 2; // both directions
        let bound = cross_traffic / (2 * t.bisection_links());
        assert!(
            t.aapc_max_channel_load() >= bound,
            "{} >= {bound}",
            t.aapc_max_channel_load()
        );
    }
}
